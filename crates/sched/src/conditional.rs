//! Conditional quasi-static list scheduling of an FT-CPG (paper §5.2).
//!
//! Every FT-CPG node receives one start time, valid in its guard context;
//! synchronization nodes (frozen processes/messages) receive a single start
//! time that holds in *all* scenarios. Two reservations may share a
//! processor or bus window only if their guards are mutually exclusive.
//! Condition values produced on one node are broadcast on the bus before
//! any other node may act on them (§5.2's condition broadcast).

use crate::{worst_case_delivery, BusTable, JoinMemo, ReplicaLadder, ResourceTable, SchedError};
use ftes_ftcpg::{CpgNodeId, CpgNodeKind, FtCpg, Location};
use ftes_model::{Application, NodeId, Time};
use ftes_tdma::Platform;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Tunables of the conditional scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedConfig {
    /// Bus time needed to broadcast one condition value to all nodes
    /// (§5.2). Zero disables broadcast modelling.
    pub condition_broadcast_time: Time,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig { condition_broadcast_time: Time::new(1) }
    }
}

/// One scheduled condition broadcast on the bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Broadcast {
    /// The conditional node whose outcome is broadcast.
    pub cond: CpgNodeId,
    /// Bus transmission start.
    pub start: Time,
    /// Bus transmission end.
    pub end: Time,
}

/// A conditional schedule: start/end times for every FT-CPG node plus the
/// condition broadcasts — the information content of the schedule tables of
/// Fig. 6.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConditionalSchedule {
    start: Vec<Time>,
    end: Vec<Time>,
    broadcasts: Vec<Broadcast>,
    length: Time,
}

impl ConditionalSchedule {
    /// Start time of a node (in its guard context).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn start(&self, id: CpgNodeId) -> Time {
        self.start[id.index()]
    }

    /// Completion time of a node (in its guard context).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn end(&self, id: CpgNodeId) -> Time {
        self.end[id.index()]
    }

    /// The scheduled condition broadcasts.
    pub fn broadcasts(&self) -> &[Broadcast] {
        &self.broadcasts
    }

    /// Broadcast completion of a condition, if one was scheduled.
    pub fn broadcast_end(&self, cond: CpgNodeId) -> Option<Time> {
        self.broadcasts.iter().find(|b| b.cond == cond).map(|b| b.end)
    }

    /// Worst-case schedule length over all fault scenarios: every node's
    /// completion is the worst case of its own context, so the maximum over
    /// nodes bounds every scenario.
    pub fn length(&self) -> Time {
        self.length
    }

    /// `true` iff the worst-case length meets the global deadline.
    pub fn meets_deadline(&self, deadline: Time) -> bool {
        self.length <= deadline
    }
}

/// A deadline violated by the schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadlineViolation {
    /// The violating FT-CPG node.
    pub node: CpgNodeId,
    /// Its completion time.
    pub completion: Time,
    /// The deadline it misses (global or local).
    pub deadline: Time,
}

/// Checks the global deadline and all local process deadlines against a
/// conditional schedule, returning every violation.
pub fn check_deadlines(
    app: &Application,
    cpg: &FtCpg,
    schedule: &ConditionalSchedule,
) -> Vec<DeadlineViolation> {
    let mut out = Vec::new();
    for (id, node) in cpg.iter() {
        let completion = schedule.end(id);
        if completion > app.deadline() {
            out.push(DeadlineViolation { node: id, completion, deadline: app.deadline() });
        }
        if let CpgNodeKind::ProcessCopy { process, .. } = node.kind {
            if let Some(dl) = app.process(process).local_deadline() {
                if completion > dl {
                    out.push(DeadlineViolation { node: id, completion, deadline: dl });
                }
            }
        }
    }
    out
}

/// Schedules an FT-CPG on a platform, producing the conditional schedule
/// from which the distributed schedule tables (Fig. 6) are derived.
///
/// # Errors
///
/// Returns [`SchedError::Tdma`] if a bus transmission cannot be placed,
/// [`SchedError::NoSender`] for malformed bus nodes, and
/// [`SchedError::Ft`] if a replica join can be silenced within the budget
/// (invalid policy).
///
/// # Examples
///
/// ```
/// use ftes_ftcpg::{build_ftcpg, BuildConfig, CopyMapping};
/// use ftes_ft::PolicyAssignment;
/// use ftes_model::{samples, FaultModel, Mapping, Time, Transparency};
/// use ftes_sched::{schedule_ftcpg, SchedConfig};
/// use ftes_tdma::Platform;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let (app, arch) = samples::fig1_process(1);
/// let mapping = Mapping::cheapest(&app, &arch)?;
/// let policies = PolicyAssignment::uniform_reexecution(&app, 1);
/// let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies)?;
/// let cpg = build_ftcpg(&app, &policies, &copies, FaultModel::new(1),
///                       &Transparency::none(), BuildConfig::default())?;
/// let platform = Platform::homogeneous(1, Time::new(10))?;
/// let schedule = schedule_ftcpg(&app, &cpg, &platform, SchedConfig::default())?;
/// // Worst case: one fault => W(0,1) = 70 + 70 = 140.
/// assert_eq!(schedule.length(), Time::new(140));
/// # Ok(())
/// # }
/// ```
pub fn schedule_ftcpg(
    app: &Application,
    cpg: &FtCpg,
    platform: &Platform,
    config: SchedConfig,
) -> Result<ConditionalSchedule, SchedError> {
    match schedule_ftcpg_bounded(app, cpg, platform, config, None, None)? {
        BoundedSchedule::Complete(schedule) => Ok(schedule),
        BoundedSchedule::Exceeded { .. } => unreachable!("no bound was given"),
    }
}

/// Result of a bound-carrying scheduler run (see
/// [`schedule_ftcpg_bounded`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoundedSchedule {
    /// The schedule completed within the bound (or no bound was given) —
    /// bit-identical to what [`schedule_ftcpg`] produces for the same
    /// inputs.
    Complete(ConditionalSchedule),
    /// Refutation exit: some placed node already completes after the
    /// bound. Placements are final once made and the schedule length is
    /// the maximum completion, so `lower_bound` is a proven lower bound on
    /// the full schedule's length — the remaining scenario branches were
    /// never scheduled.
    Exceeded {
        /// Largest completion placed before the early exit (`> bound`).
        lower_bound: Time,
    },
}

/// [`schedule_ftcpg`] with bound-and-prune and a fault-scenario subtree
/// memo, the exact-scheduler half of incremental certification.
///
/// `bound` carries the incumbent's deadline: as soon as any placed node
/// completes after it, the run exits with [`BoundedSchedule::Exceeded`]
/// instead of scheduling every remaining scenario to completion. Complete
/// runs are bit-identical to the unbounded scheduler. `memo`, when given,
/// memoizes replica-join worst-case deliveries across runs (the DP is a
/// pure function of its canonical subtree key, so memoized results are
/// bit-identical too).
///
/// # Errors
///
/// Exactly those of [`schedule_ftcpg`] (an early exit can only *skip*
/// later failures, never introduce one; callers treating `Exceeded` as
/// refutation never observe the difference — both refute).
pub fn schedule_ftcpg_bounded(
    app: &Application,
    cpg: &FtCpg,
    platform: &Platform,
    config: SchedConfig,
    bound: Option<Time>,
    memo: Option<&mut JoinMemo>,
) -> Result<BoundedSchedule, SchedError> {
    Scheduler::new(app, cpg, platform, config)?.run(bound, memo)
}

struct Scheduler<'a> {
    app: &'a Application,
    cpg: &'a FtCpg,
    config: SchedConfig,
    cpus: Vec<ResourceTable>,
    bus: BusTable,
    /// Sender node for every bus-located node (resolved once).
    senders: Vec<Option<NodeId>>,
    /// Conditions whose value is needed on another node than the producer.
    remote_needed: Vec<bool>,
    /// Priority: longest path (by duration) from the node to any leaf.
    rank: Vec<Time>,
    start: Vec<Time>,
    end: Vec<Time>,
    broadcast_end: Vec<Option<Time>>,
    broadcasts: Vec<Broadcast>,
}

impl<'a> Scheduler<'a> {
    fn new(
        app: &'a Application,
        cpg: &'a FtCpg,
        platform: &'a Platform,
        config: SchedConfig,
    ) -> Result<Self, SchedError> {
        let n = cpg.node_count();
        let senders = resolve_senders(cpg)?;
        let remote_needed = compute_remote_needs(cpg, &senders);
        let rank = compute_ranks(cpg);
        Ok(Scheduler {
            app,
            cpg,
            config,
            cpus: vec![ResourceTable::new(); platform.architecture().node_count()],
            bus: BusTable::new(platform.bus().clone()),
            senders,
            remote_needed,
            rank,
            start: vec![Time::ZERO; n],
            end: vec![Time::ZERO; n],
            broadcast_end: vec![None; n],
            broadcasts: Vec::new(),
        })
    }

    fn run(
        mut self,
        bound: Option<Time>,
        mut memo: Option<&mut JoinMemo>,
    ) -> Result<BoundedSchedule, SchedError> {
        let n = self.cpg.node_count();
        let mut indegree: Vec<usize> =
            (0..n).map(|i| self.cpg.incoming(CpgNodeId::new(i)).count()).collect();
        // Max-heap ordered by (shallowest fault context, longest remaining
        // path, smallest id). Scheduling low-fault-count contexts first
        // keeps the no-fault trace compact — the quasi-static principle
        // behind the paper's schedule tables: recoveries extend the
        // schedule, they do not displace the fault-free scenario.
        let key = |s: &Self, i: usize| {
            (Reverse(s.cpg.node(CpgNodeId::new(i)).guard.fault_count()), s.rank[i], Reverse(i))
        };
        let mut ready: BinaryHeap<(Reverse<u32>, Time, Reverse<usize>)> = indegree
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(i, _)| key(&self, i))
            .collect();
        let mut scheduled = 0usize;
        while let Some((_, _, Reverse(i))) = ready.pop() {
            let id = CpgNodeId::new(i);
            self.place(id, memo.as_deref_mut())?;
            // Bound-and-prune: placements are final, and the schedule
            // length is the maximum completion — one completion past the
            // bound already refutes, whatever the unscheduled scenarios
            // would add.
            if let Some(b) = bound {
                let end = self.end[i];
                if end > b {
                    return Ok(BoundedSchedule::Exceeded { lower_bound: end });
                }
            }
            scheduled += 1;
            for e in self.cpg.outgoing(id) {
                let t = e.to.index();
                indegree[t] -= 1;
                if indegree[t] == 0 {
                    ready.push(key(&self, t));
                }
            }
        }
        debug_assert_eq!(scheduled, n, "FT-CPG is acyclic");
        let length = self.end.iter().copied().max().unwrap_or(Time::ZERO);
        Ok(BoundedSchedule::Complete(ConditionalSchedule {
            start: self.start,
            end: self.end,
            broadcasts: self.broadcasts,
            length,
        }))
    }

    /// Earliest start respecting data dependencies, releases and condition
    /// visibility.
    fn earliest_start(&self, id: CpgNodeId) -> Time {
        let node = self.cpg.node(id);
        let mut est = Time::ZERO;
        for e in self.cpg.incoming(id) {
            est = est.max(self.end[e.from.index()]);
        }
        // Release times constrain the first execution attempt.
        if let CpgNodeKind::ProcessCopy { process, attempt: 1, .. } = node.kind {
            est = est.max(self.app.process(process).release());
        }
        // A node may only be activated once every condition in its guard is
        // known locally: conditions produced on other CPUs must have been
        // broadcast (§5.2).
        if let Some(here) = self.cpu_of(id) {
            for lit in node.guard.literals() {
                let producer_cpu = match self.cpg.node(lit.cond).location {
                    Location::Node(n) => Some(n),
                    _ => None,
                };
                if producer_cpu != Some(here) {
                    if let Some(b) = self.broadcast_end[lit.cond.index()] {
                        est = est.max(b);
                    }
                }
            }
        }
        est
    }

    /// The CPU on which a node consumes condition values: its execution node
    /// for process copies, the sender for bus messages.
    fn cpu_of(&self, id: CpgNodeId) -> Option<NodeId> {
        match self.cpg.node(id).location {
            Location::Node(n) => Some(n),
            Location::Bus => self.senders[id.index()],
            Location::None => None,
        }
    }

    fn place(&mut self, id: CpgNodeId, memo: Option<&mut JoinMemo>) -> Result<(), SchedError> {
        let node = self.cpg.node(id).clone();
        let est = self.earliest_start(id);
        match (&node.kind, node.location) {
            (CpgNodeKind::ReplicaJoin { .. }, _) => {
                let t = self.join_time(id, memo)?;
                self.start[id.index()] = t;
                self.end[id.index()] = t;
            }
            (_, Location::Node(cpu)) => {
                let s = self.cpus[cpu.index()].earliest_fit(est, node.duration, &node.guard);
                self.cpus[cpu.index()].reserve(s, s + node.duration, node.guard.clone());
                self.start[id.index()] = s;
                self.end[id.index()] = s + node.duration;
                if node.conditional && self.remote_needed[id.index()] {
                    self.schedule_broadcast(id, cpu)?;
                }
            }
            (_, Location::Bus) => {
                let sender = self.senders[id.index()].ok_or(SchedError::NoSender(id))?;
                let (s, e) = self.bus.earliest_window(sender, est, node.duration, &node.guard)?;
                self.bus.reserve(s, e, node.guard.clone());
                self.start[id.index()] = s;
                self.end[id.index()] = e;
            }
            (_, Location::None) => {
                self.start[id.index()] = est;
                self.end[id.index()] = est + node.duration;
            }
        }
        Ok(())
    }

    fn schedule_broadcast(&mut self, cond: CpgNodeId, cpu: NodeId) -> Result<(), SchedError> {
        let dur = self.config.condition_broadcast_time;
        if dur <= Time::ZERO {
            return Ok(());
        }
        let guard = self.cpg.node(cond).guard.clone();
        let (s, e) = self.bus.earliest_window(cpu, self.end[cond.index()], dur, &guard)?;
        self.bus.reserve(s, e, guard);
        self.broadcast_end[cond.index()] = Some(e);
        self.broadcasts.push(Broadcast { cond, start: s, end: e });
        Ok(())
    }

    /// Worst-case delivery time of a replica join via the adversarial DP
    /// (memo-backed when a [`JoinMemo`] is supplied — same value either
    /// way, the DP is pure).
    fn join_time(&self, join: CpgNodeId, memo: Option<&mut JoinMemo>) -> Result<Time, SchedError> {
        let (_, chains) = self
            .cpg
            .joins()
            .iter()
            .find(|(j, _)| *j == join)
            .expect("join metadata recorded during construction");
        let budget = self.cpg.fault_budget() - self.cpg.node(join).guard.fault_count();
        let ladders: Vec<ReplicaLadder> = chains
            .iter()
            .map(|chain| ReplicaLadder {
                ladder: chain.iter().map(|&a| self.end[a.index()]).collect(),
                killable: self.cpg.node(*chain.last().expect("chains are non-empty")).conditional,
            })
            .collect();
        let delivery = match memo {
            Some(memo) => memo.delivery(&ladders, budget),
            None => worst_case_delivery(&ladders, budget),
        };
        delivery.ok_or({
            SchedError::Ft(ftes_ft::FtError::InsufficientPolicy { k: budget, tolerated: 0 })
        })
    }
}

/// Resolves, for every bus-located node, the computation node whose TDMA
/// slots carry it (the producing process's node; for replicated producers,
/// the first replica's node — see DESIGN.md's substitution notes).
fn resolve_senders(cpg: &FtCpg) -> Result<Vec<Option<NodeId>>, SchedError> {
    let mut senders = vec![None; cpg.node_count()];
    for (id, node) in cpg.iter() {
        if node.location != Location::Bus {
            continue;
        }
        let mut sender = None;
        for e in cpg.incoming(id) {
            sender = trace_sender(cpg, e.from);
            if sender.is_some() {
                break;
            }
        }
        senders[id.index()] = Some(sender.ok_or(SchedError::NoSender(id))?);
    }
    Ok(senders)
}

/// Walks back from a message's source to a located process copy.
fn trace_sender(cpg: &FtCpg, from: CpgNodeId) -> Option<NodeId> {
    match cpg.node(from).location {
        Location::Node(n) => Some(n),
        _ => cpg.incoming(from).find_map(|e| trace_sender(cpg, e.from)),
    }
}

/// Marks conditions whose value some differently-located node needs.
fn compute_remote_needs(cpg: &FtCpg, senders: &[Option<NodeId>]) -> Vec<bool> {
    let cpu = |id: CpgNodeId| match cpg.node(id).location {
        Location::Node(n) => Some(n),
        Location::Bus => senders[id.index()],
        Location::None => None,
    };
    let mut needed = vec![false; cpg.node_count()];
    for (id, node) in cpg.iter() {
        let here = cpu(id);
        for lit in node.guard.literals() {
            let producer = cpu(lit.cond);
            if producer.is_some() && here.is_some() && producer != here {
                needed[lit.cond.index()] = true;
            }
        }
    }
    needed
}

/// Longest path (sum of durations) from each node to any leaf; the list
/// scheduler's priority (partial critical path, as in the CPG scheduling of
/// \[7\]).
fn compute_ranks(cpg: &FtCpg) -> Vec<Time> {
    let n = cpg.node_count();
    let mut rank = vec![Time::ZERO; n];
    for i in (0..n).rev() {
        let id = CpgNodeId::new(i);
        let down = cpg.outgoing(id).map(|e| rank[e.to.index()]).max().unwrap_or(Time::ZERO);
        rank[i] = cpg.node(id).duration + down;
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftes_ft::{Policy, PolicyAssignment};
    use ftes_ftcpg::{build_ftcpg, BuildConfig, CopyMapping};
    use ftes_model::{samples, FaultModel, Mapping, ProcessId, Transparency};

    fn schedule_sample(
        k: u32,
        transparency: &Transparency,
    ) -> (Application, FtCpg, ConditionalSchedule) {
        let (app, arch, _) = samples::fig5();
        let mapping = Mapping::new(&app, &arch, samples::fig5_mapping()).unwrap();
        let policies = PolicyAssignment::uniform_reexecution(&app, k);
        let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies).unwrap();
        let cpg = build_ftcpg(
            &app,
            &policies,
            &copies,
            FaultModel::new(k),
            transparency,
            BuildConfig::default(),
        )
        .unwrap();
        let platform = Platform::homogeneous(2, Time::new(8)).unwrap();
        let sched = schedule_ftcpg(&app, &cpg, &platform, SchedConfig::default()).unwrap();
        (app, cpg, sched)
    }

    #[test]
    fn single_process_chain_times() {
        let (app, arch) = samples::fig1_process(1);
        let mapping = Mapping::cheapest(&app, &arch).unwrap();
        let policies = PolicyAssignment::uniform_reexecution(&app, 2);
        let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies).unwrap();
        let cpg = build_ftcpg(
            &app,
            &policies,
            &copies,
            FaultModel::new(2),
            &Transparency::none(),
            BuildConfig::default(),
        )
        .unwrap();
        let platform = Platform::homogeneous(1, Time::new(10)).unwrap();
        let sched = schedule_ftcpg(&app, &cpg, &platform, SchedConfig::default()).unwrap();
        let chain: Vec<_> = cpg.copies_of_process(ProcessId::new(0)).collect();
        // Attempts execute back to back: 0..70, 70..150, 150..220.
        assert_eq!(sched.start(chain[0]), Time::ZERO);
        assert_eq!(sched.end(chain[0]), Time::new(70));
        assert_eq!(sched.start(chain[1]), Time::new(70));
        assert_eq!(sched.end(chain[1]), Time::new(150));
        assert_eq!(sched.end(chain[2]), Time::new(220));
        // Schedule length = W(0, 2).
        assert_eq!(sched.length(), Time::new(220));
        assert!(sched.meets_deadline(app.deadline()));
    }

    #[test]
    fn precedence_and_resource_invariants_hold() {
        let t = Transparency::none();
        let (_, cpg, sched) = schedule_sample(2, &t);
        // Data dependencies respected.
        for e in cpg.edges() {
            assert!(
                sched.start(e.to) >= sched.end(e.from),
                "{} must finish before {} starts",
                cpg.name(e.from),
                cpg.name(e.to)
            );
        }
        // Compatible-guard overlap never happens on a CPU.
        let nodes: Vec<_> = cpg.iter().collect();
        for (i, (ida, a)) in nodes.iter().enumerate() {
            for (idb, b) in nodes.iter().skip(i + 1) {
                let same_cpu = match (a.location, b.location) {
                    (Location::Node(x), Location::Node(y)) => x == y,
                    (Location::Bus, Location::Bus) => true,
                    _ => false,
                };
                if !same_cpu || a.duration == Time::ZERO || b.duration == Time::ZERO {
                    continue;
                }
                let overlap =
                    sched.start(*ida) < sched.end(*idb) && sched.start(*idb) < sched.end(*ida);
                if overlap {
                    assert!(
                        a.guard.excludes(&b.guard),
                        "{} and {} overlap with compatible guards",
                        cpg.name(*ida),
                        cpg.name(*idb)
                    );
                }
            }
        }
    }

    #[test]
    fn frozen_nodes_have_single_start_time() {
        let (app, arch, transparency) = samples::fig5();
        let _ = (app, arch);
        let (_, cpg, sched) = schedule_sample(2, &transparency);
        // Every sync node's start is >= all of its predecessors' ends (the
        // max over all scenarios), by construction; check it is a single
        // well-defined value placed after every input.
        for s in cpg.sync_nodes() {
            for e in cpg.incoming(s) {
                assert!(sched.start(s) >= sched.end(e.from));
            }
        }
    }

    #[test]
    fn transparency_increases_schedule_length() {
        let flexible = schedule_sample(2, &Transparency::none()).2.length();
        let (_, _, t_full) = samples::fig5();
        let frozen = schedule_sample(2, &t_full).2.length();
        let fully = schedule_sample(2, &Transparency::fully_transparent()).2.length();
        assert!(
            frozen >= flexible,
            "freezing P3/m2/m3 cannot shorten the worst case ({frozen} < {flexible})"
        );
        assert!(fully >= frozen, "full transparency is the slowest ({fully} < {frozen})");
    }

    #[test]
    fn replication_schedules_and_joins() {
        let (app, arch) = samples::fig1_process(3);
        let mapping = Mapping::cheapest(&app, &arch).unwrap();
        let mut policies = PolicyAssignment::uniform_reexecution(&app, 2);
        policies.set(ProcessId::new(0), Policy::replication(2));
        let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies).unwrap();
        let cpg = build_ftcpg(
            &app,
            &policies,
            &copies,
            FaultModel::new(2),
            &Transparency::none(),
            BuildConfig::default(),
        )
        .unwrap();
        let platform = Platform::homogeneous(3, Time::new(10)).unwrap();
        let sched = schedule_ftcpg(&app, &cpg, &platform, SchedConfig::default()).unwrap();
        // All three replicas run in parallel starting at 0 and end at
        // E(0) = 70; the adversary can kill two, delivery stays 70.
        let (join, chains) = &cpg.joins()[0];
        for c in chains {
            assert_eq!(sched.start(c[0]), Time::ZERO, "replicas run in parallel");
        }
        assert_eq!(sched.end(*join), Time::new(70));
        // Replication beats re-execution here: W(0,2) = 220 for a single
        // copy vs 70 for three replicas.
        assert!(sched.length() < Time::new(220));
    }

    #[test]
    fn condition_broadcasts_are_scheduled_for_remote_consumers() {
        let t = {
            let (_, _, t) = samples::fig5();
            t
        };
        let (_, cpg, sched) = schedule_sample(2, &t);
        // P1 runs on N1; P4 on N2 is guarded by P1's conditions, so P1's
        // conditions must be broadcast.
        let p1_conds: Vec<_> = cpg
            .copies_of_process(ProcessId::new(0))
            .filter(|&id| cpg.node(id).conditional)
            .collect();
        assert!(!p1_conds.is_empty());
        for c in &p1_conds {
            assert!(
                sched.broadcast_end(*c).is_some(),
                "condition of {} must be broadcast",
                cpg.name(*c)
            );
        }
        // Broadcast happens after the producing copy completes.
        for b in sched.broadcasts() {
            assert!(b.start >= sched.end(b.cond));
            assert!(b.end > b.start);
        }
    }

    #[test]
    fn deadline_checking_reports_violations() {
        let (app, arch) = samples::fig1_process(1);
        let mapping = Mapping::cheapest(&app, &arch).unwrap();
        let policies = PolicyAssignment::uniform_reexecution(&app, 2);
        let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies).unwrap();
        let cpg = build_ftcpg(
            &app,
            &policies,
            &copies,
            FaultModel::new(2),
            &Transparency::none(),
            BuildConfig::default(),
        )
        .unwrap();
        let platform = Platform::homogeneous(1, Time::new(10)).unwrap();
        let sched = schedule_ftcpg(&app, &cpg, &platform, SchedConfig::default()).unwrap();
        // Deadline 1000: fine. Artificial deadline 100: the second and
        // third attempts (ending at 150 and 220) violate.
        assert!(check_deadlines(&app, &cpg, &sched).is_empty());
        let mut b = ftes_model::ApplicationBuilder::new(1);
        b.add_process(ftes_model::ProcessSpec::uniform("P1", Time::new(60), 1).overheads(
            Time::new(10),
            Time::new(10),
            Time::new(5),
        ));
        let tight = b.deadline(Time::new(100)).build().unwrap();
        let violations = check_deadlines(&tight, &cpg, &sched);
        assert_eq!(violations.len(), 2);
        assert!(violations.iter().all(|v| v.completion > v.deadline));
    }

    #[test]
    fn bounded_runs_complete_bit_identically_and_prune_refutations() {
        let t = Transparency::none();
        let (app, cpg, unbounded) = schedule_sample(2, &t);
        let platform = Platform::homogeneous(2, Time::new(8)).unwrap();
        // A bound at (or above) the true length completes bit-identically,
        // with and without a memo.
        let mut memo = JoinMemo::new();
        for memo_arg in [None, Some(&mut memo)] {
            let complete = schedule_ftcpg_bounded(
                &app,
                &cpg,
                &platform,
                SchedConfig::default(),
                Some(unbounded.length()),
                memo_arg,
            )
            .unwrap();
            assert_eq!(complete, BoundedSchedule::Complete(unbounded.clone()));
        }
        // A bound below the true length refutes early with a sound lower
        // bound: some real completion exceeds it, none is overstated.
        let tight = unbounded.length() - Time::new(1);
        let exceeded = schedule_ftcpg_bounded(
            &app,
            &cpg,
            &platform,
            SchedConfig::default(),
            Some(tight),
            None,
        )
        .unwrap();
        let BoundedSchedule::Exceeded { lower_bound } = exceeded else {
            panic!("a sub-length bound must refute");
        };
        assert!(lower_bound > tight);
        assert!(lower_bound <= unbounded.length(), "lower bound must be a real completion");
    }

    #[test]
    fn memoized_scheduling_is_bit_identical_across_repeats() {
        let (app, arch) = samples::fig1_process(3);
        let mapping = Mapping::cheapest(&app, &arch).unwrap();
        let mut policies = PolicyAssignment::uniform_reexecution(&app, 2);
        policies.set(ProcessId::new(0), Policy::replication(2));
        let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies).unwrap();
        let cpg = build_ftcpg(
            &app,
            &policies,
            &copies,
            FaultModel::new(2),
            &Transparency::none(),
            BuildConfig::default(),
        )
        .unwrap();
        let platform = Platform::homogeneous(3, Time::new(10)).unwrap();
        let plain = schedule_ftcpg(&app, &cpg, &platform, SchedConfig::default()).unwrap();
        let mut memo = JoinMemo::new();
        for round in 0..3 {
            let memoized = schedule_ftcpg_bounded(
                &app,
                &cpg,
                &platform,
                SchedConfig::default(),
                None,
                Some(&mut memo),
            )
            .unwrap();
            assert_eq!(memoized, BoundedSchedule::Complete(plain.clone()), "round {round}");
        }
        assert_eq!(memo.misses(), 1, "one join computed once");
        assert_eq!(memo.hits(), 2, "repeat rounds hit the subtree memo");
    }

    #[test]
    fn release_times_delay_first_attempts() {
        let mut b = ftes_model::ApplicationBuilder::new(1);
        b.add_process(
            ftes_model::ProcessSpec::uniform("P1", Time::new(10), 1).release(Time::new(50)),
        );
        let app = b.deadline(Time::new(200)).build().unwrap();
        let arch = ftes_model::Architecture::homogeneous(1).unwrap();
        let mapping = Mapping::cheapest(&app, &arch).unwrap();
        let policies = PolicyAssignment::uniform_reexecution(&app, 1);
        let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies).unwrap();
        let cpg = build_ftcpg(
            &app,
            &policies,
            &copies,
            FaultModel::new(1),
            &Transparency::none(),
            BuildConfig::default(),
        )
        .unwrap();
        let platform = Platform::homogeneous(1, Time::new(10)).unwrap();
        let sched = schedule_ftcpg(&app, &cpg, &platform, SchedConfig::default()).unwrap();
        let first = cpg.copies_of_process(ProcessId::new(0)).next().unwrap();
        assert_eq!(sched.start(first), Time::new(50));
    }
}
