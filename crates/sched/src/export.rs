//! Export of schedules in machine- and human-readable formats: CSV and
//! Markdown schedule tables (the deliverable a tool like the paper's would
//! hand to the target's configuration loader), plus per-scenario execution
//! timelines for Gantt-style inspection.

use crate::{ConditionalSchedule, ScheduleTables};
use ftes_ftcpg::{CpgNodeKind, FaultScenario, FtCpg, Location};
use ftes_model::{Application, NodeId, Time};
use std::fmt::Write as _;

/// Renders the distributed schedule tables as CSV with columns
/// `node,row,start,entity_copy,guard`.
///
/// # Examples
///
/// ```
/// # use ftes_ft::PolicyAssignment;
/// # use ftes_ftcpg::{build_ftcpg, BuildConfig, CopyMapping};
/// # use ftes_model::{samples, FaultModel, Mapping, Time, Transparency};
/// # use ftes_sched::{schedule_ftcpg, ScheduleTables, SchedConfig, export};
/// # use ftes_tdma::Platform;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let (app, arch) = samples::fig1_process(1);
/// # let mapping = Mapping::cheapest(&app, &arch)?;
/// # let policies = PolicyAssignment::uniform_reexecution(&app, 1);
/// # let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies)?;
/// # let cpg = build_ftcpg(&app, &policies, &copies, FaultModel::new(1),
/// #                       &Transparency::none(), BuildConfig::default())?;
/// # let platform = Platform::homogeneous(1, Time::new(10))?;
/// # let schedule = schedule_ftcpg(&app, &cpg, &platform, SchedConfig::default())?;
/// let tables = ScheduleTables::new(&app, &cpg, &schedule, 1);
/// let csv = export::tables_to_csv(&tables, &cpg);
/// assert!(csv.starts_with("node,row,start,entity_copy,guard"));
/// # Ok(())
/// # }
/// ```
pub fn tables_to_csv(tables: &ScheduleTables, cpg: &FtCpg) -> String {
    let mut out = String::from("node,row,start,entity_copy,guard\n");
    for table in &tables.nodes {
        for row in &table.rows {
            for e in &row.entries {
                let _ = writeln!(
                    out,
                    "N{},{},{},{},\"{}\"",
                    table.node.index(),
                    row.label,
                    e.start,
                    cpg.name(e.node),
                    e.guard.display_with(|c| cpg.name(c).to_string()),
                );
            }
        }
    }
    out
}

/// Renders the distributed schedule tables as a Markdown document, one
/// section per node, one table row per entity.
pub fn tables_to_markdown(tables: &ScheduleTables, cpg: &FtCpg) -> String {
    let mut out = String::new();
    for table in &tables.nodes {
        let _ = writeln!(out, "## Schedule table of N{}\n", table.node.index());
        out.push_str("| entity | activation times |\n|---|---|\n");
        for row in &table.rows {
            let entries: Vec<String> = row
                .entries
                .iter()
                .map(|e| {
                    format!(
                        "{} ({}) if {}",
                        e.start,
                        cpg.name(e.node),
                        e.guard.display_with(|c| cpg.name(c).to_string())
                    )
                })
                .collect();
            let _ = writeln!(out, "| {} | {} |", row.label, entries.join("; "));
        }
        out.push('\n');
    }
    out
}

/// One bar of a scenario timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineBar {
    /// Resource the bar occupies (`None` = virtual / zero-duration).
    pub resource: Option<TimelineResource>,
    /// Display name of the executed copy.
    pub label: String,
    /// Start instant.
    pub start: Time,
    /// End instant.
    pub end: Time,
}

/// A timeline resource: CPU or the bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TimelineResource {
    /// A computation node.
    Cpu(NodeId),
    /// The shared bus.
    Bus,
}

/// Extracts the execution timeline of one fault scenario (only nodes active
/// in that scenario, sorted by resource then start) — the rows of a Gantt
/// chart like the paper's Fig. 1/2 timing diagrams.
pub fn scenario_timeline(
    cpg: &FtCpg,
    schedule: &ConditionalSchedule,
    scenario: &FaultScenario,
) -> Vec<TimelineBar> {
    let active = scenario.active_nodes(cpg);
    let mut bars: Vec<TimelineBar> = cpg
        .iter()
        .filter(|(id, n)| active[id.index()] && n.duration > Time::ZERO)
        .map(|(id, n)| TimelineBar {
            resource: match n.location {
                Location::Node(c) => Some(TimelineResource::Cpu(c)),
                Location::Bus => Some(TimelineResource::Bus),
                Location::None => None,
            },
            label: cpg.name(id).to_string(),
            start: schedule.start(id),
            end: schedule.end(id),
        })
        .collect();
    bars.sort_by_key(|b| (b.resource, b.start));
    bars
}

/// Renders a scenario timeline as fixed-width ASCII art, one row per bar.
pub fn timeline_to_ascii(bars: &[TimelineBar], width: usize) -> String {
    let span = bars.iter().map(|b| b.end.units()).max().unwrap_or(1).max(1);
    let scale = width.max(10) as f64 / span as f64;
    let mut out = String::new();
    let mut current: Option<TimelineResource> = None;
    for b in bars {
        if b.resource != current {
            let name = match b.resource {
                Some(TimelineResource::Cpu(n)) => format!("CPU N{}", n.index()),
                Some(TimelineResource::Bus) => "BUS".to_string(),
                None => "-".to_string(),
            };
            let _ = writeln!(out, "--- {name} ---");
            current = b.resource;
        }
        let lead = (b.start.units() as f64 * scale).round() as usize;
        let len = (((b.end - b.start).units() as f64) * scale).round().max(1.0) as usize;
        let _ = writeln!(
            out,
            "{:<10} {}{} [{}..{})",
            b.label,
            " ".repeat(lead),
            "#".repeat(len),
            b.start,
            b.end
        );
    }
    out
}

/// Bus utilization of a conditional schedule: fraction of `[0, length)`
/// covered by at least one bus reservation in the *fault-free* scenario.
pub fn fault_free_bus_utilization(
    app: &Application,
    cpg: &FtCpg,
    schedule: &ConditionalSchedule,
) -> f64 {
    let _ = app;
    let active = FaultScenario::fault_free().active_nodes(cpg);
    let mut intervals: Vec<(Time, Time)> = cpg
        .iter()
        .filter(|(id, n)| {
            active[id.index()]
                && n.location == Location::Bus
                && matches!(
                    n.kind,
                    CpgNodeKind::MessageCopy { .. } | CpgNodeKind::MessageSync { .. }
                )
        })
        .map(|(id, _)| (schedule.start(id), schedule.end(id)))
        .filter(|(s, e)| e > s)
        .collect();
    intervals.sort();
    let mut covered = 0i64;
    let mut cursor = Time::new(i64::MIN);
    for (s, e) in intervals {
        let s = s.max(cursor);
        if e > s {
            covered += (e - s).units();
            cursor = e;
        }
    }
    let len = schedule.length().units().max(1);
    covered as f64 / len as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{schedule_ftcpg, SchedConfig};
    use ftes_ft::PolicyAssignment;
    use ftes_ftcpg::{build_ftcpg, BuildConfig, CopyMapping};
    use ftes_model::{samples, FaultModel, Mapping};
    use ftes_tdma::Platform;

    fn fig5_artifacts() -> (Application, FtCpg, ConditionalSchedule, ScheduleTables) {
        let (app, arch, transparency) = samples::fig5();
        let mapping = Mapping::new(&app, &arch, samples::fig5_mapping()).unwrap();
        let policies = PolicyAssignment::uniform_reexecution(&app, 2);
        let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies).unwrap();
        let cpg = build_ftcpg(
            &app,
            &policies,
            &copies,
            FaultModel::new(2),
            &transparency,
            BuildConfig::default(),
        )
        .unwrap();
        let platform = Platform::homogeneous(2, Time::new(8)).unwrap();
        let schedule = schedule_ftcpg(&app, &cpg, &platform, SchedConfig::default()).unwrap();
        let tables = ScheduleTables::new(&app, &cpg, &schedule, 2);
        (app, cpg, schedule, tables)
    }

    #[test]
    fn csv_has_one_line_per_entry_plus_header() {
        let (_, cpg, _, tables) = fig5_artifacts();
        let csv = tables_to_csv(&tables, &cpg);
        assert_eq!(csv.lines().count(), tables.entry_count() + 1);
        assert!(csv.lines().nth(1).unwrap().starts_with("N0,"));
    }

    #[test]
    fn markdown_contains_every_row_label() {
        let (_, cpg, _, tables) = fig5_artifacts();
        let md = tables_to_markdown(&tables, &cpg);
        for t in &tables.nodes {
            for row in &t.rows {
                assert!(md.contains(&format!("| {} |", row.label)), "{}", row.label);
            }
        }
        assert!(md.contains("## Schedule table of N0"));
    }

    #[test]
    fn fault_free_timeline_has_one_bar_per_process() {
        let (_, cpg, schedule, _) = fig5_artifacts();
        let bars = scenario_timeline(&cpg, &schedule, &FaultScenario::fault_free());
        let cpu_bars =
            bars.iter().filter(|b| matches!(b.resource, Some(TimelineResource::Cpu(_)))).count();
        assert_eq!(cpu_bars, 4, "one active copy per process in the fault-free run");
        // Bars within a resource are sorted by start.
        for w in bars.windows(2) {
            if w[0].resource == w[1].resource {
                assert!(w[0].start <= w[1].start);
            }
        }
    }

    #[test]
    fn faulty_timeline_has_more_bars() {
        let (_, cpg, schedule, _) = fig5_artifacts();
        let base = scenario_timeline(&cpg, &schedule, &FaultScenario::fault_free()).len();
        let first_cond = cpg.conditional_nodes().next().unwrap();
        let faulty = scenario_timeline(&cpg, &schedule, &FaultScenario::new([first_cond])).len();
        assert!(faulty > base, "a recovery adds at least one bar");
    }

    #[test]
    fn ascii_rendering_is_nonempty_and_bounded() {
        let (_, cpg, schedule, _) = fig5_artifacts();
        let bars = scenario_timeline(&cpg, &schedule, &FaultScenario::fault_free());
        let art = timeline_to_ascii(&bars, 60);
        assert!(art.contains("CPU N0"));
        assert!(art.contains('#'));
        assert!(art.lines().count() >= bars.len());
    }

    #[test]
    fn bus_utilization_is_a_fraction() {
        let (app, cpg, schedule, _) = fig5_artifacts();
        let u = fault_free_bus_utilization(&app, &cpg, &schedule);
        assert!((0.0..=1.0).contains(&u));
        assert!(u > 0.0, "fig5 sends bus messages in the fault-free run");
    }
}
