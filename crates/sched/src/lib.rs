//! # ftes-sched
//!
//! Fault-tolerant schedule synthesis (paper §5): conditional quasi-static
//! list scheduling of FT-CPGs into distributed schedule tables, plus the
//! fast root-schedule estimator used inside the optimization loops.
//!
//! * [`schedule_ftcpg`] — the exact conditional scheduler: one start time
//!   per FT-CPG node, guard-aware resource sharing (mutually exclusive
//!   scenarios overlap), TDMA bus windows, condition broadcasts (§5.2);
//! * [`ScheduleTables`] — the per-node tables of Fig. 6;
//! * [`SystemEvaluator`] — the reusable evaluation kernel behind the
//!   optimization loops, a three-tier contract over flat
//!   structure-of-arrays state: construction precomputes everything
//!   invariant per `(application, platform, k)`, `evaluate` (tier 1)
//!   re-scores candidate states with zero steady-state allocation and
//!   anchors the delta base, `delta_evaluate` (tier 2) re-schedules only
//!   the suffix a single move can affect, and `evaluate_batch` (tier 3)
//!   scores a whole search neighborhood in one pass off a shared,
//!   incrementally grown prefix image — bit-for-bit equal to sequential
//!   scoring, in input order;
//! * [`Certifier`] — on-demand, memoized exact certification of candidate
//!   configurations under a work budget: the kernel behind the
//!   certify-and-repair loops that keep search incumbents honest against
//!   the exact conditional schedule;
//! * [`estimate_schedule_length`] — root schedule + shared recovery slack,
//!   polynomial-time, for the 100-process design-space sweeps of §6 (a
//!   thin construct-once wrapper over the kernel);
//! * [`worst_case_delivery`] — adversarial analysis of replicated outputs.
//!
//! ```
//! use ftes_ft::PolicyAssignment;
//! use ftes_ftcpg::{build_ftcpg, BuildConfig, CopyMapping};
//! use ftes_model::{samples, FaultModel, Mapping, Time, Transparency};
//! use ftes_sched::{schedule_ftcpg, ScheduleTables, SchedConfig};
//! use ftes_tdma::Platform;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let (app, arch, transparency) = samples::fig5();
//! let mapping = Mapping::new(&app, &arch, samples::fig5_mapping())?;
//! let policies = PolicyAssignment::uniform_reexecution(&app, 2);
//! let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies)?;
//! let cpg = build_ftcpg(&app, &policies, &copies, FaultModel::new(2),
//!                       &transparency, BuildConfig::default())?;
//! let platform = Platform::homogeneous(2, Time::new(8))?;
//! let schedule = schedule_ftcpg(&app, &cpg, &platform, SchedConfig::default())?;
//! let tables = ScheduleTables::new(&app, &cpg, &schedule, 2);
//! println!("{}", tables.render(&cpg));
//! assert!(schedule.meets_deadline(app.deadline()));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod certify;
mod conditional;
mod error;
mod estimate;
mod evaluator;
pub mod export;
mod join;
mod resource;
mod table;

pub use certify::{
    calibration_milli, BoundedCert, CertOutcome, CertificationCounters, Certifier, CertifierStats,
    CertifyConfig, CertifyError,
};
pub use conditional::{
    check_deadlines, schedule_ftcpg, schedule_ftcpg_bounded, BoundedSchedule, Broadcast,
    ConditionalSchedule, DeadlineViolation, SchedConfig,
};
pub use error::SchedError;
pub use estimate::{estimate_schedule_length, Estimate};
pub use evaluator::{EvaluatorStats, SystemEvaluator};
pub use join::{subtree_key, worst_case_delivery, JoinMemo, ReplicaLadder};
pub use resource::{BusTable, Reservation, ResourceTable};
pub use table::{NodeTable, ScheduleTables, TableEntry, TableRow};
