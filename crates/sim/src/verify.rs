//! Exhaustive / sampled verification of a synthesized system: replay fault
//! scenarios and check the guarantees the synthesis flow promises.
//!
//! Checked properties:
//!
//! 1. **Delivery** — every application process produces a successful
//!    execution in every scenario with at most `k` faults (§2's fault
//!    hypothesis).
//! 2. **Deadlines** — every scenario completes within the global deadline
//!    and every process copy within its local deadline (§4).
//! 3. **Causality** — an execution never starts before its active inputs
//!    have completed.
//! 4. **Resource exclusivity** — two executions active in the *same*
//!    scenario never overlap on one CPU or on the bus.
//! 5. **Transparency** — frozen processes/messages start at one fixed time
//!    in every scenario (§3.3), i.e. their activation entries are
//!    scenario-independent.

use crate::{simulate, SimError};
use ftes_ftcpg::{enumerate_scenarios, CpgNodeKind, FaultScenario, FtCpg, Location};
use ftes_model::{Application, Time, Transparency};
use ftes_sched::ConditionalSchedule;

/// One violated guarantee found during verification.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Violation {
    /// A process delivered no successful execution in some scenario.
    ProcessSilent {
        /// Display name of the process.
        process: String,
        /// Number of faults in the offending scenario.
        scenario_faults: u32,
    },
    /// A scenario exceeded the global deadline.
    DeadlineMiss {
        /// Scenario makespan.
        makespan: Time,
        /// The deadline it missed.
        deadline: Time,
    },
    /// An execution started before one of its inputs completed.
    Causality {
        /// Display name of the offending node.
        node: String,
    },
    /// Two same-scenario executions overlapped on a resource.
    ResourceOverlap {
        /// Display names of the overlapping nodes.
        a: String,
        /// Second overlapping node.
        b: String,
    },
    /// A frozen entity had scenario-dependent start times.
    FrozenDrift {
        /// Display name of the frozen entity's node.
        node: String,
    },
}

/// Aggregate result of verifying a schedule against fault scenarios.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verification {
    /// Number of scenarios replayed.
    pub scenarios: usize,
    /// Worst makespan observed.
    pub worst_makespan: Time,
    /// All violations found (empty = the configuration is sound).
    pub violations: Vec<Violation>,
}

impl Verification {
    /// `true` iff no violation was found.
    pub fn is_sound(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Replays every consistent fault scenario (up to `scenario_limit`) and
/// checks all five guarantees.
///
/// # Errors
///
/// Returns [`SimError::TooManyScenarios`] when the scenario space exceeds
/// `scenario_limit` (use [`verify_sampled`] instead) and propagates replay
/// errors.
pub fn verify_exhaustive(
    app: &Application,
    cpg: &FtCpg,
    schedule: &ConditionalSchedule,
    transparency: &Transparency,
    scenario_limit: usize,
) -> Result<Verification, SimError> {
    let scenarios = enumerate_scenarios(cpg, scenario_limit)
        .map_err(|_| SimError::TooManyScenarios(scenario_limit))?;
    verify_scenarios(app, cpg, schedule, transparency, scenarios)
}

/// Replays the fault-free scenario plus `samples` pseudo-random scenarios
/// drawn with the given seed (deterministic across runs/platforms).
///
/// # Errors
///
/// Propagates replay errors.
pub fn verify_sampled(
    app: &Application,
    cpg: &FtCpg,
    schedule: &ConditionalSchedule,
    transparency: &Transparency,
    samples: usize,
    seed: u64,
) -> Result<Verification, SimError> {
    let mut rng = SplitMix64::new(seed);
    let mut scenarios = vec![FaultScenario::fault_free()];
    let conditionals: Vec<_> = cpg.conditional_nodes().collect();
    for _ in 0..samples {
        // Draw a random consistent scenario by walking the conditions in
        // topological order, flipping active coins while budget remains.
        let mut faults = Vec::new();
        let mut value: Vec<Option<bool>> = vec![None; cpg.node_count()];
        for &c in &conditionals {
            let active = cpg.node(c).guard.evaluate(|x| value[x.index()]).unwrap_or(false);
            if !active {
                continue;
            }
            let fault = (faults.len() as u32) < cpg.fault_budget() && rng.next_bool();
            value[c.index()] = Some(fault);
            if fault {
                faults.push(c);
            }
        }
        scenarios.push(FaultScenario::new(faults));
    }
    verify_scenarios(app, cpg, schedule, transparency, scenarios)
}

fn verify_scenarios(
    app: &Application,
    cpg: &FtCpg,
    schedule: &ConditionalSchedule,
    transparency: &Transparency,
    scenarios: Vec<FaultScenario>,
) -> Result<Verification, SimError> {
    let mut violations = Vec::new();
    let mut worst_makespan = Time::ZERO;

    // Static transparency check: copies of frozen processes may depend only
    // on their own conditions; frozen messages are single sync nodes.
    for (id, node) in cpg.iter() {
        let frozen_entity = match node.kind {
            CpgNodeKind::ProcessCopy { process, .. } => transparency.is_process_frozen(process),
            _ => false,
        };
        if frozen_entity {
            let foreign = node.guard.literals().iter().any(|l| {
                !matches!(
                    cpg.node(l.cond).kind,
                    CpgNodeKind::ProcessCopy { process, .. }
                        if matches!(node.kind, CpgNodeKind::ProcessCopy { process: p, .. } if p == process)
                )
            });
            if foreign {
                violations.push(Violation::FrozenDrift { node: cpg.name(id).to_string() });
            }
        }
    }

    let count = scenarios.len();
    for scenario in scenarios {
        let report = simulate(app, cpg, schedule, scenario)?;
        worst_makespan = worst_makespan.max(report.makespan);
        if !report.completed {
            // Identify silent processes for the report.
            let mut delivered = vec![false; app.process_count()];
            for e in &report.events {
                if let CpgNodeKind::ProcessCopy { process, .. } = cpg.node(e.node).kind {
                    if !e.faulted {
                        delivered[process.index()] = true;
                    }
                }
            }
            for (pid, p) in app.processes() {
                if !delivered[pid.index()] {
                    violations.push(Violation::ProcessSilent {
                        process: p.name().to_string(),
                        scenario_faults: report.scenario.fault_count(),
                    });
                }
            }
        }
        if report.makespan > app.deadline() {
            violations.push(Violation::DeadlineMiss {
                makespan: report.makespan,
                deadline: app.deadline(),
            });
        }
        // Causality: active inputs complete before a node starts.
        let active: Vec<bool> = {
            let mut v = vec![false; cpg.node_count()];
            for e in &report.events {
                v[e.node.index()] = true;
            }
            v
        };
        for e in &report.events {
            let is_join = matches!(cpg.node(e.node).kind, CpgNodeKind::ReplicaJoin { .. });
            for edge in cpg.incoming(e.node) {
                if active[edge.from.index()] && !is_join {
                    let pred_end = schedule.end(edge.from);
                    if e.start < pred_end && !cpg.node(edge.from).conditional {
                        violations
                            .push(Violation::Causality { node: cpg.name(e.node).to_string() });
                    }
                    // For conditional predecessors on the taken branch the
                    // start must also follow; outcome edges are checked via
                    // the edge condition.
                    if let Some(lit) = edge.condition {
                        let taken = report.scenario.is_faulted(lit.cond) == lit.fault;
                        if taken && e.start < pred_end {
                            violations
                                .push(Violation::Causality { node: cpg.name(e.node).to_string() });
                        }
                    }
                }
            }
        }
        // Resource exclusivity within the scenario.
        let mut by_resource: std::collections::BTreeMap<(u8, usize), Vec<usize>> =
            std::collections::BTreeMap::new();
        for (i, e) in report.events.iter().enumerate() {
            match cpg.node(e.node).location {
                Location::Node(n) => by_resource.entry((0, n.index())).or_default().push(i),
                Location::Bus => by_resource.entry((1, 0)).or_default().push(i),
                Location::None => {}
            }
        }
        for events in by_resource.values() {
            for (i, &a) in events.iter().enumerate() {
                for &b in &events[i + 1..] {
                    let (ea, eb) = (&report.events[a], &report.events[b]);
                    if ea.start < eb.end
                        && eb.start < ea.end
                        && ea.end > ea.start
                        && eb.end > eb.start
                    {
                        violations.push(Violation::ResourceOverlap {
                            a: cpg.name(ea.node).to_string(),
                            b: cpg.name(eb.node).to_string(),
                        });
                    }
                }
            }
        }
    }
    violations.dedup();
    Ok(Verification { scenarios: count, worst_makespan, violations })
}

/// SplitMix64 — a tiny, dependency-free, deterministic PRNG for scenario
/// sampling (the workload generator uses `rand_chacha`; the simulator only
/// needs coin flips).
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftes_ft::PolicyAssignment;
    use ftes_ftcpg::{build_ftcpg, BuildConfig, CopyMapping};
    use ftes_model::{samples, FaultModel, Mapping};
    use ftes_sched::{schedule_ftcpg, SchedConfig};
    use ftes_tdma::Platform;

    fn fig5_system() -> (Application, FtCpg, ConditionalSchedule, Transparency) {
        let (app, arch, transparency) = samples::fig5();
        let mapping = Mapping::new(&app, &arch, samples::fig5_mapping()).unwrap();
        let policies = PolicyAssignment::uniform_reexecution(&app, 2);
        let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies).unwrap();
        let cpg = build_ftcpg(
            &app,
            &policies,
            &copies,
            FaultModel::new(2),
            &transparency,
            BuildConfig::default(),
        )
        .unwrap();
        let platform = Platform::homogeneous(2, Time::new(8)).unwrap();
        let schedule = schedule_ftcpg(&app, &cpg, &platform, SchedConfig::default()).unwrap();
        (app, cpg, schedule, transparency)
    }

    #[test]
    fn fig5_is_sound_under_exhaustive_injection() {
        let (app, cpg, schedule, transparency) = fig5_system();
        let v = verify_exhaustive(&app, &cpg, &schedule, &transparency, 1_000_000).unwrap();
        assert!(v.is_sound(), "violations: {:?}", v.violations);
        assert!(v.scenarios > 10);
        assert!(v.worst_makespan <= schedule.length());
        assert!(v.worst_makespan <= app.deadline());
    }

    #[test]
    fn sampled_verification_is_deterministic() {
        let (app, cpg, schedule, transparency) = fig5_system();
        let a = verify_sampled(&app, &cpg, &schedule, &transparency, 50, 42).unwrap();
        let b = verify_sampled(&app, &cpg, &schedule, &transparency, 50, 42).unwrap();
        assert_eq!(a, b);
        assert!(a.is_sound(), "violations: {:?}", a.violations);
        assert_eq!(a.scenarios, 51, "fault-free + 50 samples");
    }

    #[test]
    fn tight_deadline_is_reported() {
        let (app, cpg, schedule, transparency) = fig5_system();
        // Rebuild the application with an unmeetable deadline but identical
        // structure (the schedule stays valid; the check must fire).
        let (tight_app, _, _) = samples::fig5();
        let _ = tight_app;
        let mut b = ftes_model::ApplicationBuilder::new(2);
        for (_, p) in app.processes() {
            b.add_process(
                ftes_model::ProcessSpec::new(
                    p.name(),
                    (0..2).map(|i| p.wcet_on(ftes_model::NodeId::new(i))),
                )
                .overheads(p.alpha(), p.mu(), p.chi()),
            );
        }
        for (_, m) in app.messages() {
            b.add_message(m.name(), m.src(), m.dst(), m.transmission()).unwrap();
        }
        let tight = b.deadline(Time::new(50)).build().unwrap();
        let v = verify_exhaustive(&tight, &cpg, &schedule, &transparency, 1_000_000).unwrap();
        assert!(v.violations.iter().any(|x| matches!(x, Violation::DeadlineMiss { .. })));
    }

    #[test]
    fn scenario_limit_is_surfaced() {
        let (app, cpg, schedule, transparency) = fig5_system();
        assert!(matches!(
            verify_exhaustive(&app, &cpg, &schedule, &transparency, 3),
            Err(SimError::TooManyScenarios(3))
        ));
    }
}
