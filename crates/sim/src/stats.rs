//! Scenario statistics: distribution of makespans and per-process response
//! times across fault scenarios — the quantitative counterpart of the
//! paper's argument that the number of execution scenarios (and their
//! spread) is what transparency trades against performance (§3.3).

use crate::{simulate, SimError};
use ftes_ftcpg::{enumerate_scenarios, CpgNodeKind, FtCpg};
use ftes_model::{Application, ProcessId, Time};
use ftes_sched::ConditionalSchedule;

/// Distribution summary of a set of integer time samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeDistribution {
    /// Minimum sample.
    pub min: Time,
    /// Maximum sample.
    pub max: Time,
    /// Arithmetic mean, rounded towards zero.
    pub mean: Time,
    /// Number of samples.
    pub samples: usize,
}

impl TimeDistribution {
    fn from_samples(samples: &[Time]) -> Option<Self> {
        let (&min, &max) = (samples.iter().min()?, samples.iter().max()?);
        let sum: i64 = samples.iter().map(|t| t.units()).sum();
        Some(TimeDistribution {
            min,
            max,
            mean: Time::new(sum / samples.len() as i64),
            samples: samples.len(),
        })
    }
}

/// Per-process response-time statistics across scenarios.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessResponse {
    /// The application process.
    pub process: ProcessId,
    /// Completion time of the process's *successful* execution, across all
    /// scenarios in which it runs.
    pub completion: TimeDistribution,
}

/// Scenario census of a schedule: makespan distribution plus per-process
/// response-time distributions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioStats {
    /// Distribution of scenario makespans.
    pub makespan: TimeDistribution,
    /// Per-process completion distributions (indexed by process id).
    pub responses: Vec<ProcessResponse>,
    /// Number of scenarios with exactly 0, 1, 2, … faults.
    pub scenarios_by_fault_count: Vec<usize>,
}

impl ScenarioStats {
    /// Relative spread of the makespan, `(max − min) / min` — a jitter
    /// measure: fully transparent systems approach zero spread for frozen
    /// entities while flexible ones trade jitter for speed (§3.3).
    pub fn makespan_spread(&self) -> f64 {
        if self.makespan.min <= Time::ZERO {
            return 0.0;
        }
        (self.makespan.max - self.makespan.min).as_f64() / self.makespan.min.as_f64()
    }
}

/// Replays every consistent fault scenario (up to `scenario_limit`) and
/// aggregates makespan / response-time distributions.
///
/// # Errors
///
/// Returns [`SimError::TooManyScenarios`] when the census exceeds the limit
/// and propagates replay errors.
pub fn scenario_stats(
    app: &Application,
    cpg: &FtCpg,
    schedule: &ConditionalSchedule,
    scenario_limit: usize,
) -> Result<ScenarioStats, SimError> {
    let scenarios = enumerate_scenarios(cpg, scenario_limit)
        .map_err(|_| SimError::TooManyScenarios(scenario_limit))?;
    let mut makespans = Vec::with_capacity(scenarios.len());
    let mut completions: Vec<Vec<Time>> = vec![Vec::new(); app.process_count()];
    let mut by_faults = Vec::new();
    for scenario in scenarios {
        let fc = scenario.fault_count() as usize;
        if by_faults.len() <= fc {
            by_faults.resize(fc + 1, 0);
        }
        by_faults[fc] += 1;
        let report = simulate(app, cpg, schedule, scenario)?;
        makespans.push(report.makespan);
        // The successful completion of each process in this scenario is the
        // latest non-faulted copy end (recoveries complete the output).
        let mut success: Vec<Option<Time>> = vec![None; app.process_count()];
        for e in &report.events {
            if let CpgNodeKind::ProcessCopy { process, .. } = cpg.node(e.node).kind {
                if !e.faulted {
                    let slot = &mut success[process.index()];
                    *slot = Some(slot.map_or(e.end, |t: Time| t.max(e.end)));
                }
            }
        }
        for (i, s) in success.into_iter().enumerate() {
            if let Some(t) = s {
                completions[i].push(t);
            }
        }
    }
    let makespan =
        TimeDistribution::from_samples(&makespans).expect("at least the fault-free scenario");
    let responses = completions
        .into_iter()
        .enumerate()
        .filter_map(|(i, samples)| {
            TimeDistribution::from_samples(&samples)
                .map(|completion| ProcessResponse { process: ProcessId::new(i), completion })
        })
        .collect();
    Ok(ScenarioStats { makespan, responses, scenarios_by_fault_count: by_faults })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftes_ft::PolicyAssignment;
    use ftes_ftcpg::{build_ftcpg, BuildConfig, CopyMapping};
    use ftes_model::{samples, FaultModel, Mapping, Transparency};
    use ftes_sched::{schedule_ftcpg, SchedConfig};
    use ftes_tdma::Platform;

    fn fig5_stats(transparency: &Transparency) -> ScenarioStats {
        let (app, arch, _) = samples::fig5();
        let mapping = Mapping::new(&app, &arch, samples::fig5_mapping()).unwrap();
        let policies = PolicyAssignment::uniform_reexecution(&app, 2);
        let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies).unwrap();
        let cpg = build_ftcpg(
            &app,
            &policies,
            &copies,
            FaultModel::new(2),
            transparency,
            BuildConfig::default(),
        )
        .unwrap();
        let platform = Platform::homogeneous(2, ftes_model::Time::new(8)).unwrap();
        let schedule = schedule_ftcpg(&app, &cpg, &platform, SchedConfig::default()).unwrap();
        scenario_stats(&app, &cpg, &schedule, 1_000_000).unwrap()
    }

    #[test]
    fn census_counts_and_ordering() {
        let (_, _, t) = samples::fig5();
        let stats = fig5_stats(&t);
        assert_eq!(stats.scenarios_by_fault_count[0], 1, "one fault-free scenario");
        assert!(stats.scenarios_by_fault_count[1] > 0);
        assert!(stats.makespan.min <= stats.makespan.mean);
        assert!(stats.makespan.mean <= stats.makespan.max);
        assert_eq!(stats.responses.len(), 4, "every process responds");
        assert!(stats.makespan_spread() >= 0.0);
    }

    #[test]
    fn fault_free_bound_is_minimum() {
        let (_, _, t) = samples::fig5();
        let stats = fig5_stats(&t);
        // The fault-free scenario has the smallest makespan in this system
        // (recoveries only ever add time).
        assert_eq!(stats.makespan.samples, stats.scenarios_by_fault_count.iter().sum::<usize>());
    }

    #[test]
    fn transparency_reduces_makespan_spread_of_frozen_entities() {
        let flexible = fig5_stats(&Transparency::none());
        let frozen = fig5_stats(&Transparency::fully_transparent());
        // Fully transparent schedules pay more in the minimum (fault-free)
        // scenario.
        assert!(frozen.makespan.min >= flexible.makespan.min);
    }
}
