//! Errors reported by the simulator.

use std::error::Error;
use std::fmt;

/// Error produced during scenario replay or verification.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The injected scenario is not realizable on the FT-CPG (faults on
    /// inactive copies or more faults than the budget `k`); payload is the
    /// scenario's fault count.
    InconsistentScenario(u32),
    /// The scenario space exceeds the exhaustive-verification limit; use
    /// sampled verification instead.
    TooManyScenarios(usize),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InconsistentScenario(n) => {
                write!(f, "fault scenario with {n} faults is not realizable on this FT-CPG")
            }
            SimError::TooManyScenarios(limit) => {
                write!(f, "more than {limit} fault scenarios; use sampled verification")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(SimError::InconsistentScenario(3).to_string().contains("3 faults"));
        assert!(SimError::TooManyScenarios(10).to_string().contains("10"));
    }
}
