//! Discrete-event execution of a conditional schedule under one concrete
//! fault scenario.
//!
//! The distributed run-time scheduler of §5.2 is table-driven: each node
//! activates processes and message transmissions at the table times of the
//! guard column matching the condition values seen so far. Executing a
//! scenario therefore amounts to replaying the FT-CPG nodes whose guards the
//! scenario satisfies, at their scheduled times — and checking that this
//! replay is causally and resource-wise sound.

use crate::SimError;
use ftes_ftcpg::{CpgNodeId, CpgNodeKind, FaultScenario, FtCpg, Location};
use ftes_model::{Application, Time};
use ftes_sched::ConditionalSchedule;

/// One executed FT-CPG node in a scenario replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimEvent {
    /// The executed node.
    pub node: CpgNodeId,
    /// Execution start.
    pub start: Time,
    /// Execution end.
    pub end: Time,
    /// `true` if the scenario injects a fault into this execution.
    pub faulted: bool,
}

/// The replay of one fault scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimReport {
    /// The injected scenario.
    pub scenario: FaultScenario,
    /// Events of every active node, in topological order.
    pub events: Vec<SimEvent>,
    /// Completion time of the last event.
    pub makespan: Time,
    /// `true` iff every application process produced a successful
    /// (non-faulted) execution in this scenario.
    pub completed: bool,
}

impl SimReport {
    /// The event of a node, if it was active in the scenario.
    pub fn event(&self, node: CpgNodeId) -> Option<&SimEvent> {
        self.events.iter().find(|e| e.node == node)
    }
}

/// Replays `scenario` against the schedule.
///
/// # Errors
///
/// Returns [`SimError::InconsistentScenario`] if the scenario is not
/// realizable on `cpg` (inactive faults or budget violation).
///
/// # Examples
///
/// ```
/// use ftes_ft::PolicyAssignment;
/// use ftes_ftcpg::{build_ftcpg, BuildConfig, CopyMapping, FaultScenario};
/// use ftes_model::{samples, FaultModel, Mapping, Time, Transparency};
/// use ftes_sched::{schedule_ftcpg, SchedConfig};
/// use ftes_sim::simulate;
/// use ftes_tdma::Platform;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let (app, arch) = samples::fig1_process(1);
/// let mapping = Mapping::cheapest(&app, &arch)?;
/// let policies = PolicyAssignment::uniform_reexecution(&app, 1);
/// let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies)?;
/// let cpg = build_ftcpg(&app, &policies, &copies, FaultModel::new(1),
///                       &Transparency::none(), BuildConfig::default())?;
/// let platform = Platform::homogeneous(1, Time::new(10))?;
/// let schedule = schedule_ftcpg(&app, &cpg, &platform, SchedConfig::default())?;
/// let report = simulate(&app, &cpg, &schedule, FaultScenario::fault_free())?;
/// assert!(report.completed);
/// assert_eq!(report.makespan, Time::new(70));
/// # Ok(())
/// # }
/// ```
pub fn simulate(
    app: &Application,
    cpg: &FtCpg,
    schedule: &ConditionalSchedule,
    scenario: FaultScenario,
) -> Result<SimReport, SimError> {
    if !scenario.is_consistent(cpg) {
        return Err(SimError::InconsistentScenario(scenario.fault_count()));
    }
    let active = scenario.active_nodes(cpg);
    let mut events = Vec::new();
    let mut makespan = Time::ZERO;
    // Track whether each application process delivered a correct result.
    let mut delivered = vec![false; app.process_count()];
    for (id, node) in cpg.iter() {
        if !active[id.index()] {
            continue;
        }
        let (start, end) = (schedule.start(id), schedule.end(id));
        let faulted = scenario.is_faulted(id);
        events.push(SimEvent { node: id, start, end, faulted });
        makespan = makespan.max(end);
        if let CpgNodeKind::ProcessCopy { process, .. } = node.kind {
            if !faulted {
                delivered[process.index()] = true;
            }
        }
        let _ = node.location == Location::None;
    }
    let completed = delivered.iter().all(|&d| d);
    Ok(SimReport { scenario, events, makespan, completed })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftes_ft::PolicyAssignment;
    use ftes_ftcpg::{build_ftcpg, enumerate_scenarios, BuildConfig, CopyMapping};
    use ftes_model::{samples, FaultModel, Mapping, ProcessId, Transparency};
    use ftes_sched::{schedule_ftcpg, SchedConfig};
    use ftes_tdma::Platform;

    fn single_proc(k: u32) -> (Application, FtCpg, ConditionalSchedule) {
        let (app, arch) = samples::fig1_process(1);
        let mapping = Mapping::cheapest(&app, &arch).unwrap();
        let policies = PolicyAssignment::uniform_reexecution(&app, k);
        let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies).unwrap();
        let cpg = build_ftcpg(
            &app,
            &policies,
            &copies,
            FaultModel::new(k),
            &Transparency::none(),
            BuildConfig::default(),
        )
        .unwrap();
        let platform = Platform::homogeneous(1, Time::new(10)).unwrap();
        let schedule = schedule_ftcpg(&app, &cpg, &platform, SchedConfig::default()).unwrap();
        (app, cpg, schedule)
    }

    #[test]
    fn fault_free_replay_runs_first_attempts_only() {
        let (app, cpg, schedule) = single_proc(2);
        let report = simulate(&app, &cpg, &schedule, FaultScenario::fault_free()).unwrap();
        let copies: Vec<_> = cpg.copies_of_process(ProcessId::new(0)).collect();
        assert!(report.event(copies[0]).is_some());
        assert!(report.event(copies[1]).is_none());
        assert!(report.completed);
        assert_eq!(report.makespan, Time::new(70));
    }

    #[test]
    fn every_scenario_completes_within_worst_case() {
        let (app, cpg, schedule) = single_proc(2);
        for s in enumerate_scenarios(&cpg, 100).unwrap() {
            let r = simulate(&app, &cpg, &schedule, s).unwrap();
            assert!(r.completed, "every scenario must deliver");
            assert!(r.makespan <= schedule.length());
        }
    }

    #[test]
    fn worst_scenario_reaches_schedule_length() {
        let (app, cpg, schedule) = single_proc(2);
        let worst = enumerate_scenarios(&cpg, 100)
            .unwrap()
            .into_iter()
            .map(|s| simulate(&app, &cpg, &schedule, s).unwrap().makespan)
            .max()
            .unwrap();
        assert_eq!(worst, schedule.length(), "the bound is tight for a single chain");
    }

    #[test]
    fn faulted_execution_is_marked() {
        let (app, cpg, schedule) = single_proc(1);
        let first = cpg.copies_of_process(ProcessId::new(0)).next().unwrap();
        let r = simulate(&app, &cpg, &schedule, FaultScenario::new([first])).unwrap();
        assert!(r.event(first).unwrap().faulted);
        assert!(r.completed, "the recovery attempt still delivers");
    }

    #[test]
    fn inconsistent_scenario_rejected() {
        let (app, cpg, schedule) = single_proc(1);
        let copies: Vec<_> = cpg.copies_of_process(ProcessId::new(0)).collect();
        // Fault on the recovery attempt without one on the first.
        let bad = FaultScenario::new([copies[1]]);
        assert!(matches!(
            simulate(&app, &cpg, &schedule, bad),
            Err(SimError::InconsistentScenario(_))
        ));
    }
}
