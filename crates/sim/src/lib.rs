//! # ftes-sim
//!
//! Fault-injection simulation of synthesized fault-tolerant schedules.
//!
//! The paper's authors validated their schedules analytically; this crate
//! provides the executable counterpart (the substitution for a physical
//! time-triggered testbed, see DESIGN.md): a discrete-event replay of the
//! distributed schedule tables under concrete transient-fault scenarios,
//! plus exhaustive/sampled verification of the synthesis guarantees —
//! delivery under ≤ k faults, deadlines, causality, resource exclusivity
//! and transparency.
//!
//! ```
//! use ftes_ft::PolicyAssignment;
//! use ftes_ftcpg::{build_ftcpg, BuildConfig, CopyMapping};
//! use ftes_model::{samples, FaultModel, Mapping, Time, Transparency};
//! use ftes_sched::{schedule_ftcpg, SchedConfig};
//! use ftes_sim::verify_exhaustive;
//! use ftes_tdma::Platform;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let (app, arch, transparency) = samples::fig5();
//! let mapping = Mapping::new(&app, &arch, samples::fig5_mapping())?;
//! let policies = PolicyAssignment::uniform_reexecution(&app, 2);
//! let copies = CopyMapping::from_base(&app, &arch, &mapping, &policies)?;
//! let cpg = build_ftcpg(&app, &policies, &copies, FaultModel::new(2),
//!                       &transparency, BuildConfig::default())?;
//! let platform = Platform::homogeneous(2, Time::new(8))?;
//! let schedule = schedule_ftcpg(&app, &cpg, &platform, SchedConfig::default())?;
//! let verdict = verify_exhaustive(&app, &cpg, &schedule, &transparency, 100_000)?;
//! assert!(verdict.is_sound());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod exec;
mod stats;
mod verify;

pub use error::SimError;
pub use exec::{simulate, SimEvent, SimReport};
pub use stats::{scenario_stats, ProcessResponse, ScenarioStats, TimeDistribution};
pub use verify::{verify_exhaustive, verify_sampled, Verification, Violation};
