//! Errors reported by fault-tolerance policy construction and validation.

use ftes_model::ProcessId;
use std::error::Error;
use std::fmt;

/// Error produced by recovery-scheme or policy construction/validation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FtError {
    /// A policy must have at least one copy of the process.
    NoCopies,
    /// A WCET or overhead is negative (or the WCET is zero).
    InvalidDuration(&'static str),
    /// The policy cannot tolerate the required number of faults: an
    /// adversary can exhaust every copy (`Σ(rj + 1) ≤ k`).
    InsufficientPolicy {
        /// Required fault budget `k`.
        k: u32,
        /// Faults the policy can absorb before all copies are dead.
        tolerated: u32,
    },
    /// A policy assignment is missing or excess relative to the application.
    AssignmentArityMismatch {
        /// Number of policies supplied.
        got: usize,
        /// Number of processes expected.
        expected: usize,
    },
    /// A specific process's policy fails validation.
    ProcessPolicy(ProcessId, Box<FtError>),
}

impl fmt::Display for FtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FtError::NoCopies => write!(f, "a policy needs at least one copy of the process"),
            FtError::InvalidDuration(what) => write!(f, "{what} must be non-negative"),
            FtError::InsufficientPolicy { k, tolerated } => {
                write!(f, "policy tolerates only {tolerated} faults but k={k} are required")
            }
            FtError::AssignmentArityMismatch { got, expected } => write!(
                f,
                "policy assignment has {got} entries but the application has {expected} processes"
            ),
            FtError::ProcessPolicy(p, inner) => write!(f, "invalid policy for {p}: {inner}"),
        }
    }
}

impl Error for FtError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = FtError::InsufficientPolicy { k: 3, tolerated: 1 };
        assert!(e.to_string().contains("k=3"));
        let wrapped = FtError::ProcessPolicy(ProcessId::new(4), Box::new(e));
        assert!(wrapped.to_string().contains("P4"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<FtError>();
    }
}
