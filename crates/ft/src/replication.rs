//! Timing comparison of active replication and passive replication
//! (primary-backup), reproducing the scenarios of the paper's Fig. 2.
//!
//! These closed-form completion times are illustrative (they assume
//! dedicated nodes per replica and no contention) and back the
//! `replication_vs_checkpointing` example and several unit/integration
//! tests; the real scheduling of replicas happens in `ftes-sched`.

use crate::{FtError, RecoveryScheme};
use ftes_model::Time;

/// Completion time of **active replication** (Fig. 2b): all replicas run in
/// parallel from time zero, each on its own node, each execution taking
/// `C + α`. As long as at most `replicas − 1` replicas are hit by faults,
/// some replica finishes at `C + α` — fault occurrences do not delay
/// completion (the spatial-redundancy advantage of §3.2).
///
/// `faulty_replicas` is the number of replicas hit by a fault; the result is
/// `None` when every replica fails (the configuration tolerates only
/// `replicas − 1` faults).
pub fn active_replication_completion(
    scheme: RecoveryScheme,
    replicas: u32,
    faulty_replicas: u32,
) -> Option<Time> {
    if replicas == 0 || faulty_replicas >= replicas {
        return None;
    }
    Some(scheme.wcet() + scheme.alpha())
}

/// Completion time of **primary-backup** (passive replication, Fig. 2c):
/// the backup replica is activated only after a fault in the primary is
/// detected, so the fault-free time equals one execution but each fault
/// serializes another full execution:
/// `(faults + 1)·(C + α)` for `faults < replicas`.
///
/// Returns `None` when the fault count reaches the replica count.
pub fn primary_backup_completion(
    scheme: RecoveryScheme,
    replicas: u32,
    faults: u32,
) -> Option<Time> {
    if replicas == 0 || faults >= replicas {
        return None;
    }
    Some((scheme.wcet() + scheme.alpha()) * i64::from(faults + 1))
}

/// Worst-case node occupancy of active replication: every replica runs even
/// when no fault occurs (`replicas · (C + α)` total processor time), the
/// resource cost called out in §3.2.
pub fn active_replication_demand(scheme: RecoveryScheme, replicas: u32) -> Time {
    (scheme.wcet() + scheme.alpha()) * i64::from(replicas)
}

/// Fault-free node occupancy of primary-backup: only the primary runs.
pub fn primary_backup_demand(scheme: RecoveryScheme) -> Time {
    scheme.wcet() + scheme.alpha()
}

/// Summary row comparing both replication styles for a process; used by the
/// Fig. 2 example binary and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicationComparison {
    /// Completion with no faults: active replication.
    pub active_no_fault: Time,
    /// Completion with one fault: active replication.
    pub active_one_fault: Time,
    /// Completion with no faults: primary-backup.
    pub passive_no_fault: Time,
    /// Completion with one fault: primary-backup.
    pub passive_one_fault: Time,
}

/// Computes the Fig. 2 comparison (two replicas, zero or one fault).
///
/// # Errors
///
/// Returns [`FtError::InsufficientPolicy`] if two replicas cannot provide
/// the requested scenarios (never happens for one fault).
pub fn fig2_comparison(scheme: RecoveryScheme) -> Result<ReplicationComparison, FtError> {
    let fail = |_| FtError::InsufficientPolicy { k: 1, tolerated: 1 };
    Ok(ReplicationComparison {
        active_no_fault: active_replication_completion(scheme, 2, 0).ok_or(()).map_err(fail)?,
        active_one_fault: active_replication_completion(scheme, 2, 1).ok_or(()).map_err(fail)?,
        passive_no_fault: primary_backup_completion(scheme, 2, 0).ok_or(()).map_err(fail)?,
        passive_one_fault: primary_backup_completion(scheme, 2, 1).ok_or(()).map_err(fail)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig2_scheme() -> RecoveryScheme {
        // Fig. 2a: C1 = 60, α = 10.
        RecoveryScheme::new(Time::new(60), Time::new(10), Time::new(10), Time::new(5)).unwrap()
    }

    #[test]
    fn fig2_active_replication_is_fault_insensitive() {
        let s = fig2_scheme();
        assert_eq!(active_replication_completion(s, 2, 0), Some(Time::new(70)));
        assert_eq!(active_replication_completion(s, 2, 1), Some(Time::new(70)));
        assert_eq!(active_replication_completion(s, 2, 2), None, "both replicas dead");
    }

    #[test]
    fn fig2_primary_backup_serializes_on_fault() {
        let s = fig2_scheme();
        assert_eq!(primary_backup_completion(s, 2, 0), Some(Time::new(70)));
        assert_eq!(primary_backup_completion(s, 2, 1), Some(Time::new(140)));
        assert_eq!(primary_backup_completion(s, 2, 2), None);
    }

    #[test]
    fn fig2_trade_off_shape() {
        // The §3.2 trade-off: active replication is faster under faults but
        // costs more resources even without faults.
        let s = fig2_scheme();
        let cmp = fig2_comparison(s).unwrap();
        assert!(cmp.active_one_fault < cmp.passive_one_fault);
        assert_eq!(cmp.active_no_fault, cmp.passive_no_fault);
        assert!(active_replication_demand(s, 2) > primary_backup_demand(s));
    }

    #[test]
    fn zero_replicas_never_complete() {
        let s = fig2_scheme();
        assert_eq!(active_replication_completion(s, 0, 0), None);
        assert_eq!(primary_backup_completion(s, 0, 0), None);
    }
}
