//! Fault-tolerance policy assignment (paper §4, Fig. 4): the four functions
//! `P` (policy kind), `Q` (replica count), `R` (recoveries per copy) and `X`
//! (checkpoints per copy), folded into one validated [`Policy`] value per
//! process.

use crate::{FtError, RecoveryScheme};
use ftes_model::{Application, ProcessId, Time};

/// The policy kind `P(Pi)` of §4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Time redundancy only: rollback recovery with checkpointing
    /// (re-execution is the single-checkpoint special case, §3.1).
    Checkpointing,
    /// Space redundancy only: active replication (§3.2).
    Replication,
    /// Both: replicated copies that may themselves be checkpointed (Fig. 4c).
    ReplicationAndCheckpointing,
}

/// Fault-tolerance plan for one copy (the original or a replica) of a
/// process: how many recoveries `R` it may perform and with how many
/// checkpoints `X` it runs.
///
/// `checkpoints = 0` encodes `X(Pi) = 0` (§4): the copy is not
/// checkpointed; a recovery restores the initial inputs and re-executes the
/// whole process (plain re-execution, §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CopyPlan {
    /// Number of recoveries `R` this copy may perform (faults it absorbs).
    pub recoveries: u32,
    /// Number of checkpoints `X` (= execution segments).
    pub checkpoints: u32,
}

impl CopyPlan {
    /// A copy that is never recovered (pure replica, Fig. 4b: `R = 0`,
    /// `X = 0`).
    pub const fn plain() -> Self {
        CopyPlan { recoveries: 0, checkpoints: 0 }
    }

    /// A copy recovering up to `recoveries` times at re-execution
    /// granularity (`X = 0`).
    pub const fn reexecuted(recoveries: u32) -> Self {
        CopyPlan { recoveries, checkpoints: 0 }
    }

    /// A checkpointed copy.
    pub const fn checkpointed(recoveries: u32, checkpoints: u32) -> Self {
        CopyPlan { recoveries, checkpoints }
    }

    /// Worst-case execution length of this copy under `scheme`.
    pub fn worst_case_time(self, scheme: RecoveryScheme) -> Time {
        scheme.worst_case_time(self.checkpoints, self.recoveries)
    }
}

/// The complete fault-tolerance policy of one process: one [`CopyPlan`] per
/// copy (original + `Q` replicas).
///
/// A policy *tolerates* `k` faults iff an adversary distributing `k` faults
/// over the copies cannot kill them all: copy `j` dies only after
/// `rj + 1` faults, so the policy survives iff `Σ(rj + 1) > k`
/// (equivalently `Q + Σrj ≥ k`). For the paper's canonical assignments:
///
/// * pure checkpointing (Fig. 4a): 1 copy, `r = k` — tolerates `k`;
/// * pure replication (Fig. 4b): `k + 1` copies, `r = 0` — tolerates `k`;
/// * combined (Fig. 4c, `k = 2`): 2 copies with `r = {0, 1}` — tolerates 2.
///
/// # Examples
///
/// ```
/// use ftes_ft::{CopyPlan, Policy};
///
/// let fig4c = Policy::from_copies(vec![
///     CopyPlan::plain(),
///     CopyPlan::checkpointed(1, 2),
/// ]).expect("at least one copy");
/// assert!(fig4c.tolerates(2));
/// assert!(!fig4c.tolerates(3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Policy {
    copies: Vec<CopyPlan>,
}

impl Policy {
    /// Pure checkpointing: one copy with `recoveries` recoveries and
    /// `checkpoints` checkpoints (Fig. 4a). `checkpoints = 0` degenerates to
    /// plain re-execution.
    pub fn checkpointing(recoveries: u32, checkpoints: u32) -> Self {
        Policy { copies: vec![CopyPlan::checkpointed(recoveries, checkpoints)] }
    }

    /// Pure re-execution: one copy, `recoveries` recoveries, no checkpoints.
    pub fn reexecution(recoveries: u32) -> Self {
        Policy { copies: vec![CopyPlan::reexecuted(recoveries)] }
    }

    /// Pure active replication tolerating `k` faults: `k + 1` plain copies
    /// (Fig. 4b).
    pub fn replication(k: u32) -> Self {
        Policy { copies: vec![CopyPlan::plain(); (k + 1) as usize] }
    }

    /// Arbitrary combination (Fig. 4c): explicit per-copy plans.
    ///
    /// # Errors
    ///
    /// Returns [`FtError::NoCopies`] for an empty list.
    pub fn from_copies(copies: Vec<CopyPlan>) -> Result<Self, FtError> {
        if copies.is_empty() {
            return Err(FtError::NoCopies);
        }
        Ok(Policy { copies })
    }

    /// The policy kind `P(Pi)`.
    pub fn kind(&self) -> PolicyKind {
        let replicated = self.copies.len() > 1;
        let checkpointed = self.copies.iter().any(|c| c.recoveries > 0);
        match (replicated, checkpointed) {
            (true, true) => PolicyKind::ReplicationAndCheckpointing,
            (true, false) => PolicyKind::Replication,
            _ => PolicyKind::Checkpointing,
        }
    }

    /// The replica count `Q(Pi)` (copies beyond the original).
    pub fn replica_count(&self) -> u32 {
        (self.copies.len() - 1) as u32
    }

    /// The per-copy plans (index 0 is the original process).
    pub fn copies(&self) -> &[CopyPlan] {
        &self.copies
    }

    /// Total faults the policy can absorb before all copies are dead:
    /// `Σ(rj + 1) − 1`.
    pub fn tolerated_faults(&self) -> u32 {
        self.copies.iter().map(|c| c.recoveries + 1).sum::<u32>() - 1
    }

    /// Returns `true` if the policy tolerates `k` faults.
    pub fn tolerates(&self, k: u32) -> bool {
        self.tolerated_faults() >= k
    }

    /// Validates the policy against a fault budget.
    ///
    /// # Errors
    ///
    /// Returns [`FtError::InsufficientPolicy`] if `k` faults can kill every
    /// copy.
    pub fn validate(&self, k: u32) -> Result<(), FtError> {
        if !self.tolerates(k) {
            return Err(FtError::InsufficientPolicy { k, tolerated: self.tolerated_faults() });
        }
        Ok(())
    }

    /// Worst-case completion time of the *slowest copy* under `scheme`
    /// (with active replication all copies run even without faults, §3.2,
    /// so the slowest copy bounds the process's contribution to the
    /// schedule when copies run in parallel on distinct nodes).
    pub fn worst_case_copy_time(&self, scheme: RecoveryScheme) -> Time {
        self.copies.iter().map(|c| c.worst_case_time(scheme)).max().unwrap_or(Time::ZERO)
    }
}

/// The per-process policy assignment `F = <P, Q, R, X>` for a whole
/// application (§6).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PolicyAssignment {
    policies: Vec<Policy>,
}

impl PolicyAssignment {
    /// Wraps one policy per process.
    ///
    /// # Errors
    ///
    /// Returns [`FtError::AssignmentArityMismatch`] if the count differs
    /// from the application's process count.
    pub fn new(app: &Application, policies: Vec<Policy>) -> Result<Self, FtError> {
        if policies.len() != app.process_count() {
            return Err(FtError::AssignmentArityMismatch {
                got: policies.len(),
                expected: app.process_count(),
            });
        }
        Ok(PolicyAssignment { policies })
    }

    /// Every process re-executed up to `k` times (the paper's MX strategy).
    pub fn uniform_reexecution(app: &Application, k: u32) -> Self {
        PolicyAssignment { policies: vec![Policy::reexecution(k); app.process_count()] }
    }

    /// Every process actively replicated `k` times (the MR strategy).
    pub fn uniform_replication(app: &Application, k: u32) -> Self {
        PolicyAssignment { policies: vec![Policy::replication(k); app.process_count()] }
    }

    /// Every process checkpointed with its local optimum \[27\] for `k` faults
    /// on its cheapest node — the Fig. 8 baseline.
    ///
    /// # Errors
    ///
    /// Returns [`FtError::InvalidDuration`] if a process has degenerate
    /// WCET/overheads (cannot happen for a validated application).
    pub fn local_checkpointing(
        app: &Application,
        k: u32,
        max_checkpoints: u32,
    ) -> Result<Self, FtError> {
        let mut policies = Vec::with_capacity(app.process_count());
        for (_, p) in app.processes() {
            let wcet = p
                .candidate_nodes()
                .filter_map(|n| p.wcet_on(n))
                .min()
                .expect("validated application has a feasible node");
            let scheme = RecoveryScheme::for_process(p, wcet)?;
            let n = scheme.optimal_checkpoints_local(k, max_checkpoints);
            policies.push(Policy::checkpointing(k, n));
        }
        Ok(PolicyAssignment { policies })
    }

    /// The policy of one process.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn policy(&self, p: ProcessId) -> &Policy {
        &self.policies[p.index()]
    }

    /// Replaces the policy of one process.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn set(&mut self, p: ProcessId, policy: Policy) {
        self.policies[p.index()] = policy;
    }

    /// Iterator over `(ProcessId, &Policy)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, &Policy)> {
        self.policies.iter().enumerate().map(|(i, p)| (ProcessId::new(i), p))
    }

    /// Validates every process policy against the fault budget `k`.
    ///
    /// # Errors
    ///
    /// Returns [`FtError::ProcessPolicy`] naming the first offending
    /// process.
    pub fn validate(&self, k: u32) -> Result<(), FtError> {
        for (pid, policy) in self.iter() {
            policy.validate(k).map_err(|e| FtError::ProcessPolicy(pid, Box::new(e)))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftes_model::samples;

    #[test]
    fn fig4_policies() {
        // Fig. 4a: checkpointing with k = 2 recoveries, 3 checkpoints.
        let a = Policy::checkpointing(2, 3);
        assert_eq!(a.kind(), PolicyKind::Checkpointing);
        assert_eq!(a.replica_count(), 0);
        assert!(a.tolerates(2));

        // Fig. 4b: replication, k = 2 => 3 copies.
        let b = Policy::replication(2);
        assert_eq!(b.kind(), PolicyKind::Replication);
        assert_eq!(b.replica_count(), 2);
        assert!(b.tolerates(2) && !b.tolerates(3));

        // Fig. 4c: two copies, R = {0, 1}.
        let c = Policy::from_copies(vec![CopyPlan::plain(), CopyPlan::checkpointed(1, 2)]).unwrap();
        assert_eq!(c.kind(), PolicyKind::ReplicationAndCheckpointing);
        assert_eq!(c.replica_count(), 1);
        assert!(c.tolerates(2));
    }

    #[test]
    fn reexecution_is_uncheckpointed_recovery() {
        let p = Policy::reexecution(3);
        assert_eq!(p.copies(), &[CopyPlan { recoveries: 3, checkpoints: 0 }]);
        assert_eq!(p.kind(), PolicyKind::Checkpointing);
        assert!(p.tolerates(3));
    }

    #[test]
    fn adversarial_tolerance_bound() {
        // Two copies with r = {1, 1}: adversary needs 2 faults per copy.
        let p =
            Policy::from_copies(vec![CopyPlan::reexecuted(1), CopyPlan::reexecuted(1)]).unwrap();
        assert_eq!(p.tolerated_faults(), 3);
        assert!(p.tolerates(3));
        assert_eq!(p.validate(4).unwrap_err(), FtError::InsufficientPolicy { k: 4, tolerated: 3 });
    }

    #[test]
    fn malformed_policies_rejected() {
        assert_eq!(Policy::from_copies(vec![]).unwrap_err(), FtError::NoCopies);
    }

    #[test]
    fn worst_case_copy_time_takes_slowest() {
        let scheme =
            RecoveryScheme::new(Time::new(60), Time::new(10), Time::new(10), Time::new(5)).unwrap();
        let p = Policy::from_copies(vec![CopyPlan::plain(), CopyPlan::checkpointed(1, 2)]).unwrap();
        // plain copy: E(0) = 70; checkpointed copy: W(2, 1) = 130.
        assert_eq!(p.worst_case_copy_time(scheme), Time::new(130));
    }

    #[test]
    fn assignment_construction_and_validation() {
        let (app, _) = samples::fig3();
        let mx = PolicyAssignment::uniform_reexecution(&app, 2);
        mx.validate(2).unwrap();
        assert!(mx.validate(3).is_err());

        let mr = PolicyAssignment::uniform_replication(&app, 2);
        mr.validate(2).unwrap();
        for (_, pol) in mr.iter() {
            assert_eq!(pol.kind(), PolicyKind::Replication);
        }

        assert!(matches!(
            PolicyAssignment::new(&app, vec![Policy::reexecution(1)]),
            Err(FtError::AssignmentArityMismatch { got: 1, expected: 5 })
        ));
    }

    #[test]
    fn local_checkpointing_uses_punnekkat_optimum() {
        let (app, _) = samples::fig3();
        let pa = PolicyAssignment::local_checkpointing(&app, 2, 16).unwrap();
        pa.validate(2).unwrap();
        for (pid, pol) in pa.iter() {
            assert_eq!(pol.kind(), PolicyKind::Checkpointing);
            let p = app.process(pid);
            let wcet = p.candidate_nodes().filter_map(|n| p.wcet_on(n)).min().unwrap();
            let scheme = RecoveryScheme::for_process(p, wcet).unwrap();
            assert_eq!(pol.copies()[0].checkpoints, scheme.optimal_checkpoints_local(2, 16));
        }
    }

    #[test]
    fn set_and_policy_accessors() {
        let (app, _) = samples::fig3();
        let mut pa = PolicyAssignment::uniform_reexecution(&app, 1);
        pa.set(ProcessId::new(2), Policy::replication(1));
        assert_eq!(pa.policy(ProcessId::new(2)).kind(), PolicyKind::Replication);
        assert_eq!(pa.policy(ProcessId::new(0)).kind(), PolicyKind::Checkpointing);
    }
}
