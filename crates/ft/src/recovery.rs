//! Rollback recovery with equidistant checkpointing (paper §3.1) and the
//! per-process checkpoint-count optimum of Punnekkat et al. \[27\], the
//! baseline of the paper's Fig. 8.

use crate::FtError;
use ftes_model::{Process, Time};

/// Recovery-time algebra for one process execution: WCET plus the three
/// overheads of §3/§4 — error detection `α`, recovery `µ`, checkpointing `χ`.
///
/// With `x ≥ 1` equidistant checkpoints (the first taken at activation, as
/// in Fig. 1b) the process splits into `x` execution segments of `⌈C/x⌉`.
/// `x = 0` is the un-checkpointed case (`X(Pi) = 0` in §4): one segment,
/// recovery restarts from the initial inputs — plain re-execution. Each
/// segment ends with error detection (`α`); each checkpoint costs `χ`; each
/// recovery costs `µ` plus re-execution of one segment plus its detection.
/// The detection overhead of the *final possible* recovery is not counted
/// (once the fault budget is exhausted no further fault can occur — the
/// accounting spelled out for Fig. 1c).
///
/// # Examples
///
/// Reproducing Fig. 1 (`C1 = 60, α = 10, µ = 10, χ = 5`):
///
/// ```
/// use ftes_ft::RecoveryScheme;
/// use ftes_model::Time;
///
/// # fn main() -> Result<(), ftes_ft::FtError> {
/// let p1 = RecoveryScheme::new(Time::new(60), Time::new(10), Time::new(10), Time::new(5))?;
/// // Fig. 1b: two checkpoints, no fault.
/// assert_eq!(p1.fault_free_time(2), Time::new(90));
/// // Fig. 1c: one fault hits the second segment.
/// assert_eq!(p1.worst_case_time(2, 1), Time::new(130));
/// // No checkpoints (re-execution granularity): C + α, as in Fig. 2.
/// assert_eq!(p1.fault_free_time(0), Time::new(70));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RecoveryScheme {
    wcet: Time,
    alpha: Time,
    mu: Time,
    chi: Time,
}

impl RecoveryScheme {
    /// Creates a scheme from WCET and overheads `(α, µ, χ)`.
    ///
    /// # Errors
    ///
    /// Returns [`FtError::InvalidDuration`] if the WCET is not strictly
    /// positive or any overhead is negative.
    pub fn new(wcet: Time, alpha: Time, mu: Time, chi: Time) -> Result<Self, FtError> {
        if wcet <= Time::ZERO {
            return Err(FtError::InvalidDuration("worst-case execution time"));
        }
        for (what, t) in [
            ("error-detection overhead", alpha),
            ("recovery overhead", mu),
            ("checkpointing overhead", chi),
        ] {
            if t.is_negative() {
                return Err(FtError::InvalidDuration(what));
            }
        }
        Ok(RecoveryScheme { wcet, alpha, mu, chi })
    }

    /// Builds the scheme for a process mapped on a node with the given WCET,
    /// taking overheads from the process model.
    ///
    /// # Errors
    ///
    /// Same as [`RecoveryScheme::new`].
    pub fn for_process(process: &Process, wcet: Time) -> Result<Self, FtError> {
        RecoveryScheme::new(wcet, process.alpha(), process.mu(), process.chi())
    }

    /// The raw worst-case execution time `Ci`.
    pub fn wcet(self) -> Time {
        self.wcet
    }

    /// Error-detection overhead `αi`.
    pub fn alpha(self) -> Time {
        self.alpha
    }

    /// Recovery overhead `µi`.
    pub fn mu(self) -> Time {
        self.mu
    }

    /// Checkpointing overhead `χi`.
    pub fn chi(self) -> Time {
        self.chi
    }

    /// Number of execution segments with `x` checkpoints: `max(x, 1)`.
    pub fn segments(self, checkpoints: u32) -> u32 {
        checkpoints.max(1)
    }

    /// Length of the longest execution segment with `x` checkpoints
    /// (`⌈Ci/max(x,1)⌉` — equidistant checkpointing, §4).
    pub fn segment_length(self, checkpoints: u32) -> Time {
        self.wcet.div_ceil(i64::from(self.segments(checkpoints)))
    }

    /// Fault-free execution length with `x` checkpoints:
    /// `E(x) = Ci + x·χi + max(x,1)·αi`.
    ///
    /// `E(0) = Ci + αi` matches the replica execution time of Fig. 2;
    /// `E(2) = 90` for Fig. 1b.
    pub fn fault_free_time(self, checkpoints: u32) -> Time {
        self.wcet
            + self.chi * i64::from(checkpoints)
            + self.alpha * i64::from(self.segments(checkpoints))
    }

    /// Worst-case execution length with `x` checkpoints under at most `h`
    /// faults, all hitting the longest segment:
    ///
    /// `W(x, h) = E(x) + h·(⌈Ci/max(x,1)⌉ + µi + αi) − [h > 0]·αi`
    ///
    /// The subtracted `αi` is the never-needed detection after the final
    /// possible recovery (Fig. 1c).
    pub fn worst_case_time(self, checkpoints: u32, faults: u32) -> Time {
        let base = self.fault_free_time(checkpoints);
        if faults == 0 {
            return base;
        }
        let per_fault = self.segment_length(checkpoints) + self.mu + self.alpha;
        base + per_fault * i64::from(faults) - self.alpha
    }

    /// Recovery slack that must be budgeted beyond the fault-free time to
    /// absorb `h` faults: `W(x,h) − E(x)`.
    pub fn recovery_slack(self, checkpoints: u32, faults: u32) -> Time {
        self.worst_case_time(checkpoints, faults) - self.fault_free_time(checkpoints)
    }

    /// Per-process optimal checkpoint count in isolation — the criterion of
    /// Punnekkat et al. \[27\], the Fig. 8 baseline: the `x` minimizing
    /// `W(x, h)` for this process considered alone (ties broken towards
    /// fewer checkpoints).
    ///
    /// The continuous optimum is `n⁰ = √(h·Ci / (χi + αi))`; because the
    /// equidistant segments round up (`⌈Ci/x⌉`), `W` is not exactly convex
    /// in `x`, so the discrete argmin is found by a scan over
    /// `0..=max_checkpoints` (exact and cheap for realistic caps).
    pub fn optimal_checkpoints_local(self, faults: u32, max_checkpoints: u32) -> u32 {
        if faults == 0 {
            return 0; // no recovery => every checkpoint is pure overhead
        }
        (0..=max_checkpoints)
            .min_by_key(|&x| (self.worst_case_time(x, faults), x))
            .expect("non-empty candidate range")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1() -> RecoveryScheme {
        RecoveryScheme::new(Time::new(60), Time::new(10), Time::new(10), Time::new(5)).unwrap()
    }

    #[test]
    fn fig1_fault_free_lengths() {
        let s = fig1();
        // X = 0 (re-execution / plain replica): C + α = 70 (Fig. 2).
        assert_eq!(s.fault_free_time(0), Time::new(70));
        // One checkpoint at activation: 60 + 5 + 10 = 75.
        assert_eq!(s.fault_free_time(1), Time::new(75));
        // Fig. 1b: two checkpoints: 60 + 10 + 20 = 90.
        assert_eq!(s.fault_free_time(2), Time::new(90));
    }

    #[test]
    fn fig1_single_fault_worst_case() {
        let s = fig1();
        // Fig. 1c: 90 + (30 + 10 + 10) - 10 = 130.
        assert_eq!(s.worst_case_time(2, 1), Time::new(130));
        // Re-execution: 70 + (60 + 10 + 10) - 10 = 140.
        assert_eq!(s.worst_case_time(0, 1), Time::new(140));
    }

    #[test]
    fn checkpointing_beats_reexecution_under_faults() {
        let s = fig1();
        for h in 1..=4 {
            assert!(
                s.worst_case_time(2, h) < s.worst_case_time(0, h),
                "checkpointing reduces the recovery overhead (h={h})"
            );
        }
    }

    #[test]
    fn worst_case_monotone_in_faults() {
        let s = fig1();
        for x in 0..=6 {
            let mut prev = s.worst_case_time(x, 0);
            for h in 1..=6 {
                let cur = s.worst_case_time(x, h);
                assert!(cur > prev, "W(x={x},·) must increase with the fault count");
                prev = cur;
            }
        }
    }

    #[test]
    fn segment_length_rounds_up() {
        let s = RecoveryScheme::new(Time::new(61), Time::ZERO, Time::ZERO, Time::ZERO).unwrap();
        assert_eq!(s.segment_length(0), Time::new(61));
        assert_eq!(s.segment_length(1), Time::new(61));
        assert_eq!(s.segment_length(2), Time::new(31));
        assert_eq!(s.segment_length(61), Time::new(1));
        assert_eq!(s.segments(0), 1);
        assert_eq!(s.segments(4), 4);
    }

    #[test]
    fn recovery_slack_is_worst_minus_fault_free() {
        let s = fig1();
        assert_eq!(s.recovery_slack(2, 1), Time::new(40));
        assert_eq!(s.recovery_slack(2, 0), Time::ZERO);
        assert_eq!(s.recovery_slack(0, 2), Time::new(150));
    }

    #[test]
    fn invalid_durations_rejected() {
        assert!(RecoveryScheme::new(Time::ZERO, Time::ZERO, Time::ZERO, Time::ZERO).is_err());
        assert!(RecoveryScheme::new(Time::new(10), Time::new(-1), Time::ZERO, Time::ZERO).is_err());
    }

    #[test]
    fn local_optimum_matches_exhaustive_scan() {
        // Compare the closed form against brute force over a grid of cases.
        for (c, a, m, x, h) in [
            (60, 10, 10, 5, 1),
            (60, 10, 10, 5, 3),
            (100, 5, 15, 10, 2),
            (40, 1, 1, 1, 6),
            (500, 2, 30, 3, 4),
            (7, 3, 2, 9, 2),
            (1000, 1, 5, 1, 7),
        ] {
            let s = RecoveryScheme::new(Time::new(c), Time::new(a), Time::new(m), Time::new(x))
                .unwrap();
            let max_n = 64;
            let best_scan = (0..=max_n).min_by_key(|&n| (s.worst_case_time(n, h), n)).unwrap();
            let got = s.optimal_checkpoints_local(h, max_n);
            assert_eq!(
                s.worst_case_time(got, h),
                s.worst_case_time(best_scan, h),
                "closed-form optimum must match scan for C={c} α={a} µ={m} χ={x} h={h}"
            );
        }
    }

    #[test]
    fn local_optimum_edge_cases() {
        let s = fig1();
        assert_eq!(s.optimal_checkpoints_local(0, 10), 0, "no faults => no checkpoints");
        let free = RecoveryScheme::new(Time::new(60), Time::ZERO, Time::ZERO, Time::ZERO).unwrap();
        assert_eq!(free.optimal_checkpoints_local(2, 8), 8, "free checkpoints saturate the cap");
        // Cap of one: choose the better of {0, 1}.
        let got = s.optimal_checkpoints_local(3, 1);
        assert!(got <= 1);
        assert!(s.worst_case_time(got, 3) <= s.worst_case_time(1 - got, 3));
    }

    #[test]
    fn for_process_reads_model_overheads() {
        let (app, _) = ftes_model::samples::fig1_process(1);
        let p = app.process(ftes_model::ProcessId::new(0));
        let s = RecoveryScheme::for_process(p, Time::new(60)).unwrap();
        assert_eq!(s.alpha(), Time::new(10));
        assert_eq!(s.mu(), Time::new(10));
        assert_eq!(s.chi(), Time::new(5));
        assert_eq!(s.wcet(), Time::new(60));
    }
}
