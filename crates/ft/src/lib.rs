//! # ftes-ft
//!
//! Fault-tolerance mechanisms of the DATE 2008 paper (§3–§4):
//!
//! * [`RecoveryScheme`] — the timing algebra of rollback recovery with
//!   equidistant checkpointing (error-detection overhead `α`, recovery
//!   overhead `µ`, checkpointing overhead `χ`), including the per-process
//!   checkpoint optimum of Punnekkat et al. \[27\] used as the Fig. 8
//!   baseline;
//! * [`Policy`] / [`PolicyAssignment`] — the `F = <P, Q, R, X>`
//!   fault-tolerance policy functions (checkpointing, active replication,
//!   or both) with adversarial k-fault validity checking;
//! * [`replication`] — closed-form active vs. passive replication timing
//!   (Fig. 2).
//!
//! ## Example: Fig. 1 and Fig. 4 in code
//!
//! ```
//! use ftes_ft::{Policy, RecoveryScheme};
//! use ftes_model::Time;
//!
//! # fn main() -> Result<(), ftes_ft::FtError> {
//! // P1 with C = 60, α = 10, µ = 10, χ = 5 (Fig. 1a).
//! let scheme = RecoveryScheme::new(Time::new(60), Time::new(10), Time::new(10), Time::new(5))?;
//! // Two checkpoints tolerate one fault in 130 time units (Fig. 1c) …
//! assert_eq!(scheme.worst_case_time(2, 1), Time::new(130));
//! // … while pure re-execution (X = 0) needs 140.
//! assert_eq!(scheme.worst_case_time(0, 1), Time::new(140));
//!
//! // Fig. 4b: active replication for k = 2 uses three copies.
//! let policy = Policy::replication(2);
//! assert_eq!(policy.copies().len(), 3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod policy;
mod recovery;
pub mod replication;

pub use error::FtError;
pub use policy::{CopyPlan, Policy, PolicyAssignment, PolicyKind};
pub use recovery::RecoveryScheme;
