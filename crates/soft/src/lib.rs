//! # ftes-soft
//!
//! Soft/hard time-constraint extension of the synthesis flow, after the
//! authors' companion work (reference \[17\] of the paper: *Scheduling of
//! Fault-Tolerant Embedded Systems with Soft and Hard Time Constraints*,
//! DATE 2008).
//!
//! Hard processes keep the full k-fault guarantees of the base flow. *Soft*
//! processes contribute **utility** instead of having hard deadlines: a
//! non-increasing function of their completion time, zero if dropped. This
//! crate places soft processes into the capacity left over by a synthesized
//! fault-tolerant hard schedule, maximizing total utility without ever
//! touching a hard reservation — soft work can never delay a hard process
//! or a recovery, in **any** fault scenario, because placements avoid every
//! conditional reservation of the hard schedule.
//!
//! ```
//! use ftes_soft::{SoftProcess, UtilityFn};
//! use ftes_model::Time;
//!
//! let soft = SoftProcess {
//!     process: ftes_model::ProcessId::new(3),
//!     utility: UtilityFn::new(100, Time::new(50), Time::new(120)).expect("valid window"),
//! };
//! assert_eq!(soft.utility.at(Time::new(40)), 100);   // early: full utility
//! assert_eq!(soft.utility.at(Time::new(120)), 0);    // too late: worthless
//! assert_eq!(soft.utility.at(Time::new(85)), 50);    // linear in between
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ftes_ftcpg::{FtCpg, Guard, Location};
use ftes_model::{Application, ModelError, NodeId, ProcessId, Time};
use ftes_sched::{ConditionalSchedule, ResourceTable};
use std::error::Error;
use std::fmt;

/// A non-increasing, piecewise-linear utility function of completion time:
/// `max_utility` until `full_until`, linear decay to zero at `zero_by`,
/// zero afterwards (the shape used in \[17\]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UtilityFn {
    max_utility: i64,
    full_until: Time,
    zero_by: Time,
}

impl UtilityFn {
    /// Creates a utility function.
    ///
    /// # Errors
    ///
    /// Returns [`SoftError::InvalidUtility`] when `max_utility <= 0` or the
    /// decay window is reversed (`zero_by < full_until`).
    pub fn new(max_utility: i64, full_until: Time, zero_by: Time) -> Result<Self, SoftError> {
        if max_utility <= 0 || zero_by < full_until {
            return Err(SoftError::InvalidUtility);
        }
        Ok(UtilityFn { max_utility, full_until, zero_by })
    }

    /// Utility earned when the process completes at `t`.
    pub fn at(&self, completion: Time) -> i64 {
        if completion <= self.full_until {
            return self.max_utility;
        }
        if completion >= self.zero_by {
            return 0;
        }
        let span = (self.zero_by - self.full_until).units();
        let left = (self.zero_by - completion).units();
        self.max_utility * left / span
    }

    /// The maximum attainable utility.
    pub fn max_utility(&self) -> i64 {
        self.max_utility
    }

    /// Latest completion with any value.
    pub fn zero_by(&self) -> Time {
        self.zero_by
    }
}

/// One soft process: the application process it refers to and its utility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoftProcess {
    /// The application process (must have no hard transitive successors).
    pub process: ProcessId,
    /// Its utility function.
    pub utility: UtilityFn,
}

/// A placed soft process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoftPlacement {
    /// The soft process.
    pub process: ProcessId,
    /// Node it executes on.
    pub node: NodeId,
    /// Execution start.
    pub start: Time,
    /// Execution end.
    pub end: Time,
    /// Utility earned.
    pub utility: i64,
}

/// Result of placing soft processes around a hard schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoftSchedule {
    /// Accepted placements, in placement order.
    pub placements: Vec<SoftPlacement>,
    /// Soft processes dropped (no placement with positive utility).
    pub dropped: Vec<ProcessId>,
    /// Total utility earned.
    pub total_utility: i64,
    /// Maximum attainable utility (all soft at full value).
    pub max_utility: i64,
}

impl SoftSchedule {
    /// Fraction of the attainable utility realized, in `[0, 1]`.
    pub fn utility_ratio(&self) -> f64 {
        if self.max_utility <= 0 {
            return 1.0;
        }
        self.total_utility as f64 / self.max_utility as f64
    }
}

/// Errors of the soft-constraint extension.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SoftError {
    /// Utility parameters are malformed.
    InvalidUtility,
    /// A declared soft process id is out of range.
    UnknownProcess(ProcessId),
    /// A *hard* process consumes a soft process's output: dropping the soft
    /// process would starve a hard one, which is unsound.
    HardDependsOnSoft {
        /// The soft producer.
        soft: ProcessId,
        /// The hard consumer.
        hard: ProcessId,
    },
    /// A model error surfaced during processing.
    Model(ModelError),
}

impl fmt::Display for SoftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SoftError::InvalidUtility => {
                write!(f, "utility needs positive value and a non-reversed decay window")
            }
            SoftError::UnknownProcess(p) => write!(f, "soft declaration references unknown {p}"),
            SoftError::HardDependsOnSoft { soft, hard } => {
                write!(f, "hard process {hard} depends on soft process {soft}")
            }
            SoftError::Model(e) => write!(f, "model error: {e}"),
        }
    }
}

impl Error for SoftError {}

impl From<ModelError> for SoftError {
    fn from(e: ModelError) -> Self {
        SoftError::Model(e)
    }
}

/// Validates a soft declaration set against the application: ids in range,
/// no duplicates required (idempotent), and no hard process downstream of a
/// soft one.
///
/// # Errors
///
/// Returns [`SoftError::UnknownProcess`] or
/// [`SoftError::HardDependsOnSoft`].
pub fn validate_soft(app: &Application, soft: &[SoftProcess]) -> Result<(), SoftError> {
    let mut is_soft = vec![false; app.process_count()];
    for s in soft {
        if s.process.index() >= app.process_count() {
            return Err(SoftError::UnknownProcess(s.process));
        }
        is_soft[s.process.index()] = true;
    }
    for s in soft {
        // BFS over successors: all must be soft.
        let mut stack = vec![s.process];
        let mut seen = vec![false; app.process_count()];
        while let Some(p) = stack.pop() {
            for &(succ, _) in app.successors(p) {
                if seen[succ.index()] {
                    continue;
                }
                seen[succ.index()] = true;
                if !is_soft[succ.index()] {
                    return Err(SoftError::HardDependsOnSoft { soft: s.process, hard: succ });
                }
                stack.push(succ);
            }
        }
    }
    Ok(())
}

/// Places soft processes into the spare capacity of a synthesized hard
/// schedule, maximizing utility greedily by utility density
/// (`max_utility / min WCET`), never overlapping any hard reservation in
/// any fault scenario.
///
/// `cpg`/`schedule` are the hard configuration's FT-CPG and conditional
/// schedule (built over the hard subset of the application; soft processes
/// must not appear in it). Soft input data is assumed available at its
/// producers' completion; soft processes whose predecessors are soft are
/// chained by completion time.
///
/// # Errors
///
/// Propagates [`validate_soft`] failures.
pub fn place_soft(
    app: &Application,
    soft: &[SoftProcess],
    node_count: usize,
    cpg: &FtCpg,
    schedule: &ConditionalSchedule,
) -> Result<SoftSchedule, SoftError> {
    validate_soft(app, soft)?;
    // Rebuild per-CPU occupancy from the hard schedule; every reservation
    // keeps its guard so soft placements (guard = always) conflict with
    // hard executions of every scenario.
    let mut cpus = vec![ResourceTable::new(); node_count];
    for (id, node) in cpg.iter() {
        if let Location::Node(cpu) = node.location {
            if node.duration > Time::ZERO {
                cpus[cpu.index()].reserve(schedule.start(id), schedule.end(id), Guard::always());
            }
        }
    }

    // Greedy by utility density, deterministic tie-break by id.
    let mut order: Vec<&SoftProcess> = soft.iter().collect();
    order.sort_by_key(|s| {
        let p = app.process(s.process);
        let min_wcet = p
            .candidate_nodes()
            .filter_map(|n| p.wcet_on(n))
            .min()
            .map(|t| t.units())
            .unwrap_or(1)
            .max(1);
        (std::cmp::Reverse(s.utility.max_utility() * 1000 / min_wcet), s.process)
    });

    let mut placements = Vec::new();
    let mut dropped = Vec::new();
    let mut completion: Vec<Option<Time>> = vec![None; app.process_count()];
    let mut max_utility = 0i64;
    for s in order {
        max_utility += s.utility.max_utility();
        let p = app.process(s.process);
        // Soft-on-soft data dependencies delay the earliest start.
        let mut ready = p.release();
        let mut inputs_ok = true;
        for &(pred, mid) in app.predecessors(s.process) {
            match completion[pred.index()] {
                Some(t) => ready = ready.max(t + app.message(mid).transmission()),
                None => {
                    // Hard predecessor: worst-case completion over all its
                    // copies in the hard schedule; soft predecessor not yet
                    // placed / dropped: inputs unavailable.
                    let mut worst = None;
                    for copy in cpg.copies_of_process(pred) {
                        let e = schedule.end(copy);
                        worst = Some(worst.map_or(e, |w: Time| w.max(e)));
                    }
                    match worst {
                        Some(t) => ready = ready.max(t + app.message(mid).transmission()),
                        None => inputs_ok = false,
                    }
                }
            }
        }
        if !inputs_ok {
            dropped.push(s.process);
            continue;
        }
        // Best placement across candidate nodes by utility, then time.
        let mut best: Option<SoftPlacement> = None;
        for node in p.candidate_nodes() {
            let wcet = p.wcet_on(node).expect("candidate node has wcet");
            let start = cpus[node.index()].earliest_fit(ready, wcet, &Guard::always());
            let end = start + wcet;
            let utility = s.utility.at(end);
            let cand = SoftPlacement { process: s.process, node, start, end, utility };
            let better = match &best {
                None => true,
                Some(b) => {
                    (utility, std::cmp::Reverse(end)) > (b.utility, std::cmp::Reverse(b.end))
                }
            };
            if better {
                best = Some(cand);
            }
        }
        match best {
            Some(placement) if placement.utility > 0 => {
                cpus[placement.node.index()].reserve(
                    placement.start,
                    placement.end,
                    Guard::always(),
                );
                completion[s.process.index()] = Some(placement.end);
                placements.push(placement);
            }
            _ => dropped.push(s.process),
        }
    }
    let total_utility = placements.iter().map(|p| p.utility).sum();
    Ok(SoftSchedule { placements, dropped, total_utility, max_utility })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftes_ft::PolicyAssignment;
    use ftes_ftcpg::{build_ftcpg, BuildConfig, CopyMapping};
    use ftes_model::{
        ApplicationBuilder, Architecture, FaultModel, Mapping, ProcessSpec, Transparency,
    };
    use ftes_sched::{schedule_ftcpg, SchedConfig};
    use ftes_tdma::Platform;

    fn u(max: i64, full: i64, zero: i64) -> UtilityFn {
        UtilityFn::new(max, Time::new(full), Time::new(zero)).unwrap()
    }

    #[test]
    fn utility_shape() {
        let f = u(100, 50, 150);
        assert_eq!(f.at(Time::ZERO), 100);
        assert_eq!(f.at(Time::new(50)), 100);
        assert_eq!(f.at(Time::new(100)), 50);
        assert_eq!(f.at(Time::new(150)), 0);
        assert_eq!(f.at(Time::new(500)), 0);
        // Step function: full_until == zero_by.
        let step = u(10, 40, 40);
        assert_eq!(step.at(Time::new(40)), 10);
        assert_eq!(step.at(Time::new(41)), 0);
    }

    #[test]
    fn invalid_utilities_rejected() {
        assert_eq!(
            UtilityFn::new(0, Time::ZERO, Time::new(1)).unwrap_err(),
            SoftError::InvalidUtility
        );
        assert_eq!(
            UtilityFn::new(5, Time::new(10), Time::new(5)).unwrap_err(),
            SoftError::InvalidUtility
        );
    }

    /// Hard chain `h0 -> h1` plus two independent soft processes.
    fn mixed_system() -> (Application, FtCpg, ConditionalSchedule, Vec<SoftProcess>) {
        let mut b = ApplicationBuilder::new(2);
        let oh = |s: ProcessSpec| s.overheads(Time::new(2), Time::new(2), Time::new(1));
        let h0 = b.add_process(oh(ProcessSpec::uniform("h0", Time::new(20), 2)));
        let h1 = b.add_process(oh(ProcessSpec::uniform("h1", Time::new(20), 2)));
        let s0 = b.add_process(oh(ProcessSpec::uniform("s0", Time::new(15), 2)));
        let s1 = b.add_process(oh(ProcessSpec::uniform("s1", Time::new(15), 2)));
        b.add_message("m", h0, h1, Time::new(2)).unwrap();
        let app = b.deadline(Time::new(400)).build().unwrap();

        // Hard sub-application: the soft processes are simply not included
        // in the policy-bearing FT-CPG: give them zero-tolerance policies
        // and exclude via a hard-only application? The FT-CPG builder works
        // per-application, so build the hard part as its own application
        // with identical ids by placing soft processes last.
        let mut hb = ApplicationBuilder::new(2);
        let g0 = hb.add_process(oh(ProcessSpec::uniform("h0", Time::new(20), 2)));
        let g1 = hb.add_process(oh(ProcessSpec::uniform("h1", Time::new(20), 2)));
        hb.add_message("m", g0, g1, Time::new(2)).unwrap();
        let hard = hb.deadline(Time::new(400)).build().unwrap();
        let arch = Architecture::homogeneous(2).unwrap();
        let mapping = Mapping::cheapest(&hard, &arch).unwrap();
        let policies = PolicyAssignment::uniform_reexecution(&hard, 2);
        let copies = CopyMapping::from_base(&hard, &arch, &mapping, &policies).unwrap();
        let cpg = build_ftcpg(
            &hard,
            &policies,
            &copies,
            FaultModel::new(2),
            &Transparency::none(),
            BuildConfig::default(),
        )
        .unwrap();
        let platform = Platform::homogeneous(2, Time::new(8)).unwrap();
        let schedule = schedule_ftcpg(&hard, &cpg, &platform, SchedConfig::default()).unwrap();
        let soft = vec![
            SoftProcess { process: s0, utility: u(100, 60, 200) },
            SoftProcess { process: s1, utility: u(40, 30, 90) },
        ];
        (app, cpg, schedule, soft)
    }

    #[test]
    fn soft_placements_never_touch_hard_reservations() {
        let (app, cpg, schedule, soft) = mixed_system();
        let out = place_soft(&app, &soft, 2, &cpg, &schedule).unwrap();
        assert!(!out.placements.is_empty());
        for p in &out.placements {
            for (id, node) in cpg.iter() {
                if node.location == Location::Node(p.node) && node.duration > Time::ZERO {
                    let overlap = p.start < schedule.end(id) && schedule.start(id) < p.end;
                    assert!(!overlap, "soft {} overlaps hard {}", p.process, cpg.name(id));
                }
            }
        }
        assert!(out.total_utility > 0);
        assert!(out.utility_ratio() <= 1.0);
    }

    #[test]
    fn utility_degrades_with_scarce_capacity() {
        let (app, cpg, schedule, mut soft) = mixed_system();
        let roomy = place_soft(&app, &soft, 2, &cpg, &schedule).unwrap();
        // Tighten the windows until soft work is worthless.
        for s in &mut soft {
            s.utility = u(s.utility.max_utility(), 1, 2);
        }
        let tight = place_soft(&app, &soft, 2, &cpg, &schedule).unwrap();
        assert!(tight.total_utility < roomy.total_utility);
        assert_eq!(tight.placements.len() + tight.dropped.len(), soft.len());
        assert!(!tight.dropped.is_empty(), "worthless soft processes are dropped");
    }

    #[test]
    fn hard_depending_on_soft_is_rejected() {
        let mut b = ApplicationBuilder::new(1);
        let s = b.add_process(ProcessSpec::uniform("s", Time::new(5), 1));
        let h = b.add_process(ProcessSpec::uniform("h", Time::new(5), 1));
        b.add_message("m", s, h, Time::new(1)).unwrap();
        let app = b.deadline(Time::new(100)).build().unwrap();
        let soft = vec![SoftProcess { process: s, utility: u(10, 50, 60) }];
        assert_eq!(
            validate_soft(&app, &soft).unwrap_err(),
            SoftError::HardDependsOnSoft { soft: s, hard: h }
        );
    }

    #[test]
    fn unknown_soft_process_rejected() {
        let (app, _, _, _) = mixed_system();
        let bogus = vec![SoftProcess { process: ProcessId::new(99), utility: u(1, 1, 2) }];
        assert_eq!(
            validate_soft(&app, &bogus).unwrap_err(),
            SoftError::UnknownProcess(ProcessId::new(99))
        );
    }

    #[test]
    fn soft_chains_respect_data_dependencies() {
        // s0 -> s1 soft chain: s1 starts after s0 completes + transmission.
        let mut b = ApplicationBuilder::new(1);
        let oh = |s: ProcessSpec| s.overheads(Time::new(1), Time::new(1), Time::new(1));
        let h = b.add_process(oh(ProcessSpec::uniform("h", Time::new(10), 1)));
        let s0 = b.add_process(oh(ProcessSpec::uniform("s0", Time::new(10), 1)));
        let s1 = b.add_process(oh(ProcessSpec::uniform("s1", Time::new(10), 1)));
        b.add_message("ms", s0, s1, Time::new(3)).unwrap();
        let app = b.deadline(Time::new(300)).build().unwrap();
        let _ = h;

        let mut hb = ApplicationBuilder::new(1);
        hb.add_process(oh(ProcessSpec::uniform("h", Time::new(10), 1)));
        let hard = hb.deadline(Time::new(300)).build().unwrap();
        let arch = Architecture::homogeneous(1).unwrap();
        let mapping = Mapping::cheapest(&hard, &arch).unwrap();
        let policies = PolicyAssignment::uniform_reexecution(&hard, 1);
        let copies = CopyMapping::from_base(&hard, &arch, &mapping, &policies).unwrap();
        let cpg = build_ftcpg(
            &hard,
            &policies,
            &copies,
            FaultModel::new(1),
            &Transparency::none(),
            BuildConfig::default(),
        )
        .unwrap();
        let platform = Platform::homogeneous(1, Time::new(8)).unwrap();
        let schedule = schedule_ftcpg(&hard, &cpg, &platform, SchedConfig::default()).unwrap();

        let soft = vec![
            SoftProcess { process: s0, utility: u(100, 300, 300) },
            SoftProcess { process: s1, utility: u(100, 300, 300) },
        ];
        let out = place_soft(&app, &soft, 1, &cpg, &schedule).unwrap();
        let find = |p: ProcessId| out.placements.iter().find(|x| x.process == p).unwrap();
        assert!(
            find(s1).start >= find(s0).end + Time::new(3),
            "soft chain respects message latency"
        );
    }
}
