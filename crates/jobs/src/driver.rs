//! The "one executor, three drivers" layer: every job kind — a single
//! synthesis, an explore suite, a corpus batch — executes through one
//! function here, with one streaming-row contract and one cancellation
//! contract, no matter whether the caller is the serve daemon, `ftes
//! corpus run` or the explore CLI.
//!
//! Progress rows fire **in job order** (row `i` only after rows `0..i`),
//! exactly the contract `ftes::corpus::run_corpus` pioneered; resumed
//! jobs pass the journaled row count as the watermark and re-emit
//! nothing below it. Rendered results are deterministic where the
//! underlying report is (`corpus_result_json` carries no wall clocks, so
//! a resumed corpus job's result is byte-identical to an uninterrupted
//! run's).

use crate::request::{parse_explore_request, JobRequest};
use ftes::corpus::{
    aggregate_to_json, parse_corpus_csv, run_corpus_cancellable, CorpusJob, CorpusRow,
    CorpusRunConfig, CORPUS_CSV_HEADER,
};
use ftes::explore::{
    run_suite_streaming, suite_to_json, CertifyVerdict, PointOutcome, SuiteConfig, SuiteOutcome,
};
use ftes::json::JsonWriter;
use ftes::model::Time;
use ftes::sched::export::tables_to_csv;
use ftes::spec::{parse_spec, SystemSpec};
use ftes::{synthesize_system, FlowConfig, SystemConfiguration};
use std::sync::atomic::{AtomicBool, Ordering};

/// Why a job stopped short of a completed result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobInterrupt {
    /// The cancel flag was observed at a row boundary.
    Cancelled,
    /// The job failed; the message is the job's terminal error.
    Failed(String),
}

/// Runs one validated request to its rendered result, streaming progress
/// rows through `emit(index, row)` in index order. `prior_rows` is the
/// resume watermark: rows already journaled by an interrupted run — the
/// job recomputes deterministically but re-emits nothing below the
/// watermark, and a corpus job skips recomputing journaled specs
/// entirely.
///
/// # Errors
///
/// [`JobInterrupt::Cancelled`] when the cancel flag was observed at a row
/// boundary; [`JobInterrupt::Failed`] with the terminal error otherwise.
pub fn execute_request<F>(
    request: &JobRequest,
    prior_rows: &[String],
    cancel: &AtomicBool,
    mut emit: F,
) -> Result<String, JobInterrupt>
where
    F: FnMut(usize, &str) + Send,
{
    match request {
        JobRequest::Synthesize { spec } => {
            // A single synthesis has no row boundaries; the one
            // cancellation point is before the work starts.
            if cancel.load(Ordering::Acquire) {
                return Err(JobInterrupt::Cancelled);
            }
            let spec = parse_spec(spec).map_err(|e| JobInterrupt::Failed(format!("spec: {e}")))?;
            let flow = FlowConfig { strategy: spec.strategy, ..FlowConfig::default() };
            let psi = synthesize_system(
                &spec.app,
                &spec.platform,
                spec.fault_model,
                &spec.transparency,
                flow,
            )
            .map_err(|e| JobInterrupt::Failed(format!("synthesis: {e}")))?;
            Ok(render_synthesis(&spec, &psi))
        }
        JobRequest::ExploreSuite { params } => {
            let config = parse_explore_request(params).map_err(JobInterrupt::Failed)?;
            let outcome = drive_suite(&config, prior_rows.len(), cancel, &mut emit)?;
            Ok(suite_to_json(&outcome))
        }
        JobRequest::CorpusRun { jobs, workers } => {
            // Journaled rows parse back into completed-row state; their
            // specs are never recomputed (the corpus CSV *is* the
            // progress state, exactly as in `ftes corpus run`).
            let mut csv = String::from(CORPUS_CSV_HEADER);
            for row in prior_rows {
                csv.push('\n');
                csv.push_str(row);
            }
            csv.push('\n');
            let completed = parse_corpus_csv(&csv)
                .map_err(|e| JobInterrupt::Failed(format!("journaled rows: {e}")))?;
            let outcome =
                drive_corpus(jobs, *workers, &completed, cancel, |i, row| emit(i, &row.to_csv()))?;
            Ok(corpus_result_json(&outcome.rows))
        }
    }
}

/// Outcome of a [`drive_corpus`] run: the full in-order row set (resumed
/// prefix included) plus `(spec, message)` pairs for this run's tagged
/// error rows.
#[derive(Debug, Clone)]
pub struct CorpusDriveOutcome {
    /// All rows, in job order — `completed` first, then this run's.
    pub rows: Vec<CorpusRow>,
    /// Errors behind this run's [`ftes::corpus::CorpusVerdict::Error`]
    /// rows.
    pub errors: Vec<(String, String)>,
}

/// Runs the corpus jobs not already covered by `completed` (a prefix of
/// earlier results, matched by spec name) with `workers` bounded threads,
/// delivering each *new* row through `on_row` with its **global** job
/// index. Cancellation is observed at row boundaries; rows delivered
/// before the flag was observed stay delivered.
///
/// # Errors
///
/// [`JobInterrupt::Failed`] when `completed` is not a prefix of the
/// corpus (resuming foreign state would silently corrupt the report);
/// [`JobInterrupt::Cancelled`] when the cancel flag stopped the run.
pub fn drive_corpus<F>(
    all: &[CorpusJob],
    workers: usize,
    completed: &[CorpusRow],
    cancel: &AtomicBool,
    mut on_row: F,
) -> Result<CorpusDriveOutcome, JobInterrupt>
where
    F: FnMut(usize, &CorpusRow) + Send,
{
    if completed.len() > all.len() {
        return Err(JobInterrupt::Failed(format!(
            "{} completed rows exceed the corpus of {} jobs",
            completed.len(),
            all.len()
        )));
    }
    for (row, job) in completed.iter().zip(all) {
        if row.spec != job.name {
            return Err(JobInterrupt::Failed(format!(
                "completed row `{}` does not match corpus job `{}`",
                row.spec, job.name
            )));
        }
    }
    let skip = completed.len();
    let config = CorpusRunConfig { workers, ..CorpusRunConfig::default() };
    let (outcome, cancelled) =
        run_corpus_cancellable(&all[skip..], &config, Some(cancel), |i, row| on_row(skip + i, row));
    if cancelled {
        return Err(JobInterrupt::Cancelled);
    }
    let mut rows = completed.to_vec();
    rows.extend(outcome.rows);
    Ok(CorpusDriveOutcome { rows, errors: outcome.errors })
}

/// Renders a completed corpus job's result: the full CSV document plus
/// the per-family aggregate. Deterministic — no wall-clock fields — so a
/// resumed run's result is byte-identical to an uninterrupted run's.
pub fn corpus_result_json(rows: &[CorpusRow]) -> String {
    let mut csv = String::from(CORPUS_CSV_HEADER);
    for row in rows {
        csv.push('\n');
        csv.push_str(&row.to_csv());
    }
    csv.push('\n');
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("specs");
    w.number_usize(rows.len());
    w.key("csv");
    w.string(&csv);
    w.key("aggregate");
    w.raw(aggregate_to_json(rows).trim_end());
    w.end_object();
    w.finish()
}

/// Runs a suite with streaming per-point progress rows: point `i`'s row
/// fires (in order) as soon as points `0..=i` are done, except rows below
/// `watermark`, which an interrupted run already journaled.
///
/// # Errors
///
/// [`JobInterrupt::Cancelled`] when the cancel flag stopped the sweep;
/// [`JobInterrupt::Failed`] with the first point error in grid order.
pub fn drive_suite<F>(
    config: &SuiteConfig,
    watermark: usize,
    cancel: &AtomicBool,
    mut on_row: F,
) -> Result<SuiteOutcome, JobInterrupt>
where
    F: FnMut(usize, &str) + Send,
{
    let outcome = run_suite_streaming(config, Some(cancel), |i, p| {
        if i >= watermark {
            on_row(i, &point_row(p));
        }
    })
    .map_err(|e| JobInterrupt::Failed(format!("explore: {e}")))?;
    outcome.ok_or(JobInterrupt::Cancelled)
}

/// One explore point's progress row:
/// `label,fault_free,worst_case,deadline,schedulable,certified,exact_len,demoted`.
/// Deterministic by construction (no wall-clock fields), so a resumed
/// suite job's row stream is byte-identical to an uninterrupted one's.
pub fn point_row(p: &PointOutcome) -> String {
    let certified = match p.certified {
        CertifyVerdict::Certified(_) => "true",
        CertifyVerdict::Refuted(_) => "false",
        CertifyVerdict::Skipped => "skipped",
        CertifyVerdict::NotRequested => "-",
    };
    let exact_len =
        p.certified.exact_len().map_or_else(|| "-".to_string(), |t| t.units().to_string());
    format!(
        "{},{},{},{},{},{},{},{}",
        p.point.label(),
        p.fault_free.units(),
        p.worst_case.units(),
        p.deadline.units(),
        p.schedulable,
        certified,
        exact_len,
        p.demoted
    )
}

/// Renders the synthesis result document (the `/synthesize` reply body —
/// moved here from `ftes-serve` so the daemon's synchronous path and the
/// job executor render one format).
pub fn render_synthesis(spec: &SystemSpec, psi: &SystemConfiguration) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("strategy");
    w.string(&spec.strategy.to_string());
    w.key("k");
    w.number_u64(spec.fault_model.k() as u64);
    w.key("processes");
    w.number_usize(spec.app.process_count());
    w.key("nodes");
    w.number_usize(spec.platform.architecture().node_count());
    w.key("schedulable");
    w.bool(psi.schedulable);
    w.key("deadline");
    w.number_i64(spec.app.deadline().units());
    w.key("worst_case");
    w.number_i64(psi.worst_case_length().units());
    w.key("fault_free");
    w.number_i64(psi.estimate.fault_free_length.units());
    w.key("estimated_worst_case");
    w.number_i64(psi.estimate.worst_case_length.units());
    w.key("recovery_slack");
    w.number_i64(psi.estimate.recovery_slack().units());
    let fault_free = psi.estimate.fault_free_length;
    w.key("slack_pct");
    if fault_free > Time::ZERO {
        w.number_f64(100.0 * psi.estimate.recovery_slack().as_f64() / fault_free.as_f64(), 2);
    } else {
        w.number_f64(0.0, 2);
    }
    w.key("policies");
    w.begin_array();
    for (pid, policy) in psi.policies.iter() {
        w.begin_object();
        w.key("process");
        w.string(spec.app.process(pid).name());
        w.key("policy");
        w.string(&format!("{:?}", policy.kind()));
        w.key("node");
        w.number_usize(psi.mapping.node_of(pid).index());
        w.key("replicas");
        w.number_u64(policy.replica_count() as u64);
        w.end_object();
    }
    w.end_array();
    w.key("exact");
    w.bool(psi.exact.is_some());
    // The certify-and-repair contract: `certified:true` incumbents are
    // exact-schedulable; everything else ships explicitly tagged with the
    // exact length when one was computed.
    w.key("certified");
    w.bool(psi.certification.is_certified());
    w.key("exact_len");
    match psi.certification.exact_len() {
        Some(len) => w.number_i64(len.units()),
        None => w.null(),
    }
    w.key("repair_rounds");
    w.number_u64(psi.repair_rounds as u64);
    w.key("calibration_milli");
    w.number_u64(psi.calibration_milli);
    match psi.exact.as_ref() {
        Some(exact) => {
            w.key("table_entries");
            w.number_usize(exact.tables.entry_count());
            w.key("tables_csv");
            w.string(&tables_to_csv(&exact.tables, &exact.cpg));
        }
        None => {
            w.key("table_entries");
            w.number_usize(0);
            w.key("tables_csv");
            w.null();
        }
    }
    w.end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_job(name: &str, deadline: i64) -> CorpusJob {
        CorpusJob {
            name: name.to_string(),
            family: "test".to_string(),
            text: format!(
                "nodes 2\nslot 8\ndeadline {deadline}\nk 1\nstrategy mxr\n\
                 process A wcet 10 12 alpha 1 mu 1 chi 1\n\
                 process B wcet 8 8 alpha 1 mu 1 chi 1\n\
                 message m0 A B 1\n"
            ),
        }
    }

    #[test]
    fn resumed_corpus_drive_matches_uninterrupted_run() {
        let jobs: Vec<CorpusJob> =
            (0..4).map(|i| tiny_job(&format!("t{i}.ftes"), 200 + i)).collect();
        let cancel = AtomicBool::new(false);
        let full = drive_corpus(&jobs, 1, &[], &cancel, |_, _| {}).unwrap();
        // Resume from the first two rows: only the remainder recomputes,
        // delivered with global indices, and the merged rows are equal.
        let mut seen = Vec::new();
        let resumed = drive_corpus(&jobs, 2, &full.rows[..2], &cancel, |i, row| {
            seen.push((i, row.spec.clone()));
        })
        .unwrap();
        assert_eq!(seen, vec![(2, "t2.ftes".to_string()), (3, "t3.ftes".to_string())]);
        assert_eq!(resumed.rows, full.rows);
        assert_eq!(corpus_result_json(&resumed.rows), corpus_result_json(&full.rows));
    }

    #[test]
    fn foreign_completed_state_is_refused() {
        let jobs = vec![tiny_job("a.ftes", 300), tiny_job("b.ftes", 300)];
        let cancel = AtomicBool::new(false);
        let full = drive_corpus(&jobs, 1, &[], &cancel, |_, _| {}).unwrap();
        let mut wrong = full.rows.clone();
        wrong[0].spec = "other.ftes".to_string();
        let err = drive_corpus(&jobs, 1, &wrong[..1], &cancel, |_, _| {}).unwrap_err();
        assert!(matches!(err, JobInterrupt::Failed(ref m) if m.contains("does not match")));
        let err = drive_corpus(&jobs[..1], 1, &full.rows, &cancel, |_, _| {}).unwrap_err();
        assert!(matches!(err, JobInterrupt::Failed(ref m) if m.contains("exceed")));
    }

    #[test]
    fn pre_set_cancel_flag_cancels_at_the_first_boundary() {
        let jobs = vec![tiny_job("a.ftes", 300)];
        let cancel = AtomicBool::new(true);
        let err = drive_corpus(&jobs, 1, &[], &cancel, |_, _| {}).unwrap_err();
        assert_eq!(err, JobInterrupt::Cancelled);
        let req = JobRequest::Synthesize { spec: jobs[0].text.clone() };
        assert_eq!(execute_request(&req, &[], &cancel, |_, _| {}), Err(JobInterrupt::Cancelled));
    }

    #[test]
    fn execute_request_runs_every_kind_and_streams_rows() {
        let cancel = AtomicBool::new(false);
        let spec_text = tiny_job("x", 400).text;
        let result =
            execute_request(&JobRequest::Synthesize { spec: spec_text }, &[], &cancel, |_, _| {})
                .unwrap();
        assert!(result.starts_with("{\"strategy\":\"MXR\""), "{result}");
        assert!(result.contains("\"certified\":"), "{result}");

        let jobs = vec![tiny_job("a.ftes", 300), tiny_job("b.ftes", 301)];
        let mut rows = Vec::new();
        let result = execute_request(
            &JobRequest::CorpusRun { jobs: jobs.clone(), workers: 1 },
            &[],
            &cancel,
            |i, row| rows.push((i, row.to_string())),
        )
        .unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, 0);
        assert!(rows[0].1.starts_with("test,a.ftes,"), "{}", rows[0].1);
        assert!(result.contains("\"specs\":2"), "{result}");
        assert!(result.contains("\"aggregate\":{"), "{result}");

        // Resume: the journaled first row suppresses its recompute and
        // the final result is byte-identical.
        let prior = vec![rows[0].1.clone()];
        let mut resumed_rows = Vec::new();
        let resumed = execute_request(
            &JobRequest::CorpusRun { jobs, workers: 1 },
            &prior,
            &cancel,
            |i, row| resumed_rows.push((i, row.to_string())),
        )
        .unwrap();
        assert_eq!(resumed_rows.len(), 1);
        assert_eq!(resumed_rows[0].0, 1);
        assert_eq!(resumed, result);

        let mut point_rows = Vec::new();
        let result = execute_request(
            &JobRequest::ExploreSuite { params: "processes=8 nodes=2 k=1 rounds=2 iters=4".into() },
            &[],
            &cancel,
            |i, row| point_rows.push((i, row.to_string())),
        )
        .unwrap();
        assert_eq!(point_rows.len(), 1);
        assert!(point_rows[0].1.starts_with("p8_n2_k1_s0,"), "{}", point_rows[0].1);
        assert!(result.contains("\"points\":["), "{result}");
    }
}
