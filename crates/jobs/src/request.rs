//! Typed job requests: the three job kinds the executor runs, their
//! submit-time validation, and their lossless journal encoding.
//!
//! This module also owns the `/explore` parameter grammar
//! ([`parse_explore_request`]) and its canonical cache-key encoding
//! ([`canonical_explore_bytes`]) — they moved here from `ftes-serve` so
//! the HTTP daemon, the CLI and the executor validate and key explore
//! work in exactly one place (`ftes-serve` re-exports both for its
//! clients).

use ftes::corpus::CorpusJob;
use ftes::explore::{
    paper_grid, EngineKind, PortfolioConfig, ScenarioPoint, SuiteConfig, VerifyConfig,
};
use ftes::model::Time;
use ftes::spec::parse_spec;

/// The job vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// One `.ftes` document through the certify-and-repair flow.
    Synthesize,
    /// A scenario-suite sweep (the `/explore` grammar).
    ExploreSuite,
    /// A corpus batch run with streamed CSV rows.
    CorpusRun,
}

impl JobKind {
    /// Stable lowercase label (JSON fields, CLI output).
    pub fn label(self) -> &'static str {
        match self {
            JobKind::Synthesize => "synthesize",
            JobKind::ExploreSuite => "explore",
            JobKind::CorpusRun => "corpus",
        }
    }
}

/// One validated, journal-encodable job request.
#[derive(Debug, Clone, PartialEq)]
pub enum JobRequest {
    /// Synthesize one `.ftes` document.
    Synthesize {
        /// The document text.
        spec: String,
    },
    /// Run a scenario suite described in the `/explore` grammar.
    ExploreSuite {
        /// Whitespace-separated `key=value` parameters
        /// (see [`parse_explore_request`]).
        params: String,
    },
    /// Run a corpus of named `.ftes` documents.
    CorpusRun {
        /// The corpus jobs, in run order.
        jobs: Vec<CorpusJob>,
        /// Bounded worker count for the batch.
        workers: usize,
    },
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn take_str(bytes: &[u8], at: &mut usize) -> Result<String, String> {
    let len_end = at.checked_add(4).ok_or("truncated string length")?;
    let arr: [u8; 4] =
        bytes.get(*at..len_end).and_then(|s| s.try_into().ok()).ok_or("truncated string length")?;
    let len = u32::from_le_bytes(arr) as usize;
    *at = len_end;
    let end = at.checked_add(len).filter(|&e| e <= bytes.len()).ok_or("string overruns request")?;
    let s = std::str::from_utf8(&bytes[*at..end]).map_err(|_| "string is not UTF-8")?;
    *at = end;
    Ok(s.to_string())
}

fn take_u64(bytes: &[u8], at: &mut usize) -> Result<u64, String> {
    let end = at.checked_add(8).ok_or("truncated u64")?;
    let arr: [u8; 8] =
        bytes.get(*at..end).and_then(|s| s.try_into().ok()).ok_or("truncated u64")?;
    *at = end;
    Ok(u64::from_le_bytes(arr))
}

const REQ_SYNTHESIZE: u8 = 1;
const REQ_EXPLORE: u8 = 2;
const REQ_CORPUS: u8 = 3;

impl JobRequest {
    /// The request's kind.
    pub fn kind(&self) -> JobKind {
        match self {
            JobRequest::Synthesize { .. } => JobKind::Synthesize,
            JobRequest::ExploreSuite { .. } => JobKind::ExploreSuite,
            JobRequest::CorpusRun { .. } => JobKind::CorpusRun,
        }
    }

    /// Submit-time validation: a request the executor would only discover
    /// to be malformed mid-run is rejected here, before it is accepted
    /// (and journaled). The executor re-parses on execution — validation
    /// guarantees that parse succeeds.
    ///
    /// # Errors
    ///
    /// A client-facing description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            JobRequest::Synthesize { spec } => {
                parse_spec(spec).map(|_| ()).map_err(|e| format!("spec: {e}"))
            }
            JobRequest::ExploreSuite { params } => parse_explore_request(params).map(|_| ()),
            JobRequest::CorpusRun { jobs, workers } => {
                if jobs.is_empty() {
                    return Err("corpus run has no jobs".to_string());
                }
                if *workers == 0 || *workers as u64 > limits::CORPUS_WORKERS {
                    return Err(format!(
                        "workers={workers} outside 1..={}",
                        limits::CORPUS_WORKERS
                    ));
                }
                for job in jobs {
                    if !CorpusJob::csv_safe(&job.name) || !CorpusJob::csv_safe(&job.family) {
                        return Err(format!(
                            "corpus job `{}` has a CSV-unsafe label",
                            job.name.replace([',', '\n', '\r'], "_")
                        ));
                    }
                }
                Ok(())
            }
        }
    }

    /// Lossless binary encoding for the journal.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        match self {
            JobRequest::Synthesize { spec } => {
                out.push(REQ_SYNTHESIZE);
                push_str(&mut out, spec);
            }
            JobRequest::ExploreSuite { params } => {
                out.push(REQ_EXPLORE);
                push_str(&mut out, params);
            }
            JobRequest::CorpusRun { jobs, workers } => {
                out.push(REQ_CORPUS);
                out.extend_from_slice(&(*workers as u64).to_le_bytes());
                out.extend_from_slice(&(jobs.len() as u64).to_le_bytes());
                for job in jobs {
                    push_str(&mut out, &job.name);
                    push_str(&mut out, &job.family);
                    push_str(&mut out, &job.text);
                }
            }
        }
        out
    }

    /// Decodes an [`encode`](JobRequest::encode)d request.
    ///
    /// # Errors
    ///
    /// A description when the bytes are malformed (the journal scanner
    /// treats that as a torn record).
    pub fn decode(bytes: &[u8]) -> Result<JobRequest, String> {
        let mut at = 0usize;
        let kind = *bytes.first().ok_or("empty request")?;
        at += 1;
        let request = match kind {
            REQ_SYNTHESIZE => JobRequest::Synthesize { spec: take_str(bytes, &mut at)? },
            REQ_EXPLORE => JobRequest::ExploreSuite { params: take_str(bytes, &mut at)? },
            REQ_CORPUS => {
                let workers = take_u64(bytes, &mut at)? as usize;
                let count = take_u64(bytes, &mut at)?;
                if count > 1_000_000 {
                    return Err(format!("implausible corpus job count {count}"));
                }
                let mut jobs = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let name = take_str(bytes, &mut at)?;
                    let family = take_str(bytes, &mut at)?;
                    let text = take_str(bytes, &mut at)?;
                    jobs.push(CorpusJob { name, family, text });
                }
                JobRequest::CorpusRun { jobs, workers }
            }
            other => return Err(format!("unknown request type {other}")),
        };
        if at != bytes.len() {
            return Err(format!("{} trailing bytes after request", bytes.len() - at));
        }
        Ok(request)
    }
}

/// Upper bounds on client-controlled work-scaling parameters. The CLI
/// trusts its operator with these knobs; a service must not — an
/// unclamped `seeds` or `threads` lets one small request allocate or
/// spawn without limit. The caps comfortably cover the paper grid
/// (100 processes, 6 nodes, k = 7).
pub mod limits {
    /// Application size cap.
    pub const PROCESSES: u64 = 200;
    /// Platform size cap.
    pub const NODES: u64 = 16;
    /// Fault-budget cap.
    pub const K: u64 = 16;
    /// Seeds-per-point cap.
    pub const SEEDS: u64 = 64;
    /// Search-round cap.
    pub const ROUNDS: u64 = 64;
    /// Iterations-per-round cap.
    pub const ITERS: u64 = 1_000;
    /// `run_suite` divides the thread budget across concurrent points
    /// (`threads / point_par` each), so one request's peak OS-thread count
    /// is ≈ `POINT_PAR + THREADS`; with a full worker pool the host sees
    /// at most `workers ×` that, which these caps keep modest.
    pub const THREADS: u64 = 32;
    /// Concurrent-point cap.
    pub const POINT_PAR: u64 = 16;
    /// Corpus-run worker cap (same rationale as [`THREADS`]).
    pub const CORPUS_WORKERS: u64 = 32;
    /// Aggregate ceiling: Σ(point processes) × rounds × iters. Per-knob
    /// caps alone still admit hour-scale products (64 seeds × 64 rounds ×
    /// 1000 iters); this bounds the whole job. The default paper grid
    /// costs 36 000 units, so the budget leaves two orders of magnitude
    /// of headroom for legitimate sweeps.
    pub const WORK_BUDGET: u64 = 5_000_000;
}

/// Parses an explore request body: whitespace-separated `key=value`
/// tokens mirroring the `ftes explore` flags (`grid=paper` or
/// `processes=N nodes=N k=K`, plus `seeds`, `seed`, `rounds`, `iters`,
/// `threads`, `point_par`, `verify=true`, `certify=false`,
/// `certify_guided=true` — the latter certifies incumbents *inside* the
/// search instead of post hoc). Work-scaling parameters are
/// bounded (see [`limits`]); out-of-range values are a client error, not
/// a clamp, so cache keys never alias different requested configurations.
///
/// # Errors
///
/// A client-facing description of the first bad token.
pub fn parse_explore_request(text: &str) -> Result<SuiteConfig, String> {
    let mut processes: Option<usize> = None;
    let mut nodes: Option<usize> = None;
    let mut k: Option<u32> = None;
    let mut seeds: u64 = 1;
    let mut grid_paper = false;
    let mut portfolio = PortfolioConfig::default();
    let mut point_parallelism = 1usize;
    let mut verify = None;
    let mut certify = true;

    for token in text.split_whitespace() {
        let Some((key, value)) = token.split_once('=') else {
            return Err(format!("expected key=value, got `{token}`"));
        };
        let bounded = |max: u64| -> Result<u64, String> {
            let n: u64 = value.parse().map_err(|_| format!("bad number `{value}` for {key}"))?;
            if n > max {
                return Err(format!("{key}={n} exceeds the service limit of {max}"));
            }
            Ok(n)
        };
        match key {
            "grid" => {
                if value != "paper" {
                    return Err(format!("unknown grid `{value}` (only `paper`)"));
                }
                grid_paper = true;
            }
            "processes" => processes = Some(bounded(limits::PROCESSES)? as usize),
            "nodes" => nodes = Some(bounded(limits::NODES)? as usize),
            "k" => k = Some(bounded(limits::K)? as u32),
            "seeds" => seeds = bounded(limits::SEEDS)?.max(1),
            "seed" => {
                // The PRNG seed scales no work; any u64 is fine.
                portfolio.seed =
                    value.parse().map_err(|_| format!("bad number `{value}` for {key}"))?;
            }
            "threads" => portfolio.threads = (bounded(limits::THREADS)? as usize).max(1),
            "point_par" => point_parallelism = (bounded(limits::POINT_PAR)? as usize).max(1),
            "rounds" => portfolio.rounds = (bounded(limits::ROUNDS)? as usize).max(1),
            "iters" => portfolio.iterations_per_round = (bounded(limits::ITERS)? as usize).max(1),
            "verify" => {
                verify = match value {
                    "true" => Some(VerifyConfig::default()),
                    "false" => None,
                    other => return Err(format!("bad bool `{other}` for verify")),
                }
            }
            "certify" => {
                certify = match value {
                    "true" => true,
                    "false" => false,
                    other => return Err(format!("bad bool `{other}` for certify")),
                }
            }
            "certify_guided" => {
                portfolio.certify_guided = match value {
                    "true" => true,
                    "false" => false,
                    other => return Err(format!("bad bool `{other}` for certify_guided")),
                }
            }
            other => return Err(format!("unknown explore parameter `{other}`")),
        }
    }

    let custom = processes.is_some() || nodes.is_some() || k.is_some();
    if grid_paper && custom {
        return Err("grid=paper conflicts with processes/nodes/k".into());
    }
    let points = if custom {
        let processes = processes.ok_or("processes is required for a custom point")?;
        let nodes = nodes.ok_or("nodes is required for a custom point")?;
        let k = k.ok_or("k is required for a custom point")?;
        (0..seeds).map(|seed| ScenarioPoint { processes, nodes, k, seed }).collect()
    } else {
        paper_grid(seeds)
    };
    let work = points.iter().map(|p| p.processes as u64).sum::<u64>()
        * portfolio.rounds as u64
        * portfolio.iterations_per_round as u64;
    if work > limits::WORK_BUDGET {
        return Err(format!(
            "request expands to {work} process-iterations, over the service budget of {} \
             — reduce seeds, rounds or iters",
            limits::WORK_BUDGET
        ));
    }
    Ok(SuiteConfig { points, portfolio, point_parallelism, slot: Time::new(8), verify, certify })
}

/// Canonical encoding of the *semantic* suite parameters. `threads` and
/// `point_parallelism` are deliberately excluded: the explore determinism
/// contract guarantees they cannot change results, so requests differing
/// only in parallelism share one cache entry.
pub fn canonical_explore_bytes(config: &SuiteConfig) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + 32 * config.points.len());
    out.extend_from_slice(b"ftes-explore-v1");
    let push_u64 = |out: &mut Vec<u8>, v: u64| out.extend_from_slice(&v.to_le_bytes());
    push_u64(&mut out, config.points.len() as u64);
    for p in &config.points {
        push_u64(&mut out, p.processes as u64);
        push_u64(&mut out, p.nodes as u64);
        push_u64(&mut out, p.k as u64);
        push_u64(&mut out, p.seed);
    }
    push_u64(&mut out, config.slot.units() as u64);
    push_u64(&mut out, config.portfolio.seed);
    push_u64(&mut out, config.portfolio.rounds as u64);
    push_u64(&mut out, config.portfolio.iterations_per_round as u64);
    push_u64(&mut out, config.portfolio.max_checkpoints as u64);
    push_u64(&mut out, config.portfolio.workers.len() as u64);
    for worker in &config.portfolio.workers {
        let engine = match worker.engine {
            EngineKind::Tabu => 0u64,
            EngineKind::Anneal => 1,
            EngineKind::Greedy => 2,
        };
        push_u64(&mut out, engine);
        push_u64(&mut out, worker.seed_offset);
        push_u64(&mut out, worker.neighborhood as u64);
        push_u64(&mut out, worker.tenure as u64);
    }
    match &config.verify {
        None => out.push(0),
        Some(vc) => {
            out.push(1);
            push_u64(&mut out, vc.samples as u64);
            push_u64(&mut out, vc.seed);
        }
    }
    out.push(config.certify as u8);
    out.push(config.portfolio.certify_guided as u8);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> String {
        "nodes 2\nslot 8\ndeadline 500\nk 1\nstrategy mxr\n\
         process A wcet 10 12 alpha 1 mu 1 chi 1\n\
         process B wcet 8 8 alpha 1 mu 1 chi 1\n\
         message m0 A B 1\n"
            .to_string()
    }

    #[test]
    fn requests_round_trip_through_the_encoding() {
        let requests = vec![
            JobRequest::Synthesize { spec: tiny_spec() },
            JobRequest::ExploreSuite { params: "processes=8 nodes=2 k=1 rounds=2".into() },
            JobRequest::CorpusRun {
                jobs: vec![
                    CorpusJob { name: "a.ftes".into(), family: "test".into(), text: tiny_spec() },
                    CorpusJob { name: "b.ftes".into(), family: "test".into(), text: tiny_spec() },
                ],
                workers: 2,
            },
        ];
        for request in requests {
            let bytes = request.encode();
            assert_eq!(JobRequest::decode(&bytes).unwrap(), request);
            let mut longer = bytes.clone();
            longer.push(0);
            assert!(JobRequest::decode(&longer).is_err());
        }
        assert!(JobRequest::decode(&[]).is_err());
        assert!(JobRequest::decode(&[77]).is_err());
    }

    #[test]
    fn validation_rejects_what_execution_could_not_run() {
        assert!(JobRequest::Synthesize { spec: tiny_spec() }.validate().is_ok());
        let err = JobRequest::Synthesize { spec: "bogus".into() }.validate().unwrap_err();
        assert!(err.contains("spec"), "{err}");

        assert!(JobRequest::ExploreSuite { params: "processes=8 nodes=2 k=1".into() }
            .validate()
            .is_ok());
        assert!(JobRequest::ExploreSuite { params: "processes=banana".into() }
            .validate()
            .unwrap_err()
            .contains("bad number"));

        let job = CorpusJob { name: "a.ftes".into(), family: "f".into(), text: tiny_spec() };
        assert!(JobRequest::CorpusRun { jobs: vec![job.clone()], workers: 1 }.validate().is_ok());
        assert!(JobRequest::CorpusRun { jobs: vec![], workers: 1 }.validate().is_err());
        assert!(JobRequest::CorpusRun { jobs: vec![job.clone()], workers: 0 }.validate().is_err());
        assert!(JobRequest::CorpusRun { jobs: vec![job.clone()], workers: 10_000 }
            .validate()
            .is_err());
        let unsafe_job = CorpusJob { name: "a,b".into(), family: "f".into(), text: tiny_spec() };
        assert!(JobRequest::CorpusRun { jobs: vec![unsafe_job], workers: 1 }.validate().is_err());
    }

    #[test]
    fn kinds_and_labels_are_stable() {
        assert_eq!(JobRequest::Synthesize { spec: String::new() }.kind(), JobKind::Synthesize);
        assert_eq!(JobKind::Synthesize.label(), "synthesize");
        assert_eq!(JobKind::ExploreSuite.label(), "explore");
        assert_eq!(JobKind::CorpusRun.label(), "corpus");
    }

    #[test]
    fn explore_body_parsing_mirrors_the_cli() {
        let config = parse_explore_request(
            "processes=12 nodes=3 k=2 seeds=2 seed=9 rounds=3 iters=5 verify=true",
        )
        .unwrap();
        assert_eq!(config.points.len(), 2);
        assert!(config.points.iter().all(|p| p.processes == 12 && p.nodes == 3 && p.k == 2));
        assert_eq!(config.portfolio.seed, 9);
        assert_eq!(config.portfolio.rounds, 3);
        assert_eq!(config.portfolio.iterations_per_round, 5);
        assert!(config.verify.is_some());
        assert!(config.certify, "certification defaults on");
        assert!(!parse_explore_request("certify=false").unwrap().certify);
        assert!(
            !config.portfolio.certify_guided,
            "certify-guided search defaults off (post-hoc certification)"
        );
        assert!(
            parse_explore_request("certify_guided=true").unwrap().portfolio.certify_guided,
            "certify_guided=true turns on in-search certification"
        );

        let default = parse_explore_request("").unwrap();
        assert_eq!(default.points.len(), 5, "empty body = the paper grid");
    }

    #[test]
    fn explore_body_errors_are_reported() {
        for bad in [
            "processes",
            "processes=ten",
            "grid=fig9",
            "grid=paper processes=10",
            "processes=10 nodes=2",
            "verify=maybe",
            "certify=maybe",
            "certify_guided=maybe",
            "bogus=1",
        ] {
            assert!(parse_explore_request(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn work_scaling_parameters_are_bounded() {
        // One small request must not be able to allocate or spawn without
        // limit: out-of-range values are rejected, not clamped.
        for bad in [
            "processes=10 nodes=2 k=1 seeds=18446744073709551615",
            "processes=10 nodes=2 k=1 threads=1000000",
            "processes=10 nodes=2 k=1 rounds=1000000000",
            "processes=10 nodes=2 k=1 iters=1000000000",
            "processes=1000 nodes=2 k=1",
            "processes=10 nodes=999 k=1",
            "processes=10 nodes=2 k=999",
            "processes=10 nodes=2 k=1 point_par=1000000",
        ] {
            let err = parse_explore_request(bad).unwrap_err();
            assert!(err.contains("limit") || err.contains("bad number"), "{bad}: {err}");
        }
        // Each knob in range, but the product is hour-scale work: the
        // aggregate budget rejects it.
        let err = parse_explore_request("grid=paper seeds=64 rounds=64 iters=1000").unwrap_err();
        assert!(err.contains("budget"), "{err}");
        // The paper grid itself stays comfortably inside the caps.
        assert!(parse_explore_request("grid=paper seeds=5").is_ok());
        assert!(
            parse_explore_request("processes=100 nodes=6 k=7 seed=18446744073709551615").is_ok()
        );
    }

    #[test]
    fn canonical_explore_bytes_ignore_parallelism_only() {
        let a = parse_explore_request("processes=10 nodes=2 k=1 threads=1").unwrap();
        let b = parse_explore_request("processes=10 nodes=2 k=1 threads=8 point_par=4").unwrap();
        assert_eq!(canonical_explore_bytes(&a), canonical_explore_bytes(&b));

        for different in [
            "processes=11 nodes=2 k=1",
            "processes=10 nodes=3 k=1",
            "processes=10 nodes=2 k=2",
            "processes=10 nodes=2 k=1 seed=2",
            "processes=10 nodes=2 k=1 rounds=9",
            "processes=10 nodes=2 k=1 iters=9",
            "processes=10 nodes=2 k=1 seeds=2",
            "processes=10 nodes=2 k=1 verify=true",
            "processes=10 nodes=2 k=1 certify=false",
            "processes=10 nodes=2 k=1 certify_guided=true",
            "grid=paper",
        ] {
            let c = parse_explore_request(different).unwrap();
            assert_ne!(canonical_explore_bytes(&a), canonical_explore_bytes(&c), "{different}");
        }
    }
}
