//! Crash-safe streaming job subsystem for the fault-tolerant synthesis
//! flows.
//!
//! One executor, three drivers: the serve daemon's job endpoints, the
//! `ftes corpus run` CLI and the explore suite runner all execute
//! through the same [`JobExecutor`] over the same typed [`JobRequest`]s
//! (`Synthesize`, `ExploreSuite`, `CorpusRun`), so progress-row
//! streaming, cancellation and resume behave identically no matter who
//! drives.
//!
//! ## Crash-safety invariant
//!
//! Every observable state transition — acceptance, each progress row,
//! the terminal result — is appended to a length-prefixed, checksummed
//! [`Journal`] *before* it becomes visible, and flushed per record.
//! Opening a journal recovers the longest valid record prefix (a torn
//! tail from `kill -9` is truncated, never parsed). On restart, terminal
//! jobs replay their results byte-identically and unfinished jobs
//! re-enqueue with their journaled rows as the resume watermark, so a
//! resumed deterministic job produces exactly the bytes an uninterrupted
//! run would have.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod driver;
mod executor;
mod journal;
mod request;

pub use driver::{
    corpus_result_json, drive_corpus, drive_suite, execute_request, point_row, render_synthesis,
    CorpusDriveOutcome, JobInterrupt,
};
pub use executor::{
    ExecutorStats, JobExecutor, JobExecutorConfig, JobSnapshot, JobState, JobSummary, SubmitError,
};
pub use journal::{Journal, JournalRecord, TerminalStatus, JOURNAL_MAGIC};
pub use request::{canonical_explore_bytes, limits, parse_explore_request, JobKind, JobRequest};
