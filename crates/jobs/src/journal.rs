//! The append-only on-disk job journal: length-prefixed, checksummed
//! records with torn-tail recovery on open.
//!
//! ## Format
//!
//! The file starts with the 8-byte magic `FTESJOB1`, followed by zero or
//! more records, each framed as
//!
//! ```text
//! u32 LE payload length | u64 LE fnv1a64(payload) | payload
//! ```
//!
//! Payloads carry one [`JournalRecord`]: a job **acceptance** (id plus
//! the encoded [`JobRequest`]), a **progress row** (the job's streamed
//! row at a given index — the resume watermark), or a **terminal result**
//! (completed / failed / cancelled, with the rendered result or error
//! message). Every append is flushed through the `File` handle, so a
//! `kill -9` of the process loses at most the record being written —
//! never an earlier one.
//!
//! ## Crash-safety invariant
//!
//! [`Journal::open`] scans the longest valid prefix of well-framed,
//! checksummed, decodable records and **truncates** anything after it (a
//! torn tail from a crash mid-append). Replaying the surviving records
//! reconstructs exactly the executor state whose appends reached disk:
//! accepted-but-unfinished jobs re-enqueue, journaled rows become the
//! watermark below which a resumed job re-emits nothing, and terminal
//! results replay byte-identically.

use crate::request::JobRequest;
use ftes::explore::fnv1a64;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Leading magic bytes of a journal file.
pub const JOURNAL_MAGIC: &[u8; 8] = b"FTESJOB1";

/// Upper bound on one record's payload, as a corruption tripwire: a
/// torn length field must not make the scanner trust a multi-gigabyte
/// phantom record. Real payloads (a spec, a progress row, a rendered
/// result document) sit far below this.
const MAX_RECORD_BYTES: u32 = 64 * 1024 * 1024;

const TYPE_ACCEPT: u8 = 1;
const TYPE_ROW: u8 = 2;
const TYPE_DONE: u8 = 3;

/// Terminal status vocabulary of a [`JournalRecord::Done`] record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TerminalStatus {
    /// The job ran to completion; the record carries the rendered result.
    Completed,
    /// The job failed; the record carries the error message.
    Failed,
    /// The job was cancelled; the record carries nothing.
    Cancelled,
}

impl TerminalStatus {
    fn as_byte(self) -> u8 {
        match self {
            TerminalStatus::Completed => 0,
            TerminalStatus::Failed => 1,
            TerminalStatus::Cancelled => 2,
        }
    }

    fn from_byte(b: u8) -> Option<TerminalStatus> {
        Some(match b {
            0 => TerminalStatus::Completed,
            1 => TerminalStatus::Failed,
            2 => TerminalStatus::Cancelled,
            _ => return None,
        })
    }
}

/// One journal record.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// A job was accepted into the queue.
    Accept {
        /// The assigned job id.
        id: u64,
        /// The validated request, encoded losslessly.
        request: JobRequest,
    },
    /// A progress row reached the in-order callback.
    Row {
        /// The job id.
        id: u64,
        /// The row's position in the job's row stream (dense from 0).
        index: u64,
        /// The row text.
        row: String,
    },
    /// The job reached a terminal state.
    Done {
        /// The job id.
        id: u64,
        /// How it ended.
        status: TerminalStatus,
        /// The rendered result (completed), the error message (failed) or
        /// empty (cancelled).
        result: String,
    },
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn take_str(bytes: &[u8], at: &mut usize) -> Result<String, String> {
    let len = take_u32(bytes, at)? as usize;
    let end = at.checked_add(len).filter(|&e| e <= bytes.len()).ok_or("string overruns record")?;
    let s = std::str::from_utf8(&bytes[*at..end]).map_err(|_| "string is not UTF-8")?;
    *at = end;
    Ok(s.to_string())
}

fn take_u32(bytes: &[u8], at: &mut usize) -> Result<u32, String> {
    let end = at.checked_add(4).ok_or("truncated u32")?;
    let arr: [u8; 4] =
        bytes.get(*at..end).and_then(|s| s.try_into().ok()).ok_or("truncated u32")?;
    *at = end;
    Ok(u32::from_le_bytes(arr))
}

fn take_u64(bytes: &[u8], at: &mut usize) -> Result<u64, String> {
    let end = at.checked_add(8).ok_or("truncated u64")?;
    let arr: [u8; 8] =
        bytes.get(*at..end).and_then(|s| s.try_into().ok()).ok_or("truncated u64")?;
    *at = end;
    Ok(u64::from_le_bytes(arr))
}

impl JournalRecord {
    /// Encodes the record payload (without the length/checksum frame).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match self {
            JournalRecord::Accept { id, request } => {
                out.push(TYPE_ACCEPT);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&request.encode());
            }
            JournalRecord::Row { id, index, row } => {
                out.push(TYPE_ROW);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&index.to_le_bytes());
                push_str(&mut out, row);
            }
            JournalRecord::Done { id, status, result } => {
                out.push(TYPE_DONE);
                out.extend_from_slice(&id.to_le_bytes());
                out.push(status.as_byte());
                push_str(&mut out, result);
            }
        }
        out
    }

    /// Decodes one record payload.
    ///
    /// # Errors
    ///
    /// Returns a description when the payload is malformed — the journal
    /// scanner treats that as the torn tail and truncates there.
    pub fn decode(bytes: &[u8]) -> Result<JournalRecord, String> {
        let mut at = 0usize;
        let kind = *bytes.first().ok_or("empty record")?;
        at += 1;
        let record = match kind {
            TYPE_ACCEPT => {
                let id = take_u64(bytes, &mut at)?;
                let request = JobRequest::decode(&bytes[at..])?;
                return Ok(JournalRecord::Accept { id, request });
            }
            TYPE_ROW => {
                let id = take_u64(bytes, &mut at)?;
                let index = take_u64(bytes, &mut at)?;
                let row = take_str(bytes, &mut at)?;
                JournalRecord::Row { id, index, row }
            }
            TYPE_DONE => {
                let id = take_u64(bytes, &mut at)?;
                let status = *bytes.get(at).ok_or("truncated status byte")?;
                at += 1;
                let status = TerminalStatus::from_byte(status)
                    .ok_or_else(|| "bad status byte".to_string())?;
                let result = take_str(bytes, &mut at)?;
                JournalRecord::Done { id, status, result }
            }
            other => return Err(format!("unknown record type {other}")),
        };
        if at != bytes.len() {
            return Err(format!("{} trailing bytes after record", bytes.len() - at));
        }
        Ok(record)
    }
}

/// An open, append-positioned journal file.
pub struct Journal {
    file: File,
    bytes: u64,
    appends: u64,
    append_nanos: u64,
}

impl Journal {
    /// Opens (or creates) the journal at `path`, replays it, truncates any
    /// torn tail and positions the handle for appends.
    ///
    /// Returns the journal handle, the surviving records in append order,
    /// and whether a torn tail was discarded.
    ///
    /// # Errors
    ///
    /// I/O failures, and a refusal to touch a file that is neither empty
    /// nor magic-prefixed — a foreign file is never silently truncated
    /// into a journal.
    pub fn open(path: &Path) -> io::Result<(Journal, Vec<JournalRecord>, bool)> {
        // `truncate(false)`: an existing journal is recovered, never wiped.
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        if bytes.len() < JOURNAL_MAGIC.len() {
            // Empty (fresh) or torn during creation: (re)write the magic.
            if !JOURNAL_MAGIC.starts_with(&bytes[..]) {
                return Err(foreign_file(path));
            }
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(JOURNAL_MAGIC)?;
            file.flush()?;
            let bytes = JOURNAL_MAGIC.len() as u64;
            return Ok((Journal { file, bytes, appends: 0, append_nanos: 0 }, Vec::new(), false));
        }
        if &bytes[..JOURNAL_MAGIC.len()] != JOURNAL_MAGIC {
            return Err(foreign_file(path));
        }

        // Scan the longest valid prefix of framed, checksummed, decodable
        // records; everything after it is a torn tail from a crash.
        let mut records = Vec::new();
        let mut at = JOURNAL_MAGIC.len();
        while at.checked_add(12).filter(|&e| e <= bytes.len()).is_some() {
            let mut cursor = at;
            let Ok(len) = take_u32(&bytes, &mut cursor) else {
                break;
            };
            if len > MAX_RECORD_BYTES {
                break;
            }
            let Ok(checksum) = take_u64(&bytes, &mut cursor) else {
                break;
            };
            let header_end = cursor;
            let Some(end) = header_end.checked_add(len as usize).filter(|&e| e <= bytes.len())
            else {
                break;
            };
            let payload = &bytes[header_end..end];
            if fnv1a64(payload) != checksum {
                break;
            }
            let Ok(record) = JournalRecord::decode(payload) else {
                break;
            };
            records.push(record);
            at = end;
        }

        let truncated = at < bytes.len();
        if truncated {
            file.set_len(at as u64)?;
        }
        file.seek(SeekFrom::Start(at as u64))?;
        Ok((Journal { file, bytes: at as u64, appends: 0, append_nanos: 0 }, records, truncated))
    }

    /// Appends one record and flushes it to the OS. A `kill -9` after
    /// [`append`](Journal::append) returns cannot lose the record (the
    /// page cache survives the process); only a host power loss could,
    /// and the torn-tail scan contains even that to the final record.
    ///
    /// # Errors
    ///
    /// Propagates write failures (disk full, journal directory removed).
    pub fn append(&mut self, record: &JournalRecord) -> io::Result<()> {
        let _span = ftes_obs::span(ftes_obs::names::JOURNAL_APPEND);
        // ftes-lint: allow(determinism) reason="append-latency metric feeds /metrics only, never result bytes"
        let started = std::time::Instant::now();
        let payload = record.encode();
        let mut frame = Vec::with_capacity(12 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file.write_all(&frame)?;
        self.file.flush()?;
        self.bytes += frame.len() as u64;
        self.appends += 1;
        self.append_nanos += started.elapsed().as_nanos() as u64;
        ftes_obs::counter(ftes_obs::names::JOURNAL_BYTES, frame.len() as u64);
        Ok(())
    }

    /// Current journal size in bytes (magic plus every surviving and
    /// appended record).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Records appended (and flushed) through this handle's lifetime.
    /// Replayed records don't count — only writes this process paid for.
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// Cumulative microseconds spent inside [`append`](Journal::append) —
    /// encode, frame, `write_all` and the flush to the OS. With
    /// [`appends`](Journal::appends) this yields the mean append (fsync
    /// path) latency for `/metrics`.
    pub fn append_micros(&self) -> u64 {
        self.append_nanos / 1_000
    }
}

fn foreign_file(path: &Path) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("{} exists but is not an ftes job journal", path.display()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::Accept {
                id: 1,
                request: JobRequest::Synthesize { spec: "nodes 2\n".to_string() },
            },
            JournalRecord::Row { id: 1, index: 0, row: "a,b,c".to_string() },
            JournalRecord::Row { id: 1, index: 1, row: String::new() },
            JournalRecord::Done {
                id: 1,
                status: TerminalStatus::Completed,
                result: "{\"ok\":true}".to_string(),
            },
            JournalRecord::Done { id: 2, status: TerminalStatus::Failed, result: "boom".into() },
            JournalRecord::Done { id: 3, status: TerminalStatus::Cancelled, result: String::new() },
        ]
    }

    #[test]
    fn records_round_trip() {
        for record in sample_records() {
            let bytes = record.encode();
            assert_eq!(JournalRecord::decode(&bytes).unwrap(), record, "{record:?}");
            // Trailing garbage is malformed, not silently ignored.
            let mut longer = bytes.clone();
            longer.push(0);
            assert!(JournalRecord::decode(&longer).is_err(), "{record:?}");
        }
        assert!(JournalRecord::decode(&[]).is_err());
        assert!(JournalRecord::decode(&[99]).is_err());
    }

    #[test]
    fn open_create_append_reopen() {
        let dir = std::env::temp_dir().join(format!("ftes-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.journal");
        let _ = std::fs::remove_file(&path);

        let (mut journal, records, truncated) = Journal::open(&path).unwrap();
        assert!(records.is_empty());
        assert!(!truncated);
        assert_eq!(journal.bytes(), JOURNAL_MAGIC.len() as u64);
        for record in sample_records() {
            journal.append(&record).unwrap();
        }
        let size = journal.bytes();
        drop(journal);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), size);

        let (journal, records, truncated) = Journal::open(&path).unwrap();
        assert_eq!(records, sample_records());
        assert!(!truncated);
        assert_eq!(journal.bytes(), size);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_at_every_byte_offset() {
        // The satellite contract: truncate the file at every byte offset
        // inside the *final* record; open() must recover exactly the
        // records before it and truncate the tail.
        let dir = std::env::temp_dir().join(format!("ftes-journal-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.journal");
        let _ = std::fs::remove_file(&path);

        let (mut journal, _, _) = Journal::open(&path).unwrap();
        let records = sample_records();
        for record in &records[..records.len() - 1] {
            journal.append(record).unwrap();
        }
        let before_last = journal.bytes();
        journal.append(records.last().unwrap()).unwrap();
        let full = journal.bytes();
        drop(journal);
        let full_bytes = std::fs::read(&path).unwrap();
        assert_eq!(full_bytes.len() as u64, full);

        for cut in before_last..full {
            std::fs::write(&path, &full_bytes[..cut as usize]).unwrap();
            let (journal, recovered, truncated) = Journal::open(&path).unwrap();
            assert_eq!(recovered, records[..records.len() - 1], "cut at {cut}");
            assert_eq!(truncated, cut != before_last, "cut at {cut}");
            assert_eq!(journal.bytes(), before_last, "cut at {cut}");
            drop(journal);
            assert_eq!(std::fs::metadata(&path).unwrap().len(), before_last, "cut at {cut}");
        }

        // A journal truncated into the magic itself is a torn creation:
        // reopened as fresh.
        std::fs::write(&path, &full_bytes[..4]).unwrap();
        let (_, recovered, truncated) = Journal::open(&path).unwrap();
        assert!(recovered.is_empty());
        assert!(!truncated);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_checksum_or_garbage_type_stops_the_scan() {
        let dir = std::env::temp_dir().join(format!("ftes-journal-cksum-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cksum.journal");
        let _ = std::fs::remove_file(&path);
        let (mut journal, _, _) = Journal::open(&path).unwrap();
        let records = sample_records();
        for record in &records {
            journal.append(record).unwrap();
        }
        drop(journal);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one payload byte of the final record: its checksum fails,
        // the scan stops, the earlier records survive.
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let (_, recovered, truncated) = Journal::open(&path).unwrap();
        assert_eq!(recovered, records[..records.len() - 1]);
        assert!(truncated);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn foreign_files_are_refused() {
        let dir = std::env::temp_dir().join(format!("ftes-journal-foreign-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("foreign.bin");
        std::fs::write(&path, b"definitely not a journal").unwrap();
        assert!(Journal::open(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
