//! The crash-safe job executor: a bounded, cancellable queue of typed
//! jobs drained by worker threads, with every state transition journaled.
//!
//! ## Lifecycle of a job
//!
//! [`submit`](JobExecutor::submit) validates the request, journals an
//! acceptance record and enqueues the job (`Queued`). A worker claims it
//! (`Running`) and streams its progress rows — each row is journaled
//! *before* it becomes visible in [`status`](JobExecutor::status), so the
//! on-disk watermark never trails the observable one. The terminal
//! transition (`Completed` / `Failed` / `Cancelled`) journals the
//! rendered result (or error) in the same record.
//!
//! ## Crash recovery
//!
//! [`JobExecutor::new`] with a journal directory replays the journal:
//! terminal jobs are restored verbatim (their results replay
//! byte-identically — the `replayed` counter), and accepted-but-
//! unfinished jobs re-enqueue with their journaled rows as the resume
//! watermark (the `resumed` counter). A daemon killed with `kill -9`
//! mid-job therefore finishes that job on restart, and deterministic
//! results (corpus runs) come out byte-identical to an uninterrupted
//! run — pinned by tests here and by the CI kill-resume smoke.

use crate::driver::{execute_request, JobInterrupt};
use crate::journal::{Journal, JournalRecord, TerminalStatus};
use crate::request::{JobKind, JobRequest};
use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

/// Tunables of the executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobExecutorConfig {
    /// Bounded pending-queue capacity; submissions beyond it are rejected
    /// with [`SubmitError::QueueFull`] (the caller's 429).
    pub queue_capacity: usize,
    /// Job worker threads. Jobs are heavyweight (an explore sweep fans
    /// out internally), so the default is one.
    pub workers: usize,
    /// Journal directory; `None` runs without crash safety (tests, ad-hoc
    /// CLI use). The journal file is `<dir>/jobs.journal`.
    pub journal_dir: Option<PathBuf>,
}

impl Default for JobExecutorConfig {
    fn default() -> Self {
        JobExecutorConfig { queue_capacity: 16, workers: 1, journal_dir: None }
    }
}

/// A job's lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// Claimed by a worker.
    Running,
    /// Finished with a rendered result.
    Completed,
    /// Finished with an error.
    Failed,
    /// Cancelled at a row boundary (or straight out of the queue).
    Cancelled,
}

impl JobState {
    /// Stable lowercase label (JSON fields, CLI output).
    pub fn label(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Completed => "completed",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Whether the state is final.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Completed | JobState::Failed | JobState::Cancelled)
    }
}

/// A point-in-time copy of one job's observable state.
#[derive(Debug, Clone)]
pub struct JobSnapshot {
    /// The job id.
    pub id: u64,
    /// The job kind.
    pub kind: JobKind,
    /// Current lifecycle state.
    pub state: JobState,
    /// Progress rows accumulated so far, in order.
    pub rows: Vec<String>,
    /// The rendered result (`Completed` only).
    pub result: Option<String>,
    /// The terminal error (`Failed` only).
    pub error: Option<String>,
    /// Whether this job was re-enqueued from the journal on startup.
    pub resumed: bool,
}

/// A row of [`JobExecutor::list`]: the snapshot without the row/result
/// payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobSummary {
    /// The job id.
    pub id: u64,
    /// The job kind.
    pub kind: JobKind,
    /// Current lifecycle state.
    pub state: JobState,
    /// Progress rows accumulated so far.
    pub rows_done: usize,
}

/// Executor-level counters for `/metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecutorStats {
    /// Jobs waiting for a worker.
    pub queue_depth: usize,
    /// The configured pending-queue bound.
    pub queue_capacity: usize,
    /// Jobs currently queued.
    pub queued: u64,
    /// Jobs currently running.
    pub running: u64,
    /// Jobs that completed.
    pub completed: u64,
    /// Jobs that failed.
    pub failed: u64,
    /// Jobs that were cancelled.
    pub cancelled: u64,
    /// Unfinished jobs re-enqueued from the journal on startup.
    pub resumed: u64,
    /// Terminal jobs restored byte-identically from the journal on
    /// startup.
    pub replayed: u64,
    /// Current journal size in bytes (0 without a journal).
    pub journal_bytes: u64,
    /// Records appended (and flushed) by this process (0 without a
    /// journal; replayed records don't count).
    pub journal_appends: u64,
    /// Cumulative microseconds spent appending + flushing journal
    /// records — the daemon's journal fsync-path budget.
    pub journal_append_us: u64,
}

/// Why a submission was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The pending queue is at capacity; `depth` is its current length
    /// (the caller's `Retry-After` payload).
    QueueFull {
        /// Jobs currently pending.
        depth: usize,
    },
    /// The request failed submit-time validation.
    Invalid(String),
    /// The acceptance record could not be journaled — accepting the job
    /// anyway would break the resume contract, so the submission fails.
    Journal(String),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { depth } => write!(f, "job queue full ({depth} pending)"),
            SubmitError::Invalid(msg) => write!(f, "invalid request: {msg}"),
            SubmitError::Journal(msg) => write!(f, "journal append failed: {msg}"),
        }
    }
}

struct JobEntry {
    request: JobRequest,
    state: JobState,
    rows: Vec<String>,
    result: Option<String>,
    error: Option<String>,
    cancel: Arc<AtomicBool>,
    resumed: bool,
}

struct ExecState {
    jobs: BTreeMap<u64, JobEntry>,
    pending: VecDeque<u64>,
    next_id: u64,
    journal: Option<Journal>,
    resumed: u64,
    replayed: u64,
}

struct Inner {
    state: Mutex<ExecState>,
    ready: Condvar,
    stop: AtomicBool,
    capacity: usize,
}

/// The crash-safe streaming job executor (see the module docs).
pub struct JobExecutor {
    inner: Arc<Inner>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl JobExecutor {
    /// Opens the journal (when configured), replays it — restoring
    /// terminal jobs and re-enqueueing unfinished ones — and spawns the
    /// worker pool.
    ///
    /// # Errors
    ///
    /// Journal I/O failures (directory creation, open, torn-tail
    /// truncation).
    pub fn new(config: &JobExecutorConfig) -> io::Result<JobExecutor> {
        let mut state = ExecState {
            jobs: BTreeMap::new(),
            pending: VecDeque::new(),
            next_id: 1,
            journal: None,
            resumed: 0,
            replayed: 0,
        };
        if let Some(dir) = &config.journal_dir {
            std::fs::create_dir_all(dir)?;
            let (journal, records, _truncated) = Journal::open(&dir.join("jobs.journal"))?;
            replay(&mut state, records);
            state.journal = Some(journal);
        }
        let inner = Arc::new(Inner {
            state: Mutex::new(state),
            ready: Condvar::new(),
            stop: AtomicBool::new(false),
            capacity: config.queue_capacity.max(1),
        });
        let workers = config.workers.max(1);
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let worker_inner = Arc::clone(&inner);
            let spawned = std::thread::Builder::new()
                .name(format!("ftes-jobs-worker-{i}"))
                .spawn(move || worker_loop(&worker_inner));
            match spawned {
                Ok(handle) => handles.push(handle),
                Err(e) => {
                    // Unwind the partial pool: a half-spawned executor
                    // would strand accepted jobs, so fail construction
                    // whole and leave the journal as the source of truth.
                    inner.stop.store(true, Ordering::Release);
                    inner.ready.notify_all();
                    for handle in handles {
                        let _ = handle.join();
                    }
                    return Err(e);
                }
            }
        }
        Ok(JobExecutor { inner, handles: Mutex::new(handles) })
    }

    /// Validates, journals and enqueues one request; returns the job id.
    ///
    /// # Errors
    ///
    /// See [`SubmitError`].
    pub fn submit(&self, request: JobRequest) -> Result<u64, SubmitError> {
        request.validate().map_err(SubmitError::Invalid)?;
        let mut state = self.lock();
        if state.pending.len() >= self.inner.capacity {
            return Err(SubmitError::QueueFull { depth: state.pending.len() });
        }
        let id = state.next_id;
        state.next_id += 1;
        // Journal the acceptance *before* the job becomes visible: a job
        // the journal never saw would vanish on restart.
        if let Some(journal) = state.journal.as_mut() {
            journal
                .append(&JournalRecord::Accept { id, request: request.clone() })
                .map_err(|e| SubmitError::Journal(e.to_string()))?;
        }
        state.jobs.insert(
            id,
            JobEntry {
                request,
                state: JobState::Queued,
                rows: Vec::new(),
                result: None,
                error: None,
                cancel: Arc::new(AtomicBool::new(false)),
                resumed: false,
            },
        );
        state.pending.push_back(id);
        drop(state);
        ftes_obs::counter(ftes_obs::names::JOB_QUEUED, 1);
        self.inner.ready.notify_one();
        Ok(id)
    }

    /// Requests cancellation. `None` = unknown id; `Some(false)` = already
    /// terminal (nothing to cancel); `Some(true)` = cancelled out of the
    /// queue immediately, or flagged for the running worker to stop at
    /// the next row boundary.
    pub fn cancel(&self, id: u64) -> Option<bool> {
        let mut state = self.lock();
        let entry = state.jobs.get(&id)?;
        let (entry_state, cancel) = (entry.state, Arc::clone(&entry.cancel));
        match entry_state {
            JobState::Completed | JobState::Failed | JobState::Cancelled => Some(false),
            JobState::Running => {
                cancel.store(true, Ordering::Release);
                Some(true)
            }
            JobState::Queued => {
                state.pending.retain(|&p| p != id);
                finish(&mut state, id, TerminalStatus::Cancelled, String::new());
                Some(true)
            }
        }
    }

    /// A point-in-time snapshot of one job.
    pub fn status(&self, id: u64) -> Option<JobSnapshot> {
        let state = self.lock();
        let entry = state.jobs.get(&id)?;
        Some(JobSnapshot {
            id,
            kind: entry.request.kind(),
            state: entry.state,
            rows: entry.rows.clone(),
            result: entry.result.clone(),
            error: entry.error.clone(),
            resumed: entry.resumed,
        })
    }

    /// All known jobs in id order, without their payloads.
    pub fn list(&self) -> Vec<JobSummary> {
        let state = self.lock();
        state
            .jobs
            .iter()
            .map(|(&id, entry)| JobSummary {
                id,
                kind: entry.request.kind(),
                state: entry.state,
                rows_done: entry.rows.len(),
            })
            .collect()
    }

    /// Executor counters for `/metrics`.
    pub fn stats(&self) -> ExecutorStats {
        let state = self.lock();
        let mut stats = ExecutorStats {
            queue_depth: state.pending.len(),
            queue_capacity: self.inner.capacity,
            resumed: state.resumed,
            replayed: state.replayed,
            journal_bytes: state.journal.as_ref().map_or(0, Journal::bytes),
            journal_appends: state.journal.as_ref().map_or(0, Journal::appends),
            journal_append_us: state.journal.as_ref().map_or(0, Journal::append_micros),
            ..ExecutorStats::default()
        };
        for entry in state.jobs.values() {
            match entry.state {
                JobState::Queued => stats.queued += 1,
                JobState::Running => stats.running += 1,
                JobState::Completed => stats.completed += 1,
                JobState::Failed => stats.failed += 1,
                JobState::Cancelled => stats.cancelled += 1,
            }
        }
        stats
    }

    /// Stops the worker pool and joins it. In-flight jobs finish first
    /// (their terminal records reach the journal); still-queued jobs stay
    /// journaled without a terminal record, so the next start re-enqueues
    /// them — a graceful stop loses no accepted work. Idempotent.
    pub fn shutdown(&self) {
        if self.inner.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        self.inner.ready.notify_all();
        let handles =
            std::mem::take(&mut *self.handles.lock().unwrap_or_else(PoisonError::into_inner));
        for handle in handles {
            let _ = handle.join();
        }
    }

    fn lock(&self) -> MutexGuard<'_, ExecState> {
        lock_state(&self.inner)
    }
}

/// Lock the executor state, recovering from a poisoned mutex. The
/// critical sections guarded by this lock contain no panicking
/// operations (enforced by ftes-lint's panic-freedom rule), so poisoning
/// is already next to impossible; if it ever happens anyway, refusing
/// the lock forever would turn one panic into a permanently wedged
/// daemon, while the journal keeps the durable state consistent either
/// way — recovery is strictly better than propagation here.
fn lock_state(inner: &Inner) -> MutexGuard<'_, ExecState> {
    inner.state.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Drop for JobExecutor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Rebuilds executor state from surviving journal records.
fn replay(state: &mut ExecState, records: Vec<JournalRecord>) {
    for record in records {
        match record {
            JournalRecord::Accept { id, request } => {
                state.next_id = state.next_id.max(id + 1);
                state.jobs.insert(
                    id,
                    JobEntry {
                        request,
                        state: JobState::Queued,
                        rows: Vec::new(),
                        result: None,
                        error: None,
                        cancel: Arc::new(AtomicBool::new(false)),
                        resumed: false,
                    },
                );
            }
            JournalRecord::Row { id, index, row } => {
                if let Some(entry) = state.jobs.get_mut(&id) {
                    // Rows are journaled densely in order; anything else
                    // means a foreign/corrupt record — skip it rather
                    // than corrupting the watermark.
                    if !entry.state.is_terminal() && index as usize == entry.rows.len() {
                        entry.rows.push(row);
                    }
                }
            }
            JournalRecord::Done { id, status, result } => {
                if let Some(entry) = state.jobs.get_mut(&id) {
                    entry.state = match status {
                        TerminalStatus::Completed => {
                            entry.result = Some(result);
                            JobState::Completed
                        }
                        TerminalStatus::Failed => {
                            entry.error = Some(result);
                            JobState::Failed
                        }
                        TerminalStatus::Cancelled => JobState::Cancelled,
                    };
                    state.replayed += 1;
                }
            }
        }
    }
    // Accepted-but-unfinished jobs re-enqueue in id (acceptance) order,
    // with their journaled rows as the resume watermark.
    for (&id, entry) in state.jobs.iter_mut() {
        if entry.state == JobState::Queued {
            entry.resumed = true;
            state.resumed += 1;
            state.pending.push_back(id);
        }
    }
}

/// Journals and applies one terminal transition. Taking [`TerminalStatus`]
/// (not [`JobState`]) makes non-terminal arguments unrepresentable —
/// no runtime "terminal states only" check to get wrong. Journal append
/// failures are swallowed deliberately: the in-memory state must still
/// advance (a wedged journal must not wedge the daemon), and on restart
/// the job simply re-runs — resume-too-much is safe, forget is not.
fn finish(state: &mut ExecState, id: u64, status: TerminalStatus, payload: String) {
    if let Some(journal) = state.journal.as_mut() {
        let _ = journal.append(&JournalRecord::Done { id, status, result: payload.clone() });
    }
    // A missing entry means the id was never accepted (a bookkeeping bug,
    // caught by tests): nothing observable to update, and panicking in a
    // worker would be strictly worse than dropping the transition.
    let Some(entry) = state.jobs.get_mut(&id) else { return };
    entry.state = match status {
        TerminalStatus::Completed => JobState::Completed,
        TerminalStatus::Failed => JobState::Failed,
        TerminalStatus::Cancelled => JobState::Cancelled,
    };
    ftes_obs::counter(ftes_obs::names::JOB_TERMINAL, 1);
    match status {
        TerminalStatus::Completed => entry.result = Some(payload),
        TerminalStatus::Failed => entry.error = Some(payload),
        TerminalStatus::Cancelled => {}
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        // Claim the next pending job (or exit on shutdown).
        let (id, request, prior_rows, cancel) = {
            let mut state = lock_state(inner);
            loop {
                if inner.stop.load(Ordering::Acquire) {
                    return;
                }
                let claimed = state.pending.pop_front().and_then(|id| {
                    let entry = state.jobs.get_mut(&id)?;
                    entry.state = JobState::Running;
                    Some((id, entry.request.clone(), entry.rows.clone(), Arc::clone(&entry.cancel)))
                });
                // A pending id without an entry would be a bookkeeping
                // bug; the `?` above drops it instead of killing the
                // worker, and the loop claims the next job.
                if let Some(claimed) = claimed {
                    break claimed;
                }
                if state.pending.is_empty() {
                    state = inner.ready.wait(state).unwrap_or_else(PoisonError::into_inner);
                }
            }
        };
        // Execute without holding the lock; each emitted row takes it
        // briefly to journal-then-publish.
        let _job_span = ftes_obs::span(ftes_obs::names::JOB_RUN);
        let emit = |index: usize, row: &str| {
            ftes_obs::counter(ftes_obs::names::JOB_ROW, 1);
            let mut state = lock_state(inner);
            if let Some(journal) = state.journal.as_mut() {
                let _ = journal.append(&JournalRecord::Row {
                    id,
                    index: index as u64,
                    row: row.to_string(),
                });
            }
            if let Some(entry) = state.jobs.get_mut(&id) {
                debug_assert_eq!(entry.rows.len(), index, "rows stream densely in order");
                entry.rows.push(row.to_string());
            }
        };
        let outcome = execute_request(&request, &prior_rows, &cancel, emit);
        let (status, payload) = match outcome {
            Ok(result) => (TerminalStatus::Completed, result),
            Err(JobInterrupt::Cancelled) => (TerminalStatus::Cancelled, String::new()),
            Err(JobInterrupt::Failed(message)) => (TerminalStatus::Failed, message),
        };
        let mut state = lock_state(inner);
        finish(&mut state, id, status, payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;
    use std::time::{Duration, Instant};

    fn tiny_spec(deadline: i64) -> String {
        format!(
            "nodes 2\nslot 8\ndeadline {deadline}\nk 1\nstrategy mxr\n\
             process A wcet 10 12 alpha 1 mu 1 chi 1\n\
             process B wcet 8 8 alpha 1 mu 1 chi 1\n\
             message m0 A B 1\n"
        )
    }

    fn corpus_request(n: usize) -> JobRequest {
        use ftes::corpus::CorpusJob;
        JobRequest::CorpusRun {
            jobs: (0..n)
                .map(|i| CorpusJob {
                    name: format!("t{i}.ftes"),
                    family: "test".to_string(),
                    text: tiny_spec(200 + i as i64),
                })
                .collect(),
            workers: 1,
        }
    }

    fn wait_terminal(executor: &JobExecutor, id: u64) -> JobSnapshot {
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let snap = executor.status(id).expect("job exists");
            if snap.state.is_terminal() {
                return snap;
            }
            assert!(Instant::now() < deadline, "job {id} never reached a terminal state");
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ftes-exec-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn submit_poll_result_without_a_journal() {
        let executor = JobExecutor::new(&JobExecutorConfig::default()).unwrap();
        let id = executor.submit(corpus_request(3)).unwrap();
        assert_eq!(id, 1);
        let snap = wait_terminal(&executor, id);
        assert_eq!(snap.state, JobState::Completed);
        assert_eq!(snap.rows.len(), 3);
        assert!(snap.rows[0].starts_with("test,t0.ftes,"));
        let result = snap.result.expect("completed jobs carry a result");
        assert!(result.contains("\"specs\":3"), "{result}");
        assert_eq!(executor.list().len(), 1);
        let stats = executor.stats();
        assert_eq!((stats.completed, stats.resumed, stats.replayed), (1, 0, 0));
        assert_eq!(stats.journal_bytes, 0);
        executor.shutdown();
    }

    #[test]
    fn invalid_requests_and_full_queues_are_rejected() {
        // Zero workers would still spawn one; use a running job to plug
        // the single worker so the queue actually fills.
        let executor = JobExecutor::new(&JobExecutorConfig {
            queue_capacity: 1,
            ..JobExecutorConfig::default()
        })
        .unwrap();
        let err = executor.submit(JobRequest::Synthesize { spec: "bogus".into() }).unwrap_err();
        assert!(matches!(err, SubmitError::Invalid(_)), "{err:?}");

        // Fill: one job occupies the worker, one sits in the queue; the
        // third submission must bounce with the current depth.
        let a = executor.submit(corpus_request(50)).unwrap();
        let deadline = Instant::now() + Duration::from_secs(60);
        while executor.status(a).unwrap().state == JobState::Queued {
            assert!(Instant::now() < deadline, "the worker never claimed the first job");
            std::thread::sleep(Duration::from_millis(1));
        }
        let b = executor.submit(corpus_request(50)).unwrap();
        match executor.submit(corpus_request(1)) {
            Err(SubmitError::QueueFull { depth }) => assert_eq!(depth, 1),
            other => panic!("expected QueueFull, got {other:?}"),
        }
        assert!(executor.cancel(a).is_some());
        assert!(executor.cancel(b).is_some());
        executor.shutdown();
    }

    #[test]
    fn cancellation_stops_at_a_row_boundary() {
        let executor = JobExecutor::new(&JobExecutorConfig::default()).unwrap();
        // Unknown ids and terminal jobs.
        assert_eq!(executor.cancel(99), None);
        let done = executor.submit(corpus_request(1)).unwrap();
        wait_terminal(&executor, done);
        assert_eq!(executor.cancel(done), Some(false));

        // A long corpus job: cancel once the first row lands; the job must
        // end Cancelled with only a prefix of rows.
        let id = executor.submit(corpus_request(40)).unwrap();
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let snap = executor.status(id).unwrap();
            if !snap.rows.is_empty() || snap.state.is_terminal() {
                break;
            }
            assert!(Instant::now() < deadline, "no rows ever arrived");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(executor.cancel(id), Some(true));
        let snap = wait_terminal(&executor, id);
        assert_eq!(snap.state, JobState::Cancelled);
        assert!(snap.rows.len() < 40, "cancellation must cut the row stream short");
        assert!(snap.result.is_none());
        executor.shutdown();
    }

    #[test]
    fn queued_jobs_cancel_immediately() {
        let executor = JobExecutor::new(&JobExecutorConfig::default()).unwrap();
        let running = executor.submit(corpus_request(30)).unwrap();
        let queued = executor.submit(corpus_request(1)).unwrap();
        // The worker is busy with `running`; the queued job cancels
        // without ever starting.
        assert_eq!(executor.cancel(queued), Some(true));
        let snap = executor.status(queued).unwrap();
        assert_eq!(snap.state, JobState::Cancelled);
        assert!(snap.rows.is_empty());
        executor.cancel(running);
        wait_terminal(&executor, running);
        executor.shutdown();
    }

    #[test]
    fn restart_replays_terminal_jobs_and_resumes_unfinished_ones() {
        let dir = temp_dir("resume");
        let config =
            JobExecutorConfig { journal_dir: Some(dir.clone()), workers: 1, queue_capacity: 16 };

        // Uninterrupted reference result for the same corpus.
        let reference = {
            let executor = JobExecutor::new(&JobExecutorConfig::default()).unwrap();
            let id = executor.submit(corpus_request(4)).unwrap();
            let snap = wait_terminal(&executor, id);
            executor.shutdown();
            snap.result.unwrap()
        };

        // Run one job to completion under the journal.
        let completed_id = {
            let executor = JobExecutor::new(&config).unwrap();
            let id = executor.submit(corpus_request(4)).unwrap();
            wait_terminal(&executor, id);
            executor.shutdown();
            id
        };

        // Simulate a crash mid-second-job: hand-build the journal state of
        // an accepted job with two journaled rows and no terminal record
        // (a real kill -9 is exercised by the CI smoke; here we construct
        // the exact surviving-record shape).
        {
            let (mut journal, records, _) = Journal::open(&dir.join("jobs.journal")).unwrap();
            assert!(records.iter().any(|r| matches!(r, JournalRecord::Done { .. })));
            let request = corpus_request(4);
            journal.append(&JournalRecord::Accept { id: 2, request: request.clone() }).unwrap();
            // Journal the first two rows exactly as the executor would
            // have: recompute them via a plain run.
            let executor = JobExecutor::new(&JobExecutorConfig::default()).unwrap();
            let id = executor.submit(request).unwrap();
            let snap = wait_terminal(&executor, id);
            executor.shutdown();
            for (i, row) in snap.rows.iter().take(2).enumerate() {
                journal
                    .append(&JournalRecord::Row { id: 2, index: i as u64, row: row.clone() })
                    .unwrap();
            }
        }

        // Restart: job 1 replays its result byte-identically; job 2
        // resumes from its watermark and completes with the same bytes as
        // the uninterrupted reference.
        let executor = JobExecutor::new(&config).unwrap();
        let replayed = executor.status(completed_id).unwrap();
        assert_eq!(replayed.state, JobState::Completed);
        assert_eq!(replayed.result.as_deref(), Some(reference.as_str()));
        assert!(!replayed.resumed);

        let resumed = wait_terminal(&executor, 2);
        assert_eq!(resumed.state, JobState::Completed);
        assert!(resumed.resumed, "job 2 was re-enqueued from the journal");
        assert_eq!(resumed.rows.len(), 4);
        assert_eq!(resumed.result.as_deref(), Some(reference.as_str()));

        let stats = executor.stats();
        assert_eq!((stats.resumed, stats.replayed), (1, 1));
        assert!(stats.journal_bytes > 0);
        // Fresh submissions never collide with journaled ids.
        let next = executor.submit(corpus_request(1)).unwrap();
        assert_eq!(next, 3);
        wait_terminal(&executor, next);
        executor.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shutdown_leaves_queued_jobs_journaled_for_the_next_start() {
        let dir = temp_dir("handoff");
        let config =
            JobExecutorConfig { journal_dir: Some(dir.clone()), workers: 1, queue_capacity: 16 };
        {
            let executor = JobExecutor::new(&config).unwrap();
            let _running = executor.submit(corpus_request(10)).unwrap();
            let _queued = executor.submit(corpus_request(2)).unwrap();
            executor.shutdown();
            // The in-flight job finished (its Done is journaled); the
            // queued one never started.
        }
        let executor = JobExecutor::new(&config).unwrap();
        let snap = wait_terminal(&executor, 2);
        assert_eq!(snap.state, JobState::Completed);
        assert!(snap.resumed);
        assert_eq!(snap.rows.len(), 2);
        executor.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_dir_must_be_usable() {
        // A journal path that collides with an existing *file* fails fast.
        let dir = temp_dir("badjournal");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("jobs.journal"), b"not a journal at all").unwrap();
        let err = JobExecutor::new(&JobExecutorConfig {
            journal_dir: Some(dir.clone()),
            ..JobExecutorConfig::default()
        });
        assert!(err.is_err());
        let _ = std::fs::remove_dir_all(Path::new(&dir));
    }
}
