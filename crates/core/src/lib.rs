//! # ftes — Synthesis of Fault-Tolerant Embedded Systems
//!
//! A from-scratch reproduction of *"Synthesis of Fault-Tolerant Embedded
//! Systems"* (Eles, Izosimov, Pop, Peng — DATE 2008): design optimization
//! of hard real-time applications on distributed time-triggered platforms
//! such that `k` transient faults per cycle are tolerated with
//! checkpointing/rollback-recovery and active replication, transparency
//! requirements are honoured, and deadlines hold in the worst case.
//!
//! This facade crate re-exports the whole workspace and provides the
//! one-call flow [`synthesize_system`], which produces the paper's system
//! configuration ψ = <F, M, S>:
//!
//! * `F` — the fault-tolerance policy assignment `<P, Q, R, X>`
//!   ([`ftes_ft::PolicyAssignment`]),
//! * `M` — the mapping of processes and replicas
//!   ([`ftes_model::Mapping`], [`ftes_ftcpg::CopyMapping`]),
//! * `S` — the distributed conditional schedule tables
//!   ([`ftes_sched::ScheduleTables`], Fig. 6).
//!
//! ## Layer map
//!
//! | crate | contents |
//! |-------|----------|
//! | [`model`] | applications, WCET tables, architectures, fault model, transparency |
//! | [`tdma`] | TTP-style TDMA bus and platform |
//! | [`ft`] | recovery algebra, policies P/Q/R/X, local checkpoint optimum \[27\] |
//! | [`ftcpg`] | fault-tolerant conditional process graphs (Fig. 5) |
//! | [`sched`] | conditional scheduler, schedule tables, fast estimator |
//! | [`sim`] | fault-injection replay and verification |
//! | [`gen`] | seeded synthetic workloads + the named corpus families (the §6 experiments) |
//! | [`opt`] | MXR/MX/MR/SFX synthesis, checkpoint + bus optimization |
//! | [`explore`] | parallel portfolio exploration: batched evaluation, estimate cache, Pareto archive, scenario suites |
//! | [`soft`] | soft/hard time-constraint extension (utility scheduling, \[17\]) |
//!
//! This crate additionally hosts the `.ftes` system-specification parser
//! ([`spec`]), the resumable corpus batch driver ([`corpus`]) and
//! re-exports the escaping-aware JSON writer ([`json`], from
//! `ftes-model`) — all shared between the CLI and the `ftes-serve`
//! HTTP service.
//!
//! ## Quickstart
//!
//! The whole pipeline in one example (this is the tested twin of
//! `examples/quickstart.rs` — `cargo test --doc` runs it):
//!
//! ```
//! use ftes::{synthesize_system, Certification, FlowConfig};
//! use ftes::model::{samples, FaultModel, Time};
//! use ftes::tdma::{Platform, TdmaBus};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's Fig. 5 application with frozen P3/m2/m3, k = 2 faults.
//! let (app, arch, transparency) = samples::fig5();
//! let nodes = arch.node_count();
//! let platform = Platform::new(arch, TdmaBus::uniform(nodes, Time::new(8))?)?;
//!
//! let psi = synthesize_system(&app, &platform, FaultModel::new(2),
//!                             &transparency, FlowConfig::default())?;
//!
//! // F: every process got a fault-tolerance policy…
//! assert_eq!(psi.policies.iter().count(), app.process_count());
//! for (pid, policy) in psi.policies.iter() {
//!     println!("{:<4} {:?} on N{} (Q={})",
//!              app.process(pid).name(), policy.kind(),
//!              psi.mapping.node_of(pid).index(), policy.replica_count());
//! }
//!
//! // …and the shipped configuration is exact-certified schedulable, not
//! // just estimated so (the certify-and-repair contract): `Certified`
//! // carries the exact conditional schedule length.
//! assert!(psi.schedulable);
//! match psi.certification {
//!     Certification::Certified { exact_len } => {
//!         assert!(exact_len <= app.deadline());
//!         assert_eq!(psi.worst_case_length(), exact_len);
//!     }
//!     other => panic!("Fig. 5 certifies, got {other:?}"),
//! }
//!
//! // S: small instances also get the distributed schedule tables (Fig. 6).
//! let exact = psi.exact.as_ref().expect("Fig. 5 fits the FT-CPG budget");
//! assert!(exact.tables.entry_count() > 0);
//! println!("{}", exact.tables.render(&exact.cpg));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
mod flow;
pub mod spec;

pub use flow::{
    synthesize_system, synthesize_system_timed, synthesize_system_with, Certification,
    ExactSchedule, FlowConfig, FlowTimings, FtesError, SystemConfiguration,
};
pub use ftes_model::json;

pub use ftes_explore as explore;
pub use ftes_ft as ft;
pub use ftes_ftcpg as ftcpg;
pub use ftes_gen as gen;
pub use ftes_model as model;
pub use ftes_obs as obs;
pub use ftes_opt as opt;
pub use ftes_sched as sched;
pub use ftes_sim as sim;
pub use ftes_soft as soft;
pub use ftes_tdma as tdma;
