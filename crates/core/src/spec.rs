//! The `.ftes` system-specification format: a small line-oriented DSL
//! describing an application, its platform and its fault-tolerance
//! requirements, parsed without external dependencies.
//!
//! ```text
//! # cruise controller, two ECUs
//! nodes 2
//! slot 8
//! deadline 400
//! k 2
//! strategy mxr
//!
//! process P1 wcet 30 30 alpha 5 mu 5 chi 5
//! process P2 wcet 25 25
//! process P3 wcet 25 25
//! process P4 wcet 30 -            # "-" = cannot map on that node
//!
//! message m0 P1 P2 1
//! message m1 P1 P4 1
//!
//! frozen process P3
//! frozen message m1
//! ```
//!
//! Lines are independent; `#` starts a comment; numbers are integer time
//! units. Per-process options: `alpha`, `mu`, `chi`, `fixed <node>`,
//! `release <t>`, `dlocal <t>`.

use ftes_model::{
    Application, ApplicationBuilder, FaultModel, NodeId, ProcessId, ProcessSpec, Time, Transparency,
};
use ftes_opt::Strategy;
use ftes_tdma::{Platform, TdmaBus};
// ftes-lint: allow(determinism) reason="keyed lookup during validation only; iteration order never reaches results"
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A parsed and validated system specification.
#[derive(Debug, Clone)]
pub struct SystemSpec {
    /// The application graph.
    pub app: Application,
    /// The execution platform.
    pub platform: Platform,
    /// Transient-fault budget.
    pub fault_model: FaultModel,
    /// Designer transparency requirements.
    pub transparency: Transparency,
    /// Synthesis strategy (defaults to MXR).
    pub strategy: Strategy,
}

impl SystemSpec {
    /// Canonical, collision-free byte encoding of the parsed system.
    ///
    /// Two `.ftes` documents that parse to the same application, platform,
    /// fault model, transparency requirements and strategy produce
    /// identical bytes regardless of formatting, comments or directive
    /// order; any semantic difference changes the encoding. `ftes-serve`
    /// keys its result cache on this encoding, so equivalent requests are
    /// answered from cache with byte-identical bodies.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + 64 * self.app.process_count());
        out.extend_from_slice(b"ftes-spec-v1");
        self.encode_system(&mut out, true);
        out
    }

    /// Canonical byte encoding of only the `(application, platform, k)`
    /// triple — the inputs a
    /// [`SystemEvaluator`](ftes_sched::SystemEvaluator) is constructed
    /// from (and whose clones the synthesis flow then runs on). Two specs
    /// with equal `evaluator_bytes` can share a warm evaluator kernel even
    /// when they differ in strategy or transparency, which the flow passes
    /// separately; the `ftes-serve` evaluator bank keys on this encoding.
    pub fn evaluator_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + 64 * self.app.process_count());
        out.extend_from_slice(b"ftes-eval-v1");
        self.encode_system(&mut out, false);
        out
    }

    /// Shared encoder behind [`canonical_bytes`](SystemSpec::canonical_bytes)
    /// and [`evaluator_bytes`](SystemSpec::evaluator_bytes). One body, so a
    /// future field cannot be added to one encoding and forgotten in the
    /// other — which would make the serve evaluator bank alias kernels of
    /// *different* systems. `with_policy_dims` adds the fields that select
    /// synthesis behavior beyond the evaluator's inputs: the strategy and
    /// the per-process/per-message transparency (frozen) flags.
    fn encode_system(&self, out: &mut Vec<u8>, with_policy_dims: bool) {
        let nodes = self.platform.architecture().node_count();
        push_u64(out, nodes as u64);
        let slots = self.platform.bus().slots();
        push_u64(out, slots.len() as u64);
        for slot in slots {
            push_u64(out, slot.node.index() as u64);
            push_i64(out, slot.length.units());
        }
        push_u64(out, self.fault_model.k() as u64);
        if with_policy_dims {
            push_u64(
                out,
                match self.strategy {
                    Strategy::Mxr => 0,
                    Strategy::Mx => 1,
                    Strategy::Mr => 2,
                    Strategy::Sfx => 3,
                },
            );
        }
        push_i64(out, self.app.deadline().units());
        push_i64(out, self.app.period().units());
        push_u64(out, self.app.process_count() as u64);
        for (pid, p) in self.app.processes() {
            push_str(out, p.name());
            for n in 0..nodes {
                push_opt_i64(out, p.wcet_on(NodeId::new(n)).map(Time::units));
            }
            push_i64(out, p.alpha().units());
            push_i64(out, p.mu().units());
            push_i64(out, p.chi().units());
            push_i64(out, p.release().units());
            push_opt_i64(out, p.local_deadline().map(Time::units));
            push_opt_i64(out, p.fixed_node().map(|n| n.index() as i64));
            if with_policy_dims {
                out.push(self.transparency.is_process_frozen(pid) as u8);
            }
        }
        push_u64(out, self.app.message_count() as u64);
        for (mid, m) in self.app.messages() {
            push_str(out, m.name());
            push_u64(out, m.src().index() as u64);
            push_u64(out, m.dst().index() as u64);
            push_i64(out, m.transmission().units());
            if with_policy_dims {
                out.push(self.transparency.is_message_frozen(mid) as u8);
            }
        }
    }
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Length-prefixed so adjacent strings can never alias each other.
fn push_str(out: &mut Vec<u8>, s: &str) {
    push_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Tag byte + value keeps `None` distinct from every `Some`.
fn push_opt_i64(out: &mut Vec<u8>, v: Option<i64>) {
    match v {
        Some(v) => {
            out.push(1);
            push_i64(out, v);
        }
        None => out.push(0),
    }
}

/// Parse error with 1-based line number and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending directive (0 = file level).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    fn at(line: usize, message: impl Into<String>) -> Self {
        ParseError { line, message: message.into() }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl Error for ParseError {}

/// One parsed `process` directive: (line, name, wcet row, options).
type ProcessDraft = (usize, String, Vec<Option<i64>>, HashMap<String, i64>);

#[derive(Debug, Default)]
struct Draft {
    nodes: Option<usize>,
    slot: Option<i64>,
    deadline: Option<i64>,
    period: Option<i64>,
    k: Option<u32>,
    strategy: Option<Strategy>,
    processes: Vec<ProcessDraft>,
    messages: Vec<(usize, String, String, String, i64)>,
    frozen_processes: Vec<(usize, String)>,
    frozen_messages: Vec<(usize, String)>,
}

/// Parses a `.ftes` specification from text.
///
/// # Errors
///
/// Returns [`ParseError`] with the offending line for syntax problems,
/// unknown names, missing mandatory directives (`nodes`, `deadline`, `k`,
/// at least one process) and model-level validation failures.
pub fn parse_spec(text: &str) -> Result<SystemSpec, ParseError> {
    let _span = ftes_obs::span(ftes_obs::names::PARSE);
    let mut d = Draft::default();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut words = line.split_whitespace();
        let head = words.next().expect("non-empty line has a first word");
        let rest: Vec<&str> = words.collect();
        match head {
            "nodes" => d.nodes = Some(int(&rest, 0, line_no)? as usize),
            "slot" => d.slot = Some(int(&rest, 0, line_no)?),
            "deadline" => d.deadline = Some(int(&rest, 0, line_no)?),
            "period" => d.period = Some(int(&rest, 0, line_no)?),
            "k" => d.k = Some(int(&rest, 0, line_no)? as u32),
            "strategy" => {
                let s = rest
                    .first()
                    .ok_or_else(|| ParseError::at(line_no, "strategy needs a value"))?;
                d.strategy = Some(match s.to_ascii_lowercase().as_str() {
                    "mxr" => Strategy::Mxr,
                    "mx" => Strategy::Mx,
                    "mr" => Strategy::Mr,
                    "sfx" => Strategy::Sfx,
                    other => {
                        return Err(ParseError::at(
                            line_no,
                            format!("unknown strategy `{other}` (mxr|mx|mr|sfx)"),
                        ))
                    }
                });
            }
            "process" => parse_process(&rest, line_no, &mut d)?,
            "message" => {
                if rest.len() != 4 {
                    return Err(ParseError::at(
                        line_no,
                        "message needs: message <name> <src> <dst> <transmission>",
                    ));
                }
                let trans = rest[3].parse::<i64>().map_err(|_| {
                    ParseError::at(line_no, format!("bad transmission time `{}`", rest[3]))
                })?;
                d.messages.push((
                    line_no,
                    rest[0].to_string(),
                    rest[1].to_string(),
                    rest[2].to_string(),
                    trans,
                ));
            }
            "frozen" => match (rest.first(), rest.get(1)) {
                (Some(&"process"), Some(name)) => {
                    d.frozen_processes.push((line_no, name.to_string()))
                }
                (Some(&"message"), Some(name)) => {
                    d.frozen_messages.push((line_no, name.to_string()))
                }
                _ => {
                    return Err(ParseError::at(
                        line_no,
                        "frozen needs: frozen process <name> | frozen message <name>",
                    ))
                }
            },
            other => return Err(ParseError::at(line_no, format!("unknown directive `{other}`"))),
        }
    }
    build(d)
}

fn int(rest: &[&str], idx: usize, line: usize) -> Result<i64, ParseError> {
    rest.get(idx)
        .ok_or_else(|| ParseError::at(line, "missing numeric value"))?
        .parse::<i64>()
        .map_err(|_| ParseError::at(line, format!("bad number `{}`", rest[idx])))
}

fn parse_process(rest: &[&str], line: usize, d: &mut Draft) -> Result<(), ParseError> {
    let nodes =
        d.nodes.ok_or_else(|| ParseError::at(line, "declare `nodes <count>` before processes"))?;
    let name =
        rest.first().ok_or_else(|| ParseError::at(line, "process needs a name"))?.to_string();
    if rest.get(1) != Some(&"wcet") {
        return Err(ParseError::at(line, "process needs: process <name> wcet <v|-> …"));
    }
    let mut wcet = Vec::with_capacity(nodes);
    let mut i = 2;
    while wcet.len() < nodes {
        let tok = rest.get(i).ok_or_else(|| {
            ParseError::at(line, format!("process `{name}` needs {nodes} wcet entries"))
        })?;
        if *tok == "-" {
            wcet.push(None);
        } else {
            let v = tok
                .parse::<i64>()
                .map_err(|_| ParseError::at(line, format!("bad wcet `{tok}`")))?;
            wcet.push(Some(v));
        }
        i += 1;
    }
    let mut opts = HashMap::new();
    while i < rest.len() {
        let key = rest[i];
        if !matches!(key, "alpha" | "mu" | "chi" | "fixed" | "release" | "dlocal") {
            return Err(ParseError::at(line, format!("unknown process option `{key}`")));
        }
        let v = int(rest, i + 1, line)?;
        opts.insert(key.to_string(), v);
        i += 2;
    }
    d.processes.push((line, name, wcet, opts));
    Ok(())
}

fn build(d: Draft) -> Result<SystemSpec, ParseError> {
    let nodes = d.nodes.ok_or_else(|| ParseError::at(0, "missing `nodes <count>`"))?;
    let deadline = d.deadline.ok_or_else(|| ParseError::at(0, "missing `deadline <time>`"))?;
    let k = d.k.ok_or_else(|| ParseError::at(0, "missing `k <faults>`"))?;
    if d.processes.is_empty() {
        return Err(ParseError::at(0, "no processes declared"));
    }

    let mut builder = ApplicationBuilder::new(nodes);
    let mut process_ids: HashMap<String, ProcessId> = HashMap::new();
    for (line, name, wcet, opts) in &d.processes {
        if process_ids.contains_key(name) {
            return Err(ParseError::at(*line, format!("duplicate process `{name}`")));
        }
        let mut spec = ProcessSpec::new(name.clone(), wcet.iter().map(|w| w.map(Time::new)));
        spec = spec.overheads(
            Time::new(*opts.get("alpha").unwrap_or(&0)),
            Time::new(*opts.get("mu").unwrap_or(&0)),
            Time::new(*opts.get("chi").unwrap_or(&0)),
        );
        if let Some(&r) = opts.get("release") {
            spec = spec.release(Time::new(r));
        }
        if let Some(&dl) = opts.get("dlocal") {
            spec = spec.local_deadline(Time::new(dl));
        }
        if let Some(&n) = opts.get("fixed") {
            if n < 0 || n as usize >= nodes {
                return Err(ParseError::at(*line, format!("fixed node {n} out of range")));
            }
            spec = spec.fixed_node(NodeId::new(n as usize));
        }
        process_ids.insert(name.clone(), builder.add_process(spec));
    }

    let mut message_ids = HashMap::new();
    for (line, name, src, dst, trans) in &d.messages {
        let src_id = *process_ids
            .get(src)
            .ok_or_else(|| ParseError::at(*line, format!("unknown process `{src}`")))?;
        let dst_id = *process_ids
            .get(dst)
            .ok_or_else(|| ParseError::at(*line, format!("unknown process `{dst}`")))?;
        let mid = builder
            .add_message(name.clone(), src_id, dst_id, Time::new(*trans))
            .map_err(|e| ParseError::at(*line, e.to_string()))?;
        message_ids.insert(name.clone(), mid);
    }

    let mut builder = builder.deadline(Time::new(deadline));
    if let Some(p) = d.period {
        builder = builder.period(Time::new(p));
    }
    let app = builder.build().map_err(|e| ParseError::at(0, e.to_string()))?;

    let mut transparency = Transparency::none();
    for (line, name) in &d.frozen_processes {
        let pid = process_ids
            .get(name)
            .ok_or_else(|| ParseError::at(*line, format!("unknown process `{name}`")))?;
        transparency.freeze_process(*pid);
    }
    for (line, name) in &d.frozen_messages {
        let mid = message_ids
            .get(name)
            .ok_or_else(|| ParseError::at(*line, format!("unknown message `{name}`")))?;
        transparency.freeze_message(*mid);
    }

    let slot = d.slot.unwrap_or(8);
    let bus =
        TdmaBus::uniform(nodes, Time::new(slot)).map_err(|e| ParseError::at(0, e.to_string()))?;
    let arch = ftes_model::Architecture::homogeneous(nodes)
        .map_err(|e| ParseError::at(0, e.to_string()))?;
    let platform = Platform::new(arch, bus).map_err(|e| ParseError::at(0, e.to_string()))?;

    Ok(SystemSpec {
        app,
        platform,
        fault_model: FaultModel::new(k),
        transparency,
        strategy: d.strategy.unwrap_or(Strategy::Mxr),
    })
}

/// The Fig. 5 system as a `.ftes` document — used by `--demo` and tests.
pub const FIG5_SPEC: &str = "\
# the paper's Fig. 5 walk-through (k = 2, P3/m2/m3 frozen)
nodes 2
slot 8
deadline 400
k 2
strategy mxr

process P1 wcet 30 30 alpha 5 mu 5 chi 5
process P2 wcet 25 25 alpha 5 mu 5 chi 5
process P3 wcet 25 25 alpha 5 mu 5 chi 5
process P4 wcet 30 30 alpha 5 mu 5 chi 5

message m0 P1 P2 1
message m1 P1 P4 1
message m2 P1 P3 1
message m3 P2 P3 1

frozen process P3
frozen message m2
frozen message m3
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_demo_spec() {
        let spec = parse_spec(FIG5_SPEC).unwrap();
        assert_eq!(spec.app.process_count(), 4);
        assert_eq!(spec.app.message_count(), 4);
        assert_eq!(spec.fault_model.k(), 2);
        assert_eq!(spec.strategy, Strategy::Mxr);
        assert!(spec.transparency.is_process_frozen(ProcessId::new(2)));
        assert_eq!(spec.platform.architecture().node_count(), 2);
        assert_eq!(spec.platform.bus().round_length(), Time::new(16));
    }

    #[test]
    fn x_entries_and_options() {
        let text = "nodes 2\ndeadline 100\nk 1\n\
                    process a wcet 10 - alpha 1 mu 2 chi 3 fixed 0 release 5 dlocal 90\n";
        let spec = parse_spec(text).unwrap();
        let p = spec.app.process(ProcessId::new(0));
        assert_eq!(p.wcet_on(NodeId::new(1)), None);
        assert_eq!((p.alpha(), p.mu(), p.chi()), (Time::new(1), Time::new(2), Time::new(3)));
        assert_eq!(p.fixed_node(), Some(NodeId::new(0)));
        assert_eq!(p.release(), Time::new(5));
        assert_eq!(p.local_deadline(), Some(Time::new(90)));
    }

    #[test]
    fn error_reports_carry_line_numbers() {
        let cases: [(&str, usize, &str); 7] = [
            ("nodes 2\ndeadline 100\nk 1\nbogus x\n", 4, "unknown directive"),
            ("nodes 2\ndeadline 100\nk 1\nprocess a wcet 10\n", 4, "needs 2 wcet entries"),
            ("nodes 2\ndeadline 100\nk 1\nprocess a wcet 10 q\n", 4, "bad wcet"),
            (
                "nodes 2\ndeadline 100\nk 1\nprocess a wcet 9 9\nmessage m a b 1\n",
                5,
                "unknown process `b`",
            ),
            ("nodes 2\ndeadline 100\nk 1\nstrategy turbo\n", 4, "unknown strategy"),
            ("nodes 2\ndeadline 100\nk 1\nprocess a wcet 9 9 fixed 7\n", 4, "out of range"),
            (
                "nodes 2\ndeadline 100\nk 1\nprocess a wcet 9 9\nfrozen process z\n",
                5,
                "unknown process `z`",
            ),
        ];
        for (text, line, needle) in cases {
            let err = parse_spec(text).unwrap_err();
            assert_eq!(err.line, line, "{err}");
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn missing_mandatory_directives() {
        assert!(parse_spec("deadline 10\nk 1\n").unwrap_err().message.contains("nodes"));
        assert!(parse_spec("nodes 1\nk 1\n").unwrap_err().message.contains("deadline"));
        assert!(parse_spec("nodes 1\ndeadline 10\n").unwrap_err().message.contains('k'));
        assert!(parse_spec("nodes 1\ndeadline 10\nk 0\n")
            .unwrap_err()
            .message
            .contains("no processes"));
    }

    #[test]
    fn duplicate_process_rejected() {
        let text = "nodes 1\ndeadline 10\nk 0\nprocess a wcet 5\nprocess a wcet 5\n";
        let err = parse_spec(text).unwrap_err();
        assert!(err.message.contains("duplicate"));
        assert_eq!(err.line, 5);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\n# header\nnodes 1 # trailing\n\ndeadline 10\nk 0\nprocess a wcet 5\n";
        assert!(parse_spec(text).is_ok());
    }

    #[test]
    fn canonical_bytes_ignore_formatting_but_not_semantics() {
        let base = parse_spec(FIG5_SPEC).unwrap();
        // Reformatted: extra comments, blank lines, shuffled option-free
        // whitespace. Same parsed system.
        let reformatted = FIG5_SPEC.replace("k 2", "k 2   # two transient faults\n\n# pad");
        assert_eq!(base.canonical_bytes(), parse_spec(&reformatted).unwrap().canonical_bytes());

        // Any semantic change must change the encoding.
        let variants = [
            FIG5_SPEC.replace("k 2", "k 1"),
            FIG5_SPEC.replace("deadline 400", "deadline 401"),
            FIG5_SPEC.replace("strategy mxr", "strategy sfx"),
            FIG5_SPEC.replace("process P4 wcet 30 30", "process P4 wcet 30 31"),
            FIG5_SPEC.replace("frozen process P3\n", ""),
            FIG5_SPEC.replace("slot 8", "slot 9"),
            FIG5_SPEC.replace("message m0 P1 P2 1", "message m0 P1 P2 2"),
            FIG5_SPEC.replace("P2", "Q2"),
        ];
        for (i, text) in variants.iter().enumerate() {
            let spec = parse_spec(text).unwrap();
            assert_ne!(base.canonical_bytes(), spec.canonical_bytes(), "variant {i}");
        }
        // The encoding is deterministic.
        assert_eq!(base.canonical_bytes(), parse_spec(FIG5_SPEC).unwrap().canonical_bytes());
    }

    #[test]
    fn model_errors_surface_with_context() {
        // Cyclic graph flagged by the model layer.
        let text = "nodes 1\ndeadline 10\nk 0\nprocess a wcet 5\nprocess b wcet 5\n\
                    message m1 a b 1\nmessage m2 b a 1\n";
        let err = parse_spec(text).unwrap_err();
        assert!(err.message.contains("cycle"), "{err}");
    }
}
