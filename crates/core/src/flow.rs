//! The end-to-end synthesis flow of the paper's §6: from an application,
//! a platform, a fault model and transparency requirements to a system
//! configuration ψ = <F, M, S>.

use ftes_ft::PolicyAssignment;
use ftes_ftcpg::{build_ftcpg, BuildConfig, CopyMapping, FtCpg};
use ftes_model::{Application, FaultModel, Mapping, Transparency};
use ftes_opt::{synthesize_with, SearchConfig, Strategy, Synthesized};
use ftes_sched::{
    check_deadlines, schedule_ftcpg, ConditionalSchedule, Estimate, SchedConfig, ScheduleTables,
    SystemEvaluator,
};
use ftes_tdma::Platform;
use std::error::Error;
use std::fmt;
use std::time::{Duration, Instant};

/// Error produced by the end-to-end synthesis flow.
#[derive(Debug)]
#[non_exhaustive]
pub enum FtesError {
    /// Design optimization failed.
    Opt(ftes_opt::OptError),
    /// FT-CPG construction failed (other than exceeding the size budget,
    /// which degrades gracefully to an estimate-only configuration).
    Cpg(ftes_ftcpg::CpgError),
    /// Conditional scheduling failed.
    Sched(ftes_sched::SchedError),
}

impl fmt::Display for FtesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FtesError::Opt(e) => write!(f, "design optimization failed: {e}"),
            FtesError::Cpg(e) => write!(f, "FT-CPG construction failed: {e}"),
            FtesError::Sched(e) => write!(f, "conditional scheduling failed: {e}"),
        }
    }
}

impl Error for FtesError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FtesError::Opt(e) => Some(e),
            FtesError::Cpg(e) => Some(e),
            FtesError::Sched(e) => Some(e),
        }
    }
}

impl From<ftes_opt::OptError> for FtesError {
    fn from(e: ftes_opt::OptError) -> Self {
        FtesError::Opt(e)
    }
}

impl From<ftes_ftcpg::CpgError> for FtesError {
    fn from(e: ftes_ftcpg::CpgError) -> Self {
        FtesError::Cpg(e)
    }
}

impl From<ftes_sched::SchedError> for FtesError {
    fn from(e: ftes_sched::SchedError) -> Self {
        FtesError::Sched(e)
    }
}

/// Options of the end-to-end flow.
#[derive(Debug, Clone, Copy)]
pub struct FlowConfig {
    /// Synthesis strategy (Fig. 7 vocabulary); MXR is the paper's approach.
    pub strategy: Strategy,
    /// Tabu-search tunables for the optimization phase.
    pub search: SearchConfig,
    /// Conditional-scheduler tunables.
    pub sched: SchedConfig,
    /// FT-CPG size budget; larger instances return an estimate-only
    /// configuration (`schedule = None`).
    pub cpg: BuildConfig,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            strategy: Strategy::Mxr,
            search: SearchConfig::default(),
            sched: SchedConfig::default(),
            cpg: BuildConfig::default(),
        }
    }
}

/// The exact schedule-synthesis artifacts (present when the FT-CPG fits the
/// size budget).
#[derive(Debug, Clone)]
pub struct ExactSchedule {
    /// The fault-tolerant conditional process graph.
    pub cpg: FtCpg,
    /// Start times for every FT-CPG node plus condition broadcasts.
    pub schedule: ConditionalSchedule,
    /// The distributed per-node schedule tables `S` (Fig. 6).
    pub tables: ScheduleTables,
}

/// A synthesized system configuration ψ = <F, M, S> (paper §6).
#[derive(Debug, Clone)]
pub struct SystemConfiguration {
    /// Fault-tolerance policy assignment `F = <P, Q, R, X>`.
    pub policies: PolicyAssignment,
    /// Process mapping `M` (originals).
    pub mapping: Mapping,
    /// Copy placement (originals + replicas in `VR`).
    pub copies: CopyMapping,
    /// Fast worst-case estimate (always available).
    pub estimate: Estimate,
    /// Exact conditional schedule and tables, when the FT-CPG fits the
    /// configured size budget.
    pub exact: Option<ExactSchedule>,
    /// `true` when the synthesized worst case meets every deadline
    /// (judged on the exact schedule when present, else on the estimate).
    pub schedulable: bool,
}

impl SystemConfiguration {
    /// Worst-case schedule length: exact when available, estimated
    /// otherwise.
    pub fn worst_case_length(&self) -> ftes_model::Time {
        match &self.exact {
            Some(e) => e.schedule.length(),
            None => self.estimate.worst_case_length,
        }
    }
}

/// Runs the complete synthesis flow: policy assignment + mapping
/// optimization, FT-CPG construction, conditional scheduling and schedule
/// table generation.
///
/// For instances whose FT-CPG exceeds [`BuildConfig::node_limit`] the flow
/// degrades gracefully: `exact` is `None` and schedulability is judged on
/// the estimator (the same regime the paper's large-scale experiments run
/// in).
///
/// # Errors
///
/// Returns [`FtesError`] when optimization, graph construction (for reasons
/// other than size) or scheduling fails.
///
/// # Examples
///
/// ```
/// use ftes::{synthesize_system, FlowConfig};
/// use ftes_model::{samples, FaultModel, Transparency};
/// use ftes_tdma::Platform;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let (app, arch, transparency) = samples::fig5();
/// let node_count = arch.node_count();
/// let platform = Platform::new(arch, ftes_tdma::TdmaBus::uniform(node_count, ftes_model::Time::new(8))?)?;
/// let psi = synthesize_system(&app, &platform, FaultModel::new(2), &transparency,
///                             FlowConfig::default())?;
/// assert!(psi.schedulable);
/// let exact = psi.exact.as_ref().expect("small instance gets exact tables");
/// println!("{}", exact.tables.render(&exact.cpg));
/// # Ok(())
/// # }
/// ```
pub fn synthesize_system(
    app: &Application,
    platform: &Platform,
    fault_model: FaultModel,
    transparency: &Transparency,
    config: FlowConfig,
) -> Result<SystemConfiguration, FtesError> {
    let mut evaluator = SystemEvaluator::new(app, platform, fault_model.k());
    synthesize_system_with(&mut evaluator, fault_model, transparency, config)
}

/// [`synthesize_system`] over a caller-provided (possibly warm) evaluator
/// kernel: the application and platform are the ones the kernel was built
/// for. `ftes-serve` banks evaluators per `(app, platform, k)` so repeated
/// specs on a warm daemon skip the kernel construction entirely.
///
/// # Panics
///
/// Panics if the evaluator was built for a different fault budget than
/// `fault_model` (a caller bug, not an input error).
///
/// # Errors
///
/// Same as [`synthesize_system`].
pub fn synthesize_system_with(
    evaluator: &mut SystemEvaluator,
    fault_model: FaultModel,
    transparency: &Transparency,
    config: FlowConfig,
) -> Result<SystemConfiguration, FtesError> {
    Ok(synthesize_system_timed(evaluator, fault_model, transparency, config)?.0)
}

/// Wall-clock breakdown of one synthesis flow run, per phase — the numbers
/// behind the `ftes-serve` `/metrics` phase counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowTimings {
    /// Design-space optimization (mapping + policy search).
    pub optimize: Duration,
    /// FT-CPG construction.
    pub cpg: Duration,
    /// Conditional scheduling + table generation.
    pub schedule: Duration,
}

/// [`synthesize_system_with`], additionally reporting per-phase wall-clock
/// timings so services can expose hot-path regressions live.
///
/// # Panics
///
/// Panics if the evaluator was built for a different fault budget than
/// `fault_model`.
///
/// # Errors
///
/// Same as [`synthesize_system`].
pub fn synthesize_system_timed(
    evaluator: &mut SystemEvaluator,
    fault_model: FaultModel,
    transparency: &Transparency,
    config: FlowConfig,
) -> Result<(SystemConfiguration, FlowTimings), FtesError> {
    assert_eq!(evaluator.k(), fault_model.k(), "evaluator was built for a different fault budget");
    let mut timings = FlowTimings::default();
    let started = Instant::now();
    let Synthesized { mapping, policies, copies, estimate } =
        synthesize_with(evaluator, config.strategy, config.search)?;
    timings.optimize = started.elapsed();

    let app = evaluator.app();
    let platform = evaluator.platform();
    let started = Instant::now();
    let cpg = match build_ftcpg(app, &policies, &copies, fault_model, transparency, config.cpg) {
        Ok(cpg) => Some(cpg),
        Err(ftes_ftcpg::CpgError::GraphTooLarge { .. }) => None,
        Err(e) => return Err(e.into()),
    };
    timings.cpg = started.elapsed();
    let started = Instant::now();
    let exact = match cpg {
        Some(cpg) => {
            let schedule = schedule_ftcpg(app, &cpg, platform, config.sched)?;
            let tables =
                ScheduleTables::new(app, &cpg, &schedule, platform.architecture().node_count());
            Some(ExactSchedule { cpg, schedule, tables })
        }
        None => None,
    };
    timings.schedule = started.elapsed();
    let schedulable = match &exact {
        Some(e) => check_deadlines(app, &e.cpg, &e.schedule).is_empty(),
        None => estimate.worst_case_length <= app.deadline(),
    };
    Ok((SystemConfiguration { policies, mapping, copies, estimate, exact, schedulable }, timings))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftes_model::{samples, Time};

    fn fig5_flow(config: FlowConfig) -> SystemConfiguration {
        let (app, arch, transparency) = samples::fig5();
        let node_count = arch.node_count();
        let platform =
            Platform::new(arch, ftes_tdma::TdmaBus::uniform(node_count, Time::new(8)).unwrap())
                .unwrap();
        synthesize_system(&app, &platform, FaultModel::new(2), &transparency, config).unwrap()
    }

    #[test]
    fn full_flow_produces_exact_tables() {
        let psi = fig5_flow(FlowConfig::default());
        assert!(psi.schedulable);
        assert!(psi.worst_case_length() <= Time::new(400));
        psi.policies.validate(2).unwrap();
        let exact = psi.exact.expect("fig5 is small");
        assert!(exact.tables.entry_count() > 0);
    }

    #[test]
    fn oversized_cpg_degrades_to_estimate() {
        let config = FlowConfig { cpg: BuildConfig { node_limit: 2 }, ..FlowConfig::default() };
        let psi = fig5_flow(config);
        assert!(psi.exact.is_none());
        assert_eq!(psi.worst_case_length(), psi.estimate.worst_case_length);
    }

    #[test]
    fn strategies_are_selectable() {
        for strategy in [Strategy::Mx, Strategy::Sfx] {
            let config = FlowConfig {
                strategy,
                search: SearchConfig { iterations: 10, ..SearchConfig::default() },
                ..FlowConfig::default()
            };
            let psi = fig5_flow(config);
            assert!(psi.schedulable, "{strategy} must schedule fig5");
        }
    }

    #[test]
    fn error_display_chains() {
        let e = FtesError::from(ftes_opt::OptError::NoFeasibleConfiguration("x".into()));
        assert!(e.to_string().contains("design optimization failed"));
        assert!(e.source().is_some());
    }
}
