//! The end-to-end synthesis flow of the paper's §6: from an application,
//! a platform, a fault model and transparency requirements to a system
//! configuration ψ = <F, M, S>.

use ftes_ft::PolicyAssignment;
use ftes_ftcpg::{build_ftcpg, BuildConfig, CopyMapping, FtCpg};
use ftes_model::{Application, FaultModel, Mapping, Time, Transparency};
use ftes_opt::{
    synthesize_certified_mode, CertifiedSynthesis, CertifyMode, RepairConfig, SearchConfig,
    Strategy, Synthesized,
};
use ftes_sched::{
    check_deadlines, schedule_ftcpg, Certifier, CertifyConfig, ConditionalSchedule, Estimate,
    SchedConfig, ScheduleTables, SystemEvaluator,
};
use ftes_tdma::Platform;
use std::error::Error;
use std::fmt;
use std::time::{Duration, Instant};

/// Error produced by the end-to-end synthesis flow.
#[derive(Debug)]
#[non_exhaustive]
pub enum FtesError {
    /// Design optimization failed.
    Opt(ftes_opt::OptError),
    /// FT-CPG construction failed (other than exceeding the size budget,
    /// which degrades gracefully to an estimate-only configuration).
    Cpg(ftes_ftcpg::CpgError),
    /// Conditional scheduling failed.
    Sched(ftes_sched::SchedError),
}

impl fmt::Display for FtesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FtesError::Opt(e) => write!(f, "design optimization failed: {e}"),
            FtesError::Cpg(e) => write!(f, "FT-CPG construction failed: {e}"),
            FtesError::Sched(e) => write!(f, "conditional scheduling failed: {e}"),
        }
    }
}

impl Error for FtesError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FtesError::Opt(e) => Some(e),
            FtesError::Cpg(e) => Some(e),
            FtesError::Sched(e) => Some(e),
        }
    }
}

impl From<ftes_opt::OptError> for FtesError {
    fn from(e: ftes_opt::OptError) -> Self {
        FtesError::Opt(e)
    }
}

impl From<ftes_ftcpg::CpgError> for FtesError {
    fn from(e: ftes_ftcpg::CpgError) -> Self {
        FtesError::Cpg(e)
    }
}

impl From<ftes_sched::SchedError> for FtesError {
    fn from(e: ftes_sched::SchedError) -> Self {
        FtesError::Sched(e)
    }
}

/// Options of the end-to-end flow.
#[derive(Debug, Clone, Copy)]
pub struct FlowConfig {
    /// Synthesis strategy (Fig. 7 vocabulary); MXR is the paper's approach.
    pub strategy: Strategy,
    /// Tabu-search tunables for the optimization phase.
    pub search: SearchConfig,
    /// Conditional-scheduler tunables.
    pub sched: SchedConfig,
    /// FT-CPG size budget; larger instances return an estimate-only
    /// configuration (`schedule = None`).
    pub cpg: BuildConfig,
    /// Certify-and-repair tunables: how many calibrated re-searches may
    /// run when the exact conditional schedule refutes an incumbent the
    /// estimator accepted.
    pub repair: RepairConfig,
    /// When exact certification runs relative to the search: `PostHoc`
    /// certifies the finished incumbent (the classic loop), `Guided`
    /// incrementally certifies incumbents *during* the search and demotes
    /// refuted states on the spot.
    pub certify: CertifyMode,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            strategy: Strategy::Mxr,
            search: SearchConfig::default(),
            sched: SchedConfig::default(),
            cpg: BuildConfig::default(),
            repair: RepairConfig::default(),
            certify: CertifyMode::default(),
        }
    }
}

/// Exact-certification verdict of a synthesized configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Certification {
    /// The exact conditional schedule was built and meets every deadline:
    /// the configuration is exact-schedulable, not just estimated so.
    Certified {
        /// Worst-case length of the exact conditional schedule.
        exact_len: Time,
    },
    /// The exact schedule was built but misses a deadline even after the
    /// bounded repair loop — the incumbent ships explicitly refuted.
    Refuted {
        /// Worst-case length of the exact conditional schedule.
        exact_len: Time,
    },
    /// The FT-CPG exceeded the size budget: only the estimate exists (the
    /// regime the paper's large-scale experiments run in), so no exact
    /// verdict is possible.
    Uncertifiable,
}

impl Certification {
    /// `true` when the configuration is exact-certified schedulable.
    pub fn is_certified(&self) -> bool {
        matches!(self, Certification::Certified { .. })
    }

    /// The exact schedule length, when one was computed.
    pub fn exact_len(&self) -> Option<Time> {
        match self {
            Certification::Certified { exact_len } | Certification::Refuted { exact_len } => {
                Some(*exact_len)
            }
            Certification::Uncertifiable => None,
        }
    }
}

/// The exact schedule-synthesis artifacts (present when the FT-CPG fits the
/// size budget).
#[derive(Debug, Clone)]
pub struct ExactSchedule {
    /// The fault-tolerant conditional process graph.
    pub cpg: FtCpg,
    /// Start times for every FT-CPG node plus condition broadcasts.
    pub schedule: ConditionalSchedule,
    /// The distributed per-node schedule tables `S` (Fig. 6).
    pub tables: ScheduleTables,
}

/// A synthesized system configuration ψ = <F, M, S> (paper §6).
#[derive(Debug, Clone)]
pub struct SystemConfiguration {
    /// Fault-tolerance policy assignment `F = <P, Q, R, X>`.
    pub policies: PolicyAssignment,
    /// Process mapping `M` (originals).
    pub mapping: Mapping,
    /// Copy placement (originals + replicas in `VR`).
    pub copies: CopyMapping,
    /// Fast worst-case estimate (always available).
    pub estimate: Estimate,
    /// Exact conditional schedule and tables, when the FT-CPG fits the
    /// configured size budget.
    pub exact: Option<ExactSchedule>,
    /// `true` when the synthesized worst case meets every deadline
    /// (judged on the exact schedule when present, else on the estimate).
    pub schedulable: bool,
    /// Exact-certification verdict: [`Certification::Certified`] incumbents
    /// are exact-schedulable; anything else is explicitly tagged.
    pub certification: Certification,
    /// Calibrated repair searches the certify-and-repair loop ran.
    pub repair_rounds: u32,
    /// Per-instance estimator calibration factor in milli-units: the worst
    /// observed `exact / estimate` ratio on this run's incumbents (1000 =
    /// the estimator never under-priced one).
    pub calibration_milli: u64,
}

impl SystemConfiguration {
    /// Worst-case schedule length: exact when available, estimated
    /// otherwise.
    pub fn worst_case_length(&self) -> ftes_model::Time {
        match &self.exact {
            Some(e) => e.schedule.length(),
            None => self.estimate.worst_case_length,
        }
    }
}

/// Runs the complete synthesis flow: policy assignment + mapping
/// optimization, exact certification (with a bounded calibrated repair
/// loop when the exact conditional schedule refutes the estimator's
/// incumbent), FT-CPG construction, conditional scheduling and schedule
/// table generation.
///
/// The returned configuration is exact-certified schedulable
/// ([`Certification::Certified`]) or explicitly tagged: `Refuted` carries
/// the exact length when even the repair loop found nothing schedulable,
/// `Uncertifiable` marks the estimate-only regime.
///
/// For instances whose FT-CPG exceeds [`BuildConfig::node_limit`] the flow
/// degrades gracefully: `exact` is `None` and schedulability is judged on
/// the estimator (the same regime the paper's large-scale experiments run
/// in).
///
/// # Errors
///
/// Returns [`FtesError`] when optimization, graph construction (for reasons
/// other than size) or scheduling fails.
///
/// # Examples
///
/// ```
/// use ftes::{synthesize_system, FlowConfig};
/// use ftes_model::{samples, FaultModel, Transparency};
/// use ftes_tdma::Platform;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let (app, arch, transparency) = samples::fig5();
/// let node_count = arch.node_count();
/// let platform = Platform::new(arch, ftes_tdma::TdmaBus::uniform(node_count, ftes_model::Time::new(8))?)?;
/// let psi = synthesize_system(&app, &platform, FaultModel::new(2), &transparency,
///                             FlowConfig::default())?;
/// assert!(psi.schedulable);
/// let exact = psi.exact.as_ref().expect("small instance gets exact tables");
/// println!("{}", exact.tables.render(&exact.cpg));
/// # Ok(())
/// # }
/// ```
pub fn synthesize_system(
    app: &Application,
    platform: &Platform,
    fault_model: FaultModel,
    transparency: &Transparency,
    config: FlowConfig,
) -> Result<SystemConfiguration, FtesError> {
    let mut evaluator = SystemEvaluator::new(app, platform, fault_model.k());
    synthesize_system_with(&mut evaluator, fault_model, transparency, config)
}

/// [`synthesize_system`] over a caller-provided (possibly warm) evaluator
/// kernel: the application and platform are the ones the kernel was built
/// for. `ftes-serve` banks evaluators per `(app, platform, k)` so repeated
/// specs on a warm daemon skip the kernel construction entirely.
///
/// # Panics
///
/// Panics if the evaluator was built for a different fault budget than
/// `fault_model` (a caller bug, not an input error).
///
/// # Errors
///
/// Same as [`synthesize_system`].
pub fn synthesize_system_with(
    evaluator: &mut SystemEvaluator,
    fault_model: FaultModel,
    transparency: &Transparency,
    config: FlowConfig,
) -> Result<SystemConfiguration, FtesError> {
    Ok(synthesize_system_timed(evaluator, fault_model, transparency, config)?.0)
}

/// Wall-clock breakdown of one synthesis flow run, per phase — the numbers
/// behind the `ftes-serve` `/metrics` phase counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowTimings {
    /// Design-space optimization (mapping + policy search, repair rounds
    /// included).
    pub optimize: Duration,
    /// Exact certification (FT-CPG construction + exact scheduling inside
    /// the certify-and-repair loop).
    pub certify: Duration,
    /// FT-CPG construction (for the final tables, when not reused from
    /// certification).
    pub cpg: Duration,
    /// Conditional scheduling + table generation.
    pub schedule: Duration,
}

/// [`synthesize_system_with`], additionally reporting per-phase wall-clock
/// timings so services can expose hot-path regressions live.
///
/// # Panics
///
/// Panics if the evaluator was built for a different fault budget than
/// `fault_model`.
///
/// # Errors
///
/// Same as [`synthesize_system`].
pub fn synthesize_system_timed(
    evaluator: &mut SystemEvaluator,
    fault_model: FaultModel,
    transparency: &Transparency,
    config: FlowConfig,
) -> Result<(SystemConfiguration, FlowTimings), FtesError> {
    assert_eq!(evaluator.k(), fault_model.k(), "evaluator was built for a different fault budget");
    let _flow_span = ftes_obs::span(ftes_obs::names::SYNTHESIZE);
    let mut timings = FlowTimings::default();
    // ftes-lint: allow(determinism) reason="phase timings feed FlowTimings diagnostics and /metrics, never result bytes"
    let started = Instant::now();
    let mut certifier = Certifier::new(
        evaluator.app(),
        evaluator.platform(),
        fault_model,
        transparency,
        CertifyConfig { cpg: config.cpg, sched: config.sched, ..CertifyConfig::default() },
    );
    // The optimize span covers the certify-and-repair loop, so certify /
    // cpg / schedule spans emitted by the certifier nest inside it.
    let optimize_span = ftes_obs::span(ftes_obs::names::OPTIMIZE);
    let certified = synthesize_certified_mode(
        evaluator,
        &mut certifier,
        config.strategy,
        config.search,
        config.repair,
        config.certify,
    );
    drop(optimize_span);
    let CertifiedSynthesis { best, outcome: _, repair_rounds, calibration_milli } = certified?;
    let Synthesized { mapping, policies, copies, estimate } = best;
    timings.certify = certifier.stats().wall;
    timings.optimize = started.elapsed().saturating_sub(timings.certify);

    let app = evaluator.app();
    let platform = evaluator.platform();
    // Reuse the certifier's FT-CPG + exact schedule when the winner was the
    // last configuration it certified (the common path); otherwise rebuild.
    let reused = certifier.take_artifacts(&copies, &policies);
    // ftes-lint: allow(determinism) reason="phase timings feed FlowTimings diagnostics and /metrics, never result bytes"
    let started = Instant::now();
    let cpg_span = ftes_obs::span(ftes_obs::names::CPG);
    let built = match reused {
        Some((cpg, schedule)) => Some((cpg, Some(schedule))),
        None => match build_ftcpg(app, &policies, &copies, fault_model, transparency, config.cpg) {
            Ok(cpg) => Some((cpg, None)),
            Err(ftes_ftcpg::CpgError::GraphTooLarge { .. }) => None,
            Err(e) => return Err(e.into()),
        },
    };
    drop(cpg_span);
    timings.cpg = started.elapsed();
    // ftes-lint: allow(determinism) reason="phase timings feed FlowTimings diagnostics and /metrics, never result bytes"
    let started = Instant::now();
    let schedule_span = ftes_obs::span(ftes_obs::names::SCHEDULE);
    let exact = match built {
        Some((cpg, schedule)) => {
            let schedule = match schedule {
                Some(schedule) => schedule,
                None => schedule_ftcpg(app, &cpg, platform, config.sched)?,
            };
            let tables =
                ScheduleTables::new(app, &cpg, &schedule, platform.architecture().node_count());
            Some(ExactSchedule { cpg, schedule, tables })
        }
        None => None,
    };
    drop(schedule_span);
    timings.schedule = started.elapsed();
    // The certification verdict is re-derived from the final exact build so
    // it can never disagree with `schedulable` (same deterministic inputs).
    let certification = match &exact {
        Some(e) => {
            if check_deadlines(app, &e.cpg, &e.schedule).is_empty() {
                Certification::Certified { exact_len: e.schedule.length() }
            } else {
                Certification::Refuted { exact_len: e.schedule.length() }
            }
        }
        None => Certification::Uncertifiable,
    };
    let schedulable = match certification {
        Certification::Certified { .. } => true,
        Certification::Refuted { .. } => false,
        Certification::Uncertifiable => estimate.worst_case_length <= app.deadline(),
    };
    Ok((
        SystemConfiguration {
            policies,
            mapping,
            copies,
            estimate,
            exact,
            schedulable,
            certification,
            repair_rounds,
            calibration_milli,
        },
        timings,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftes_model::{samples, Time};

    fn fig5_flow(config: FlowConfig) -> SystemConfiguration {
        let (app, arch, transparency) = samples::fig5();
        let node_count = arch.node_count();
        let platform =
            Platform::new(arch, ftes_tdma::TdmaBus::uniform(node_count, Time::new(8)).unwrap())
                .unwrap();
        synthesize_system(&app, &platform, FaultModel::new(2), &transparency, config).unwrap()
    }

    #[test]
    fn full_flow_produces_exact_tables() {
        let psi = fig5_flow(FlowConfig::default());
        assert!(psi.schedulable);
        assert!(psi.worst_case_length() <= Time::new(400));
        psi.policies.validate(2).unwrap();
        let exact = psi.exact.expect("fig5 is small");
        assert!(exact.tables.entry_count() > 0);
        // The certification verdict agrees with the exact schedule.
        assert!(psi.certification.is_certified());
        assert_eq!(psi.certification.exact_len(), Some(exact.schedule.length()));
        assert!(psi.calibration_milli >= 1000);
    }

    #[test]
    fn oversized_cpg_degrades_to_estimate() {
        let config = FlowConfig { cpg: BuildConfig { node_limit: 2 }, ..FlowConfig::default() };
        let psi = fig5_flow(config);
        assert!(psi.exact.is_none());
        assert_eq!(psi.worst_case_length(), psi.estimate.worst_case_length);
        assert_eq!(psi.certification, Certification::Uncertifiable);
        assert_eq!(psi.certification.exact_len(), None);
        assert_eq!(psi.repair_rounds, 0);
    }

    #[test]
    fn certified_implies_schedulable_and_refuted_does_not() {
        let psi = fig5_flow(FlowConfig::default());
        match psi.certification {
            Certification::Certified { exact_len } => {
                assert!(psi.schedulable);
                assert_eq!(psi.worst_case_length(), exact_len);
                // No `exact >= estimate` assertion: the estimator is
                // usually optimistic but list-scheduling order anomalies
                // make pessimistic inversions legitimate (see
                // tests/certification.rs), so pinning the direction on one
                // incumbent would fail spuriously under search re-tuning.
            }
            other => panic!("fig5 must certify, got {other:?}"),
        }
    }

    #[test]
    fn guided_certification_is_selectable_and_certifies() {
        let config = FlowConfig { certify: CertifyMode::Guided, ..FlowConfig::default() };
        let psi = fig5_flow(config);
        assert!(psi.schedulable);
        assert!(psi.certification.is_certified());
        assert_eq!(psi.repair_rounds, 0, "guided incumbents are already certified");
    }

    #[test]
    fn strategies_are_selectable() {
        for strategy in [Strategy::Mx, Strategy::Sfx] {
            let config = FlowConfig {
                strategy,
                search: SearchConfig { iterations: 10, ..SearchConfig::default() },
                ..FlowConfig::default()
            };
            let psi = fig5_flow(config);
            assert!(psi.schedulable, "{strategy} must schedule fig5");
        }
    }

    #[test]
    fn error_display_chains() {
        let e = FtesError::from(ftes_opt::OptError::NoFeasibleConfiguration("x".into()));
        assert!(e.to_string().contains("design optimization failed"));
        assert!(e.source().is_some());
    }
}
