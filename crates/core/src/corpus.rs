//! Corpus batch driver: stream every spec of a scenario corpus through
//! the explore+certify synthesis pipeline with bounded parallel workers,
//! in-order incremental reporting and deterministic aggregation.
//!
//! The corpus itself comes from [`ftes_gen::corpus`] (named families,
//! deterministically seeded) or from any directory of `.ftes` files; this
//! module owns what happens *after* generation:
//!
//! * [`run_corpus`] — bounded worker pool over the job list. Each job is
//!   parsed and synthesized through the full certify-and-repair flow
//!   ([`synthesize_system`]); completed rows
//!   are
//!   delivered to the caller **in job order** as their prefix completes,
//!   so a CSV sink can append incrementally and a killed run loses at
//!   most the in-flight suffix.
//! * [`CorpusRow`] — one result row. The CSV encoding deliberately
//!   excludes wall-clock fields: equal corpora produce **byte-identical
//!   CSV for any worker count** (the corpus analogue of the explore
//!   determinism contract, pinned by `tests/corpus.rs`).
//! * [`parse_corpus_csv`] — reads rows back, which is how `ftes corpus
//!   run` resumes an interrupted run (the CSV *is* the progress state)
//!   and how aggregation covers rows computed by earlier invocations.
//! * [`aggregate_to_json`] — per-family and total aggregates (certified /
//!   refuted / estimate-only counts, schedulability percentage, average
//!   certified exact length, repair rounds) built on
//!   [`CertificationCounters`].

use crate::spec::parse_spec;
use crate::{synthesize_system, Certification, FlowConfig};
use ftes_model::json::JsonWriter;
use ftes_sched::CertificationCounters;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One corpus job: a named `.ftes` document tagged with its family.
///
/// `name` and `family` land verbatim in CSV rows, so they must be
/// CSV-safe: no commas, no line breaks ([`CorpusJob::csv_safe`]). The
/// directory loader behind `ftes corpus run` rejects offending file
/// names up front; direct library callers are checked again in
/// [`run_corpus`], which turns an unsafe label into a tagged error row
/// rather than emitting a row the parser can never read back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusJob {
    /// Spec name (file name for directory-backed corpora).
    pub name: String,
    /// Family label carried into the report (`unknown` when the document
    /// has no corpus header and the caller knows nothing better).
    pub family: String,
    /// The `.ftes` document text.
    pub text: String,
}

impl CorpusJob {
    /// Extracts the family name from a generated document's identity
    /// header (`# corpus: family=<name> …`), if present. A token that
    /// would be unsafe to embed in a CSV row is treated as "no header".
    pub fn family_from_header(text: &str) -> Option<&str> {
        let first = text.lines().next()?;
        let rest = first.strip_prefix("# corpus: family=")?;
        let end = rest.find(' ').unwrap_or(rest.len());
        let family = &rest[..end];
        CorpusJob::csv_safe(family).then_some(family)
    }

    /// Whether a label can be embedded in a corpus CSV row verbatim
    /// (the format is plain comma-separated, no quoting).
    pub fn csv_safe(label: &str) -> bool {
        !label.contains(',') && !label.contains('\n') && !label.contains('\r')
    }
}

/// Tunables of a corpus run.
#[derive(Debug, Clone, Copy)]
pub struct CorpusRunConfig {
    /// Bounded worker count (clamped to the job count; 0 behaves as 1).
    pub workers: usize,
    /// Flow configuration applied to every job. The spec's own `strategy`
    /// directive always wins over `flow.strategy`.
    pub flow: FlowConfig,
}

impl Default for CorpusRunConfig {
    fn default() -> Self {
        CorpusRunConfig { workers: 1, flow: FlowConfig::default() }
    }
}

/// Certification verdict vocabulary of a corpus row — the
/// certified-or-tagged contract flattened for flat-file reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorpusVerdict {
    /// Exact-certified schedulable.
    Certified,
    /// Exact schedule misses a deadline (ships explicitly refuted).
    Refuted,
    /// FT-CPG over the size budget: estimate-only regime, no exact
    /// verdict exists.
    Skipped,
    /// The spec failed to parse or the flow errored; the row is tagged,
    /// never silently dropped (details in [`CorpusOutcome::errors`]).
    Error,
}

impl CorpusVerdict {
    /// Stable CSV value (`true` / `false` / `skipped` / `error` — the
    /// same vocabulary as the explore reports).
    pub fn as_csv(self) -> &'static str {
        match self {
            CorpusVerdict::Certified => "true",
            CorpusVerdict::Refuted => "false",
            CorpusVerdict::Skipped => "skipped",
            CorpusVerdict::Error => "error",
        }
    }

    fn from_csv(s: &str) -> Option<CorpusVerdict> {
        Some(match s {
            "true" => CorpusVerdict::Certified,
            "false" => CorpusVerdict::Refuted,
            "skipped" => CorpusVerdict::Skipped,
            "error" => CorpusVerdict::Error,
            _ => return None,
        })
    }
}

impl std::fmt::Display for CorpusVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_csv())
    }
}

/// One spec's result row.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusRow {
    /// Family label.
    pub family: String,
    /// Spec name.
    pub spec: String,
    /// Process count.
    pub processes: usize,
    /// Platform node count.
    pub nodes: usize,
    /// Fault budget.
    pub k: u32,
    /// Synthesis strategy (lowercase).
    pub strategy: String,
    /// Global deadline.
    pub deadline: i64,
    /// Estimated worst-case schedule length of the shipped incumbent.
    pub estimate_worst_case: i64,
    /// Exact conditional schedule length, when one was computed.
    pub exact_len: Option<i64>,
    /// The certified-or-tagged verdict.
    pub certified: CorpusVerdict,
    /// Calibrated repair searches the certify-and-repair loop ran.
    pub repair_rounds: u32,
    /// Per-instance estimator calibration factor (milli-units).
    pub calibration_milli: u64,
    /// Whether the shipped incumbent meets its deadline (exact verdict
    /// when one exists, estimate otherwise).
    pub schedulable: bool,
}

/// Header line of the corpus CSV. No wall-clock columns by design: the
/// report must be byte-identical for any worker count.
pub const CORPUS_CSV_HEADER: &str = "family,spec,processes,nodes,k,strategy,deadline,\
estimate_worst_case,exact_len,certified,repair_rounds,calibration_milli,schedulable";

impl CorpusRow {
    /// Renders the row as one CSV line (no trailing newline).
    pub fn to_csv(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{}",
            self.family,
            self.spec,
            self.processes,
            self.nodes,
            self.k,
            self.strategy,
            self.deadline,
            self.estimate_worst_case,
            self.exact_len.map_or_else(|| "-".to_string(), |v| v.to_string()),
            self.certified.as_csv(),
            self.repair_rounds,
            self.calibration_milli,
            self.schedulable,
        )
    }

    fn from_csv(line: &str) -> Result<CorpusRow, String> {
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 13 {
            return Err(format!("expected 13 CSV fields, got {}: `{line}`", fields.len()));
        }
        let num = |i: usize| -> Result<i64, String> {
            fields[i].parse().map_err(|_| format!("bad number `{}` in `{line}`", fields[i]))
        };
        Ok(CorpusRow {
            family: fields[0].to_string(),
            spec: fields[1].to_string(),
            processes: num(2)? as usize,
            nodes: num(3)? as usize,
            k: num(4)? as u32,
            strategy: fields[5].to_string(),
            deadline: num(6)?,
            estimate_worst_case: num(7)?,
            exact_len: if fields[8] == "-" { None } else { Some(num(8)?) },
            certified: CorpusVerdict::from_csv(fields[9])
                .ok_or_else(|| format!("bad verdict `{}` in `{line}`", fields[9]))?,
            repair_rounds: num(10)? as u32,
            calibration_milli: num(11)? as u64,
            schedulable: match fields[12] {
                "true" => true,
                "false" => false,
                other => return Err(format!("bad bool `{other}` in `{line}`")),
            },
        })
    }

    /// The row's certification outcome in the
    /// [`CertificationCounters::record`] vocabulary; `None` for
    /// [`CorpusVerdict::Error`] rows, which carry no outcome.
    fn certification_outcome(&self) -> Option<Option<bool>> {
        match self.certified {
            CorpusVerdict::Certified => Some(Some(true)),
            CorpusVerdict::Refuted => Some(Some(false)),
            CorpusVerdict::Skipped => Some(None),
            CorpusVerdict::Error => None,
        }
    }
}

/// Outcome of one [`run_corpus`] invocation (the rows of *this* run; a
/// resumed run's earlier rows live in the CSV the caller re-reads).
#[derive(Debug, Clone)]
pub struct CorpusOutcome {
    /// Result rows, in job order.
    pub rows: Vec<CorpusRow>,
    /// Corpus-level certification counters over this run's rows
    /// ([`CorpusVerdict::Error`] rows carry no certification outcome and
    /// are excluded; they surface in [`CorpusOutcome::errors`]).
    pub counters: CertificationCounters,
    /// `(spec name, message)` for rows tagged [`CorpusVerdict::Error`].
    pub errors: Vec<(String, String)>,
    /// Wall-clock time of the run.
    pub wall: Duration,
}

/// Parses a corpus CSV document (header + rows) back into rows.
///
/// # Errors
///
/// Returns a description when the header or any row does not parse — the
/// resumable `ftes corpus run` driver treats that as "not our file" and
/// refuses to resume onto it.
pub fn parse_corpus_csv(text: &str) -> Result<Vec<CorpusRow>, String> {
    let mut lines = text.lines();
    match lines.next() {
        Some(header) if header == CORPUS_CSV_HEADER => {}
        Some(other) => return Err(format!("unexpected CSV header `{other}`")),
        None => return Err("empty CSV".to_string()),
    }
    lines.map(CorpusRow::from_csv).collect()
}

/// Crash-tolerant variant of [`parse_corpus_csv`] for resuming: returns
/// the longest parseable *prefix* of rows, discarding a torn tail — a
/// final line with no terminating newline (the writer died between the
/// row bytes and the `\n`, or mid-row) or any line that no longer
/// parses. The boolean reports whether anything was discarded, so the
/// caller can tell the operator the run lost (only) its in-flight
/// suffix.
///
/// # Errors
///
/// Still errors when the *header* is wrong — a foreign file is never
/// silently truncated into a corpus report.
pub fn recover_corpus_csv(text: &str) -> Result<(Vec<CorpusRow>, bool), String> {
    let mut lines = text.split('\n');
    match lines.next() {
        Some(header) if header == CORPUS_CSV_HEADER => {}
        Some(other) => return Err(format!("unexpected CSV header `{other}`")),
        None => return Err("empty CSV".to_string()),
    }
    // With a well-formed file, `split('\n')` yields one trailing empty
    // string; a torn tail shows up as a non-empty final chunk (complete
    // row or not, its newline never made it to disk — trusting it would
    // make the next append merge two rows into one line).
    let chunks: Vec<&str> = lines.collect();
    let (body, torn_tail) = match chunks.split_last() {
        Some((last, body)) => (body, !last.is_empty()),
        None => (&chunks[..], false),
    };
    let mut rows = Vec::with_capacity(body.len());
    let mut discarded = torn_tail;
    for line in body {
        match CorpusRow::from_csv(line) {
            Ok(row) => rows.push(row),
            Err(_) => {
                discarded = true;
                break;
            }
        }
    }
    Ok((rows, discarded))
}

/// Runs every job through the certify-and-repair synthesis flow with
/// `config.workers` bounded parallel workers.
///
/// `on_row(index, row)` fires **in job order** — row `i` is delivered
/// only after rows `0..i` — as soon as that prefix is complete, so
/// callers can stream rows to an append-only CSV and stay resumable.
/// Parse and flow failures become [`CorpusVerdict::Error`] rows rather
/// than panics or dropped jobs (the certified-or-tagged contract extends
/// to infrastructure failures).
pub fn run_corpus<F>(jobs: &[CorpusJob], config: &CorpusRunConfig, on_row: F) -> CorpusOutcome
where
    F: FnMut(usize, &CorpusRow) + Send,
{
    run_corpus_cancellable(jobs, config, None, on_row).0
}

/// Cancellable form of [`run_corpus`]: when the flag is observed set,
/// workers stop claiming jobs at the next row boundary (jobs already in
/// flight finish but are not delivered past the cancelled prefix). The
/// returned outcome then covers exactly the rows `on_row` saw — a
/// contiguous prefix of the job list — and the boolean reports whether
/// the run was cut short. A cancelled run is resumable: re-running the
/// undelivered suffix yields the rows an uninterrupted run would have
/// produced, byte-identically.
pub fn run_corpus_cancellable<F>(
    jobs: &[CorpusJob],
    config: &CorpusRunConfig,
    cancel: Option<&AtomicBool>,
    on_row: F,
) -> (CorpusOutcome, bool)
where
    F: FnMut(usize, &CorpusRow) + Send,
{
    // ftes-lint: allow(determinism, byte-identity) reason="wall-clock feeds the wall_ms diagnostics column, excluded from byte comparisons"
    let started = Instant::now();
    let workers = config.workers.clamp(1, jobs.len().max(1));

    struct Flusher<F> {
        slots: Vec<Option<(CorpusRow, Option<String>)>>,
        next: usize,
        on_row: F,
    }
    let flusher =
        Mutex::new(Flusher { slots: (0..jobs.len()).map(|_| None).collect(), next: 0, on_row });
    let next_job = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let flusher = &flusher;
            let next_job = &next_job;
            scope.spawn(move || loop {
                if cancel.is_some_and(|c| c.load(Ordering::Acquire)) {
                    break;
                }
                let i = next_job.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let result = run_job(&jobs[i], config);
                let mut f = flusher.lock().expect("corpus flusher poisoned");
                f.slots[i] = Some(result);
                while f.next < f.slots.len() && f.slots[f.next].is_some() {
                    let at = f.next;
                    let row = f.slots[at].take().expect("checked above");
                    (f.on_row)(at, &row.0);
                    f.slots[at] = Some(row);
                    f.next += 1;
                }
            });
        }
    });

    let mut inner = flusher.into_inner().expect("corpus flusher poisoned");
    // Only the delivered prefix counts: rows computed out of order past a
    // cancelled gap were never handed to `on_row`, and the outcome must
    // match what the caller's sink (CSV, journal) actually saw.
    let delivered = inner.next;
    let cancelled = delivered < jobs.len();
    let mut rows = Vec::with_capacity(delivered);
    let mut counters = CertificationCounters::default();
    let mut errors = Vec::new();
    for slot in inner.slots.drain(..delivered) {
        let (row, error) = slot.expect("delivered slots are filled");
        match row.certification_outcome() {
            Some(outcome) => counters.record(outcome, row.repair_rounds as u64),
            None => errors
                .push((row.spec.clone(), error.unwrap_or_else(|| "unknown failure".to_string()))),
        }
        rows.push(row);
    }
    (CorpusOutcome { rows, counters, errors, wall: started.elapsed() }, cancelled)
}

/// Replaces CSV-breaking characters so even a mislabeled job's error row
/// survives a round-trip through the report.
fn csv_sanitized(label: &str) -> String {
    label.replace([',', '\n', '\r'], "_")
}

/// Parses and synthesizes one job; failures come back as tagged error
/// rows with the message alongside.
fn run_job(job: &CorpusJob, config: &CorpusRunConfig) -> (CorpusRow, Option<String>) {
    let error_row = |message: String| {
        (
            CorpusRow {
                family: csv_sanitized(&job.family),
                spec: csv_sanitized(&job.name),
                processes: 0,
                nodes: 0,
                k: 0,
                strategy: "-".to_string(),
                deadline: 0,
                estimate_worst_case: 0,
                exact_len: None,
                certified: CorpusVerdict::Error,
                repair_rounds: 0,
                calibration_milli: 0,
                schedulable: false,
            },
            Some(message),
        )
    };
    // A CSV-unsafe label would produce a row the parser can never read
    // back, breaking resume and final aggregation after the whole run
    // already paid for synthesis — refuse the job up front instead.
    if !CorpusJob::csv_safe(&job.name) || !CorpusJob::csv_safe(&job.family) {
        return error_row(format!(
            "label `{}` (family `{}`) contains CSV-breaking characters (comma/newline)",
            csv_sanitized(&job.name),
            csv_sanitized(&job.family),
        ));
    }
    let spec = match parse_spec(&job.text) {
        Ok(spec) => spec,
        Err(e) => return error_row(format!("parse: {e}")),
    };
    let flow = FlowConfig { strategy: spec.strategy, ..config.flow };
    let psi = match synthesize_system(
        &spec.app,
        &spec.platform,
        spec.fault_model,
        &spec.transparency,
        flow,
    ) {
        Ok(psi) => psi,
        Err(e) => return error_row(format!("synthesis: {e}")),
    };
    let certified = match psi.certification {
        Certification::Certified { .. } => CorpusVerdict::Certified,
        Certification::Refuted { .. } => CorpusVerdict::Refuted,
        Certification::Uncertifiable => CorpusVerdict::Skipped,
    };
    (
        CorpusRow {
            family: job.family.clone(),
            spec: job.name.clone(),
            processes: spec.app.process_count(),
            nodes: spec.platform.architecture().node_count(),
            k: spec.fault_model.k(),
            strategy: spec.strategy.to_string().to_ascii_lowercase(),
            deadline: spec.app.deadline().units(),
            estimate_worst_case: psi.estimate.worst_case_length.units(),
            exact_len: psi.certification.exact_len().map(|t| t.units()),
            certified,
            repair_rounds: psi.repair_rounds,
            calibration_milli: psi.calibration_milli,
            schedulable: psi.schedulable,
        },
        None,
    )
}

/// Per-family aggregate of a complete row set.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupAggregate {
    /// Group label (a family name, a strategy, …).
    pub name: String,
    /// Rows in the group.
    pub specs: u64,
    /// Certification counters over the group's non-error rows.
    pub counters: CertificationCounters,
    /// Rows tagged [`CorpusVerdict::Error`].
    pub errors: u64,
    /// Rows whose shipped incumbent meets its deadline.
    pub schedulable: u64,
    /// Mean exact length of the certified rows (`None` when none
    /// certified).
    pub avg_certified_exact_len: Option<f64>,
}

impl GroupAggregate {
    /// Schedulable fraction of the group's rows, in percent (the
    /// schedulability column of the paper-style tables).
    pub fn schedulable_pct(&self) -> f64 {
        if self.specs == 0 {
            return 0.0;
        }
        100.0 * self.schedulable as f64 / self.specs as f64
    }
}

/// Groups rows by family (sorted by family name — deterministic for any
/// row order) and computes the paper-table aggregates.
pub fn aggregate(rows: &[CorpusRow]) -> Vec<GroupAggregate> {
    aggregate_by(rows, |r| &r.family)
}

/// [`aggregate`] over an arbitrary grouping key — the `fig_paper_tables`
/// harness uses it to tabulate by policy class (strategy) as well as by
/// family. Groups come back sorted by key, deterministic for any row
/// order.
pub fn aggregate_by<'a>(
    rows: &'a [CorpusRow],
    key: impl Fn(&'a CorpusRow) -> &'a str,
) -> Vec<GroupAggregate> {
    let mut keys: Vec<&str> = rows.iter().map(&key).collect();
    keys.sort_unstable();
    keys.dedup();
    keys.into_iter()
        .map(|group| {
            let members = rows.iter().filter(|r| key(r) == group);
            let mut agg = GroupAggregate {
                name: group.to_string(),
                specs: 0,
                counters: CertificationCounters::default(),
                errors: 0,
                schedulable: 0,
                avg_certified_exact_len: None,
            };
            let mut exact_sum = 0i64;
            for row in members {
                agg.specs += 1;
                agg.schedulable += row.schedulable as u64;
                match row.certification_outcome() {
                    Some(outcome) => agg.counters.record(outcome, row.repair_rounds as u64),
                    None => agg.errors += 1,
                }
                if row.certified == CorpusVerdict::Certified {
                    exact_sum += row.exact_len.unwrap_or(0);
                }
            }
            if agg.counters.certified > 0 {
                agg.avg_certified_exact_len =
                    Some(exact_sum as f64 / agg.counters.certified as f64);
            }
            agg
        })
        .collect()
}

/// Renders per-family and total aggregates of a complete row set as a
/// deterministic JSON document (no wall-clock fields; equal row sets
/// yield identical bytes).
pub fn aggregate_to_json(rows: &[CorpusRow]) -> String {
    let per_family = aggregate(rows);
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("specs");
    w.number_usize(rows.len());
    w.key("families");
    w.begin_array();
    for agg in &per_family {
        write_group_json(&mut w, agg);
    }
    w.end_array();
    let totals =
        per_family.iter().fold(CertificationCounters::default(), |acc, a| acc.merged(a.counters));
    w.key("totals");
    w.begin_object();
    write_counters(&mut w, totals);
    w.key("errors");
    w.number_u64(per_family.iter().map(|a| a.errors).sum());
    w.key("certified_pct");
    w.number_f64(totals.certified_pct(), 2);
    w.end_object();
    w.end_object();
    let mut out = w.finish();
    out.push('\n');
    out
}

fn write_counters(w: &mut JsonWriter, c: CertificationCounters) {
    w.key("certified");
    w.number_u64(c.certified);
    w.key("refuted");
    w.number_u64(c.refuted);
    w.key("uncertifiable");
    w.number_u64(c.uncertifiable);
    w.key("repair_rounds");
    w.number_u64(c.repair_rounds);
}

/// Writes one [`GroupAggregate`] as a complete JSON object. Shared by
/// [`aggregate_to_json`] and the `fig_paper_tables` harness so
/// `corpus_results.json` and `BENCH_corpus.json` cannot drift apart
/// structurally: a field added to the aggregate shows up in both.
pub fn write_group_json(w: &mut JsonWriter, agg: &GroupAggregate) {
    w.begin_object();
    w.key("name");
    w.string(&agg.name);
    w.key("specs");
    w.number_u64(agg.specs);
    write_counters(w, agg.counters);
    w.key("errors");
    w.number_u64(agg.errors);
    w.key("schedulable");
    w.number_u64(agg.schedulable);
    w.key("schedulable_pct");
    w.number_f64(agg.schedulable_pct(), 2);
    w.key("certified_pct");
    w.number_f64(agg.counters.certified_pct(), 2);
    w.key("avg_certified_exact_len");
    match agg.avg_certified_exact_len {
        Some(v) => w.number_f64(v, 2),
        None => w.null(),
    }
    w.end_object();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_job(name: &str, deadline: i64) -> CorpusJob {
        CorpusJob {
            name: name.to_string(),
            family: "test".to_string(),
            text: format!(
                "nodes 2\nslot 8\ndeadline {deadline}\nk 1\nstrategy mxr\n\
                 process A wcet 10 12 alpha 1 mu 1 chi 1\n\
                 process B wcet 8 8 alpha 1 mu 1 chi 1\n\
                 message m0 A B 1\n"
            ),
        }
    }

    #[test]
    fn rows_arrive_in_order_and_aggregate() {
        let jobs: Vec<CorpusJob> =
            (0..4).map(|i| tiny_job(&format!("t{i}.ftes"), 200 + i)).collect();
        let mut seen = Vec::new();
        let outcome = run_corpus(&jobs, &CorpusRunConfig::default(), |i, row| {
            seen.push((i, row.spec.clone()));
        });
        assert_eq!(seen, (0..4).map(|i| (i, format!("t{i}.ftes"))).collect::<Vec<_>>());
        assert_eq!(outcome.rows.len(), 4);
        assert!(outcome.errors.is_empty());
        assert_eq!(outcome.counters.total(), 4);
        assert_eq!(outcome.counters.certified, 4, "tiny loose-deadline jobs certify");
        for row in &outcome.rows {
            assert_eq!(row.certified, CorpusVerdict::Certified);
            assert!(row.schedulable);
            assert_eq!(row.strategy, "mxr");
        }
    }

    #[test]
    fn csv_is_byte_identical_across_worker_counts() {
        let jobs: Vec<CorpusJob> =
            (0..6).map(|i| tiny_job(&format!("t{i}.ftes"), 150 + 7 * i)).collect();
        let render = |workers: usize| {
            let mut csv = format!("{CORPUS_CSV_HEADER}\n");
            run_corpus(&jobs, &CorpusRunConfig { workers, ..Default::default() }, |_, row| {
                csv.push_str(&row.to_csv());
                csv.push('\n');
            });
            csv
        };
        let serial = render(1);
        assert_eq!(serial, render(4));
        // And the CSV round-trips.
        let rows = parse_corpus_csv(&serial).unwrap();
        assert_eq!(rows.len(), 6);
        assert_eq!(rows[0].to_csv(), serial.lines().nth(1).unwrap());
    }

    #[test]
    fn cancellation_cuts_the_run_at_a_row_boundary_and_stays_resumable() {
        let jobs: Vec<CorpusJob> =
            (0..5).map(|i| tiny_job(&format!("t{i}.ftes"), 200 + i)).collect();
        // A pre-set flag cancels before any work.
        let cancel = AtomicBool::new(true);
        let mut delivered = 0usize;
        let (outcome, cancelled) =
            run_corpus_cancellable(&jobs, &CorpusRunConfig::default(), Some(&cancel), |_, _| {
                delivered += 1;
            });
        assert!(cancelled);
        assert_eq!((outcome.rows.len(), delivered), (0, 0));
        assert_eq!(outcome.counters.total(), 0);

        // Cancelling after the second row: the outcome is exactly the
        // delivered prefix, and re-running the suffix reproduces the
        // uninterrupted run byte-identically.
        let full = run_corpus(&jobs, &CorpusRunConfig::default(), |_, _| {});
        let cancel = AtomicBool::new(false);
        let mut prefix = Vec::new();
        let (outcome, cancelled) =
            run_corpus_cancellable(&jobs, &CorpusRunConfig::default(), Some(&cancel), |i, row| {
                prefix.push(row.to_csv());
                if i == 1 {
                    cancel.store(true, Ordering::Relaxed);
                }
            });
        assert!(cancelled);
        assert!(outcome.rows.len() < jobs.len());
        assert_eq!(outcome.rows.len(), prefix.len());
        let skip = outcome.rows.len();
        let (resumed, resumed_cancelled) =
            run_corpus_cancellable(&jobs[skip..], &CorpusRunConfig::default(), None, |_, _| {});
        assert!(!resumed_cancelled);
        let merged: Vec<String> =
            outcome.rows.iter().chain(resumed.rows.iter()).map(CorpusRow::to_csv).collect();
        assert_eq!(merged, full.rows.iter().map(CorpusRow::to_csv).collect::<Vec<_>>());
    }

    #[test]
    fn parse_and_flow_failures_become_tagged_error_rows() {
        let jobs = vec![
            tiny_job("good.ftes", 500),
            CorpusJob {
                name: "bad.ftes".to_string(),
                family: "test".to_string(),
                text: "nodes 2\nbogus directive\n".to_string(),
            },
        ];
        let outcome = run_corpus(&jobs, &CorpusRunConfig::default(), |_, _| {});
        assert_eq!(outcome.rows.len(), 2);
        assert_eq!(outcome.rows[1].certified, CorpusVerdict::Error);
        assert!(!outcome.rows[1].schedulable);
        assert_eq!(outcome.errors.len(), 1);
        assert!(outcome.errors[0].1.contains("parse"), "{:?}", outcome.errors);
        // Error rows stay out of the certification counters.
        assert_eq!(outcome.counters.total(), 1);
        // And survive a CSV round-trip.
        let csv = format!(
            "{CORPUS_CSV_HEADER}\n{}\n{}\n",
            outcome.rows[0].to_csv(),
            outcome.rows[1].to_csv()
        );
        let rows = parse_corpus_csv(&csv).unwrap();
        assert_eq!(rows, outcome.rows);
    }

    #[test]
    fn csv_unsafe_labels_become_tagged_error_rows() {
        let jobs = vec![CorpusJob {
            name: "a,b.ftes".to_string(),
            family: "te,st".to_string(),
            text: "nodes 1\ndeadline 10\nk 0\nprocess p wcet 5\n".to_string(),
        }];
        let outcome = run_corpus(&jobs, &CorpusRunConfig::default(), |_, _| {});
        let row = &outcome.rows[0];
        // Refused before synthesis, with sanitized labels so the row
        // itself still round-trips through the report.
        assert_eq!(row.certified, CorpusVerdict::Error);
        assert_eq!(row.spec, "a_b.ftes");
        assert_eq!(row.family, "te_st");
        assert!(outcome.errors[0].1.contains("CSV-breaking"), "{:?}", outcome.errors);
        let csv = format!("{CORPUS_CSV_HEADER}\n{}\n", row.to_csv());
        assert_eq!(parse_corpus_csv(&csv).unwrap()[0], *row);
        // The header extractor refuses unsafe family tokens outright.
        assert!(!CorpusJob::csv_safe("a,b"));
        assert_eq!(CorpusJob::family_from_header("# corpus: family=a,b index=0 seed=7\n"), None);
    }

    #[test]
    fn bad_csv_is_rejected_not_resumed_onto() {
        assert!(parse_corpus_csv("").is_err());
        assert!(parse_corpus_csv("some,other,header\n").is_err());
        let bad_row = format!("{CORPUS_CSV_HEADER}\nonly,three,fields\n");
        assert!(parse_corpus_csv(&bad_row).is_err());
        let bad_verdict = format!("{CORPUS_CSV_HEADER}\nf,s,1,1,1,mxr,10,10,-,maybe,0,1000,true\n");
        assert!(parse_corpus_csv(&bad_verdict).is_err());
    }

    #[test]
    fn recovery_keeps_the_parseable_prefix_and_discards_torn_tails() {
        let row = "f,s.ftes,4,2,1,mxr,100,50,60,true,0,1000,true";
        // Well-formed: full parse, nothing discarded.
        let clean = format!("{CORPUS_CSV_HEADER}\n{row}\n{row}\n");
        let (rows, discarded) = recover_corpus_csv(&clean).unwrap();
        assert_eq!((rows.len(), discarded), (2, false));
        // Killed between the row bytes and the newline: the final line
        // parses but its newline never hit disk — it must be discarded
        // (an append would merge two rows into one line).
        let unterminated = format!("{CORPUS_CSV_HEADER}\n{row}\n{row}");
        let (rows, discarded) = recover_corpus_csv(&unterminated).unwrap();
        assert_eq!((rows.len(), discarded), (1, true));
        // Killed mid-row: the partial line is discarded.
        let partial = format!("{CORPUS_CSV_HEADER}\n{row}\nf,s2.ftes,4,2");
        let (rows, discarded) = recover_corpus_csv(&partial).unwrap();
        assert_eq!((rows.len(), discarded), (1, true));
        // Header only, with and without its newline.
        assert_eq!(recover_corpus_csv(&format!("{CORPUS_CSV_HEADER}\n")).unwrap(), (vec![], false));
        assert_eq!(recover_corpus_csv(CORPUS_CSV_HEADER).unwrap(), (vec![], false));
        // A foreign file is still refused, never truncated into shape.
        assert!(recover_corpus_csv("some,other,header\nx\n").is_err());
        assert!(recover_corpus_csv("").is_err());
    }

    #[test]
    fn family_from_header_reads_generated_documents() {
        assert_eq!(
            CorpusJob::family_from_header("# corpus: family=automotive index=3 seed=7\nnodes 2\n"),
            Some("automotive")
        );
        assert_eq!(CorpusJob::family_from_header("# plain comment\n"), None);
        assert_eq!(CorpusJob::family_from_header(""), None);
    }

    #[test]
    fn aggregate_groups_by_family_deterministically() {
        let row =
            |family: &str, certified: CorpusVerdict, exact: Option<i64>, sched: bool| CorpusRow {
                family: family.to_string(),
                spec: format!("{family}.ftes"),
                processes: 4,
                nodes: 2,
                k: 1,
                strategy: "mxr".to_string(),
                deadline: 100,
                estimate_worst_case: 50,
                exact_len: exact,
                certified,
                repair_rounds: 1,
                calibration_milli: 1000,
                schedulable: sched,
            };
        let rows = vec![
            row("b", CorpusVerdict::Certified, Some(60), true),
            row("a", CorpusVerdict::Refuted, Some(120), false),
            row("b", CorpusVerdict::Certified, Some(80), true),
            row("a", CorpusVerdict::Error, None, false),
        ];
        let aggs = aggregate(&rows);
        assert_eq!(aggs.len(), 2);
        assert_eq!(aggs[0].name, "a");
        assert_eq!((aggs[0].counters.refuted, aggs[0].errors), (1, 1));
        assert_eq!(aggs[0].avg_certified_exact_len, None);
        assert_eq!(aggs[0].schedulable_pct(), 0.0);
        assert_eq!(aggs[1].name, "b");
        assert_eq!(aggs[1].counters.certified, 2);
        assert_eq!(aggs[1].avg_certified_exact_len, Some(70.0));
        assert_eq!(aggs[1].schedulable, 2);
        assert_eq!(aggs[1].schedulable_pct(), 100.0);

        // The generalized key: grouping by strategy collapses both
        // families into one group with the same totals.
        let by_strategy = aggregate_by(&rows, |r| &r.strategy);
        assert_eq!(by_strategy.len(), 1);
        assert_eq!(by_strategy[0].name, "mxr");
        assert_eq!(by_strategy[0].specs, 4);
        assert_eq!(by_strategy[0].counters.certified, 2);

        let json = aggregate_to_json(&rows);
        assert!(json.contains("\"name\":\"a\""));
        assert!(json.contains("\"avg_certified_exact_len\":70.00"));
        assert!(json.contains("\"totals\""));
        // Deterministic for permuted input.
        let mut shuffled = rows.clone();
        shuffled.swap(0, 3);
        shuffled.swap(1, 2);
        assert_eq!(json, aggregate_to_json(&shuffled));
    }
}
