//! Graphviz DOT export of application graphs, for debugging and
//! documentation.

use crate::{Application, Transparency};
use std::fmt::Write as _;

/// Renders the application graph in Graphviz DOT syntax.
///
/// Frozen processes and messages (per `transparency`) are drawn boxed, like
/// the rectangles of the paper's Fig. 5a.
///
/// # Examples
///
/// ```
/// use ftes_model::{samples, dot};
///
/// let (app, _, t) = samples::fig5();
/// let rendered = dot::application_to_dot(&app, &t);
/// assert!(rendered.contains("digraph application"));
/// assert!(rendered.contains("P3"));
/// ```
pub fn application_to_dot(app: &Application, transparency: &Transparency) -> String {
    let mut out = String::new();
    out.push_str("digraph application {\n  rankdir=TB;\n");
    for (pid, p) in app.processes() {
        let shape = if transparency.is_process_frozen(pid) { "box" } else { "ellipse" };
        let _ =
            writeln!(out, "  {} [label=\"{}\", shape={shape}];", node_key(pid.index()), p.name());
    }
    for (mid, m) in app.messages() {
        let style = if transparency.is_message_frozen(mid) { ", style=bold" } else { "" };
        let _ = writeln!(
            out,
            "  {} -> {} [label=\"{}\"{}];",
            node_key(m.src().index()),
            node_key(m.dst().index()),
            m.name(),
            style
        );
    }
    out.push_str("}\n");
    out
}

fn node_key(index: usize) -> String {
    format!("p{index}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples;

    #[test]
    fn renders_all_nodes_and_edges() {
        let (app, _, t) = samples::fig5();
        let dot = application_to_dot(&app, &t);
        for (_, p) in app.processes() {
            assert!(dot.contains(p.name()));
        }
        for (_, m) in app.messages() {
            assert!(dot.contains(m.name()));
        }
        // Frozen process P3 boxed, frozen messages bold.
        assert!(dot.contains("\"P3\", shape=box"));
        assert!(dot.contains("\"m2\", style=bold"));
        // Non-frozen P1 is an ellipse.
        assert!(dot.contains("\"P1\", shape=ellipse"));
    }

    #[test]
    fn output_is_parseable_shape() {
        let (app, _) = samples::fig3();
        let dot = application_to_dot(&app, &Transparency::none());
        assert!(dot.starts_with("digraph application {"));
        assert!(dot.trim_end().ends_with('}'));
        assert_eq!(dot.matches("->").count(), app.message_count());
    }
}
