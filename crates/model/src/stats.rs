//! Application statistics: the structural quantities designers inspect when
//! judging an instance (critical path, parallelism, load) and that the
//! workload generator's calibration is expressed in (see DESIGN.md §6a,
//! item 8).

use crate::{Application, Time};

/// Structural statistics of an application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppStats {
    /// Number of processes.
    pub processes: usize,
    /// Number of messages.
    pub messages: usize,
    /// Length of the longest chain (number of processes on it).
    pub depth: usize,
    /// Critical-path length using each process's minimal WCET plus message
    /// transmission times — a lower bound on any schedule.
    pub critical_path: Time,
    /// Sum of minimal WCETs — the serial computation demand.
    pub serial_load: Time,
    /// `serial_load / critical_path` — the average parallelism available.
    pub parallelism: f64,
    /// `serial_load / deadline`, per node — utilization pressure assuming
    /// perfect balancing over `node_count` nodes.
    pub utilization_per_node: f64,
}

/// Computes [`AppStats`] for an application.
///
/// # Examples
///
/// ```
/// use ftes_model::{samples, stats};
///
/// let (app, _) = samples::fig3();
/// let s = stats::app_stats(&app);
/// assert_eq!(s.processes, 5);
/// assert!(s.critical_path <= s.serial_load);
/// ```
pub fn app_stats(app: &Application) -> AppStats {
    let n = app.process_count();
    let min_wcet = |pid: crate::ProcessId| {
        let p = app.process(pid);
        p.candidate_nodes()
            .filter_map(|c| p.wcet_on(c))
            .min()
            .expect("validated processes have a feasible node")
    };
    // Longest path by duration and by hop count, over the topological order.
    let mut path_time = vec![Time::ZERO; n];
    let mut path_hops = vec![0usize; n];
    let mut critical = Time::ZERO;
    let mut depth = 0usize;
    for &pid in app.topological_order() {
        let mut best_t = Time::ZERO;
        let mut best_h = 0usize;
        for &(pred, mid) in app.predecessors(pid) {
            let t = path_time[pred.index()] + app.message(mid).transmission();
            if t > best_t {
                best_t = t;
            }
            best_h = best_h.max(path_hops[pred.index()]);
        }
        path_time[pid.index()] = best_t + min_wcet(pid);
        path_hops[pid.index()] = best_h + 1;
        critical = critical.max(path_time[pid.index()]);
        depth = depth.max(path_hops[pid.index()]);
    }
    let serial_load: Time = (0..n).map(|i| min_wcet(crate::ProcessId::new(i))).sum();
    let parallelism =
        if critical > Time::ZERO { serial_load.as_f64() / critical.as_f64() } else { 1.0 };
    let utilization_per_node = if app.deadline() > Time::ZERO {
        serial_load.as_f64() / (app.deadline().as_f64() * app.node_count() as f64)
    } else {
        f64::INFINITY
    };
    AppStats {
        processes: n,
        messages: app.message_count(),
        depth,
        critical_path: critical,
        serial_load,
        parallelism,
        utilization_per_node,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{samples, ApplicationBuilder, ProcessSpec};

    #[test]
    fn fig3_statistics() {
        let (app, _) = samples::fig3();
        let s = app_stats(&app);
        assert_eq!(s.processes, 5);
        assert_eq!(s.messages, 4);
        // Longest chain: P1 -> P2 -> P4 (or P1 -> P3 -> P5): 3 hops.
        assert_eq!(s.depth, 3);
        // Critical path: P1(20) + m(5) + P3(60) + m(5) + P5(40) = 130.
        assert_eq!(s.critical_path, Time::new(130));
        assert_eq!(s.serial_load, Time::new(200));
        assert!((s.parallelism - 200.0 / 130.0).abs() < 1e-9);
        assert!(s.utilization_per_node > 0.0);
    }

    #[test]
    fn chain_has_parallelism_one() {
        let mut b = ApplicationBuilder::new(1);
        let p0 = b.add_process(ProcessSpec::uniform("a", Time::new(10), 1));
        let p1 = b.add_process(ProcessSpec::uniform("b", Time::new(10), 1));
        b.add_message("m", p0, p1, Time::ZERO).unwrap();
        let app = b.deadline(Time::new(100)).build().unwrap();
        let s = app_stats(&app);
        assert_eq!(s.depth, 2);
        assert!((s.parallelism - 1.0).abs() < 1e-9);
    }

    #[test]
    fn independent_processes_have_depth_one() {
        let mut b = ApplicationBuilder::new(1);
        for i in 0..4 {
            b.add_process(ProcessSpec::uniform(format!("p{i}"), Time::new(10), 1));
        }
        let app = b.deadline(Time::new(100)).build().unwrap();
        let s = app_stats(&app);
        assert_eq!(s.depth, 1);
        assert!((s.parallelism - 4.0).abs() < 1e-9);
    }
}
