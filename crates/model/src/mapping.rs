//! Process-to-node mappings (`M: V → N`, paper §4, §6).

use crate::{Application, Architecture, ModelError, NodeId, ProcessId, Time};

/// A complete mapping of every application process to a computation node.
///
/// Invariants enforced by [`Mapping::new`]:
/// * every process is assigned,
/// * every assignment targets an existing node,
/// * every assignment is feasible (the process has a WCET on that node),
/// * designer-fixed processes sit on their fixed node.
///
/// # Examples
///
/// ```
/// use ftes_model::{samples, Mapping, NodeId};
///
/// # fn main() -> Result<(), ftes_model::ModelError> {
/// let (app, arch) = samples::fig3();
/// // Map everything on N0 except P2 which also runs on N1.
/// let mapping = Mapping::new(
///     &app,
///     &arch,
///     vec![NodeId::new(0), NodeId::new(1), NodeId::new(0), NodeId::new(0), NodeId::new(0)],
/// )?;
/// assert_eq!(mapping.node_of(ftes_model::ProcessId::new(1)), NodeId::new(1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Mapping {
    assign: Vec<NodeId>,
}

impl Mapping {
    /// Validates and wraps an assignment vector indexed by process id.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::IncompleteMapping`],
    /// [`ModelError::UnknownNode`], [`ModelError::InfeasibleMapping`] or
    /// [`ModelError::InfeasibleFixedMapping`] when the invariants above are
    /// violated.
    pub fn new(
        app: &Application,
        arch: &Architecture,
        assign: Vec<NodeId>,
    ) -> Result<Self, ModelError> {
        if assign.len() != app.process_count() {
            let missing = ProcessId::new(assign.len().min(app.process_count()));
            return Err(ModelError::IncompleteMapping(missing));
        }
        for (i, &node) in assign.iter().enumerate() {
            let pid = ProcessId::new(i);
            if node.index() >= arch.node_count() {
                return Err(ModelError::UnknownNode(node));
            }
            let proc = app.process(pid);
            if proc.wcet_on(node).is_none() {
                return Err(ModelError::InfeasibleMapping(pid, node));
            }
            if let Some(fixed) = proc.fixed_node() {
                if fixed != node {
                    return Err(ModelError::InfeasibleFixedMapping(pid, node));
                }
            }
        }
        Ok(Mapping { assign })
    }

    /// Builds the mapping that places every process on its cheapest feasible
    /// node (ignoring contention); useful as a deterministic starting point.
    pub fn cheapest(app: &Application, arch: &Architecture) -> Result<Self, ModelError> {
        let assign = app
            .processes()
            .map(|(_, p)| {
                p.fixed_node().unwrap_or_else(|| {
                    p.candidate_nodes()
                        .min_by_key(|&n| p.wcet_on(n).expect("candidate node has wcet"))
                        .expect("validated application has a feasible node")
                })
            })
            .collect();
        Mapping::new(app, arch, assign)
    }

    /// The node `M(Pi)` executing process `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn node_of(&self, p: ProcessId) -> NodeId {
        self.assign[p.index()]
    }

    /// WCET of `p` under this mapping.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range for `app` (a validated mapping always
    /// has a WCET on the assigned node).
    pub fn wcet_of(&self, app: &Application, p: ProcessId) -> Time {
        app.process(p).wcet_on(self.node_of(p)).expect("mapping invariant: wcet exists")
    }

    /// Returns `true` if `m`'s sender and receiver share a node (the message
    /// then never reaches the bus, §4).
    pub fn is_message_internal(&self, app: &Application, m: crate::MessageId) -> bool {
        let msg = app.message(m);
        self.node_of(msg.src()) == self.node_of(msg.dst())
    }

    /// Replaces the node of one process, returning a new mapping.
    ///
    /// # Errors
    ///
    /// Same as [`Mapping::new`] for the modified assignment.
    pub fn with_move(
        &self,
        app: &Application,
        arch: &Architecture,
        p: ProcessId,
        node: NodeId,
    ) -> Result<Self, ModelError> {
        let mut assign = self.assign.clone();
        if p.index() >= assign.len() {
            return Err(ModelError::UnknownProcess(p));
        }
        assign[p.index()] = node;
        Mapping::new(app, arch, assign)
    }

    /// Iterator over `(ProcessId, NodeId)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, NodeId)> + '_ {
        self.assign.iter().enumerate().map(|(i, &n)| (ProcessId::new(i), n))
    }

    /// Total WCET placed on each node (load vector).
    pub fn load(&self, app: &Application, node_count: usize) -> Vec<Time> {
        let mut load = vec![Time::ZERO; node_count];
        for (p, n) in self.iter() {
            load[n.index()] += self.wcet_of(app, p);
        }
        load
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ApplicationBuilder, ProcessSpec};

    fn app_and_arch() -> (Application, Architecture) {
        let mut b = ApplicationBuilder::new(2);
        b.add_process(ProcessSpec::new("P0", [Some(Time::new(20)), Some(Time::new(30))]));
        b.add_process(ProcessSpec::new("P1", [Some(Time::new(40)), None]));
        let app = b.deadline(Time::new(100)).build().unwrap();
        (app, Architecture::homogeneous(2).unwrap())
    }

    #[test]
    fn cheapest_picks_minimum_wcet() {
        let (app, arch) = app_and_arch();
        let m = Mapping::cheapest(&app, &arch).unwrap();
        assert_eq!(m.node_of(ProcessId::new(0)), NodeId::new(0));
        assert_eq!(m.node_of(ProcessId::new(1)), NodeId::new(0));
        assert_eq!(m.wcet_of(&app, ProcessId::new(0)), Time::new(20));
    }

    #[test]
    fn rejects_infeasible_assignment() {
        let (app, arch) = app_and_arch();
        let err = Mapping::new(&app, &arch, vec![NodeId::new(0), NodeId::new(1)]).unwrap_err();
        assert_eq!(err, ModelError::InfeasibleMapping(ProcessId::new(1), NodeId::new(1)));
    }

    #[test]
    fn rejects_incomplete_and_unknown_node() {
        let (app, arch) = app_and_arch();
        assert!(matches!(
            Mapping::new(&app, &arch, vec![NodeId::new(0)]),
            Err(ModelError::IncompleteMapping(_))
        ));
        assert_eq!(
            Mapping::new(&app, &arch, vec![NodeId::new(0), NodeId::new(7)]).unwrap_err(),
            ModelError::UnknownNode(NodeId::new(7))
        );
    }

    #[test]
    fn respects_fixed_node() {
        let mut b = ApplicationBuilder::new(2);
        b.add_process(
            ProcessSpec::new("P0", [Some(Time::new(20)), Some(Time::new(30))])
                .fixed_node(NodeId::new(1)),
        );
        let app = b.deadline(Time::new(100)).build().unwrap();
        let arch = Architecture::homogeneous(2).unwrap();
        // cheapest() must keep the fixed node even though N0 is cheaper.
        let m = Mapping::cheapest(&app, &arch).unwrap();
        assert_eq!(m.node_of(ProcessId::new(0)), NodeId::new(1));
        // Explicit violation is rejected.
        assert!(matches!(
            Mapping::new(&app, &arch, vec![NodeId::new(0)]),
            Err(ModelError::InfeasibleFixedMapping(..))
        ));
    }

    #[test]
    fn with_move_and_load() {
        let (app, arch) = app_and_arch();
        let m = Mapping::cheapest(&app, &arch).unwrap();
        let m2 = m.with_move(&app, &arch, ProcessId::new(0), NodeId::new(1)).unwrap();
        assert_eq!(m2.node_of(ProcessId::new(0)), NodeId::new(1));
        let load = m2.load(&app, 2);
        assert_eq!(load, vec![Time::new(40), Time::new(30)]);
    }

    #[test]
    fn internal_message_detection() {
        let mut b = ApplicationBuilder::new(2);
        let p0 = b.add_process(ProcessSpec::uniform("P0", Time::new(5), 2));
        let p1 = b.add_process(ProcessSpec::uniform("P1", Time::new(5), 2));
        let m0 = b.add_message("m0", p0, p1, Time::new(2)).unwrap();
        let app = b.deadline(Time::new(50)).build().unwrap();
        let arch = Architecture::homogeneous(2).unwrap();
        let same = Mapping::new(&app, &arch, vec![NodeId::new(0), NodeId::new(0)]).unwrap();
        let cross = Mapping::new(&app, &arch, vec![NodeId::new(0), NodeId::new(1)]).unwrap();
        assert!(same.is_message_internal(&app, m0));
        assert!(!cross.is_message_internal(&app, m0));
    }
}
