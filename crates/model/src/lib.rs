//! # ftes-model
//!
//! System model for the DATE 2008 paper *"Synthesis of Fault-Tolerant
//! Embedded Systems"* (Eles, Izosimov, Pop, Peng): applications as acyclic
//! process graphs with per-node WCETs and fault-tolerance overheads,
//! distributed architectures, the k-transient-fault model, transparency
//! requirements and process-to-node mappings.
//!
//! This crate is the shared vocabulary of the whole workspace — every other
//! crate (`ftes-ft`, `ftes-ftcpg`, `ftes-sched`, `ftes-opt`, …) builds on
//! these types.
//!
//! ## Quick example
//!
//! ```
//! use ftes_model::{ApplicationBuilder, Architecture, Mapping, ProcessSpec, Time};
//!
//! # fn main() -> Result<(), ftes_model::ModelError> {
//! let mut b = ApplicationBuilder::new(2);
//! let src = b.add_process(
//!     ProcessSpec::new("sense", [Some(Time::new(20)), Some(Time::new(30))])
//!         .overheads(Time::new(2), Time::new(2), Time::new(1)),
//! );
//! let dst = b.add_process(ProcessSpec::new("act", [Some(Time::new(40)), None]));
//! b.add_message("m", src, dst, Time::new(5))?;
//! let app = b.deadline(Time::new(200)).build()?;
//!
//! let arch = Architecture::homogeneous(2)?;
//! let mapping = Mapping::cheapest(&app, &arch)?;
//! assert_eq!(mapping.wcet_of(&app, src), Time::new(20));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod app;
mod arch;
pub mod dot;
mod error;
mod fault;
mod ids;
pub mod json;
mod mapping;
mod merge;
pub mod samples;
pub mod stats;
mod time;
mod transparency;

pub use app::{Application, ApplicationBuilder, Message, Process, ProcessSpec};
pub use arch::{Architecture, Node};
pub use error::ModelError;
pub use fault::FaultModel;
pub use ids::{MessageId, NodeId, ProcessId};
pub use mapping::Mapping;
pub use merge::merge_applications;
pub use time::{lcm, Time};
pub use transparency::Transparency;
