//! Merging of multiple periodic applications into the virtual hyper-period
//! application (paper §4).
//!
//! Each application `Ak` with period `Tk` is unrolled `T / Tk` times, where
//! `T = lcm(T1, …, Tn)`. Instance `j` of `Ak` is released at `j·Tk` and must
//! complete by `j·Tk + Dk` (expressed as a local deadline on its sinks and a
//! release time on its sources).

use crate::{lcm, Application, ApplicationBuilder, ModelError, ProcessId, ProcessSpec, Time};

/// Merges periodic applications into one virtual application with period
/// `T = lcm` of all periods (paper §4).
///
/// Process and message names are suffixed with `#j` for instance `j` (the
/// suffix is omitted for applications with a single instance).
///
/// # Errors
///
/// Returns [`ModelError::EmptyApplication`] when `apps` is empty, or any
/// validation error of the merged graph (e.g. mismatched node counts are
/// reported as [`ModelError::WcetArityMismatch`]).
///
/// # Examples
///
/// ```
/// use ftes_model::{merge_applications, ApplicationBuilder, ProcessSpec, Time};
///
/// # fn main() -> Result<(), ftes_model::ModelError> {
/// let mut b = ApplicationBuilder::new(1);
/// b.add_process(ProcessSpec::uniform("P0", Time::new(10), 1));
/// let fast = b.deadline(Time::new(40)).period(Time::new(40)).build()?;
///
/// let mut b = ApplicationBuilder::new(1);
/// b.add_process(ProcessSpec::uniform("Q0", Time::new(10), 1));
/// let slow = b.deadline(Time::new(80)).period(Time::new(80)).build()?;
///
/// let merged = merge_applications(&[fast, slow])?;
/// assert_eq!(merged.period(), Time::new(80));
/// assert_eq!(merged.process_count(), 3); // 2 fast instances + 1 slow
/// # Ok(())
/// # }
/// ```
pub fn merge_applications(apps: &[Application]) -> Result<Application, ModelError> {
    let first = apps.first().ok_or(ModelError::EmptyApplication)?;
    let node_count = first.node_count();
    let hyper = apps.iter().skip(1).fold(first.period(), |acc, a| lcm(acc, a.period()));

    let mut builder = ApplicationBuilder::new(node_count);
    for app in apps {
        let instances = hyper.units() / app.period().units();
        for j in 0..instances {
            let offset = app.period() * j;
            let suffix = |name: &str| {
                if instances == 1 {
                    name.to_string()
                } else {
                    format!("{name}#{j}")
                }
            };
            let mut local_ids: Vec<ProcessId> = Vec::with_capacity(app.process_count());
            for (_, p) in app.processes() {
                let wcet: Vec<Option<Time>> =
                    (0..node_count).map(|n| p.wcet_on(crate::NodeId::new(n))).collect();
                let mut spec = ProcessSpec::new(suffix(p.name()), wcet)
                    .overheads(p.alpha(), p.mu(), p.chi())
                    .release(p.release() + offset);
                // Every instance must finish within its own period window; a
                // designer-imposed local deadline tightens that further.
                let window_end = offset + app.deadline();
                let local = match p.local_deadline() {
                    Some(d) => (offset + d).min(window_end),
                    None => window_end,
                };
                spec = spec.local_deadline(local);
                if let Some(n) = p.fixed_node() {
                    spec = spec.fixed_node(n);
                }
                local_ids.push(builder.add_process(spec));
            }
            for (_, m) in app.messages() {
                builder.add_message(
                    suffix(m.name()),
                    local_ids[m.src().index()],
                    local_ids[m.dst().index()],
                    m.transmission(),
                )?;
            }
        }
    }
    builder.deadline(hyper).period(hyper).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    fn periodic(name: &str, wcet: i64, period: i64) -> Application {
        let mut b = ApplicationBuilder::new(1);
        let p0 = b.add_process(ProcessSpec::uniform(format!("{name}0"), Time::new(wcet), 1));
        let p1 = b.add_process(ProcessSpec::uniform(format!("{name}1"), Time::new(wcet), 1));
        b.add_message(format!("{name}m"), p0, p1, Time::new(1)).unwrap();
        b.deadline(Time::new(period)).period(Time::new(period)).build().unwrap()
    }

    #[test]
    fn unrolls_to_hyperperiod() {
        let a = periodic("a", 5, 20);
        let b = periodic("b", 5, 30);
        let merged = merge_applications(&[a, b]).unwrap();
        assert_eq!(merged.period(), Time::new(60));
        // a unrolled 3x (2 procs each), b unrolled 2x.
        assert_eq!(merged.process_count(), 3 * 2 + 2 * 2);
        assert_eq!(merged.message_count(), 3 + 2);
    }

    #[test]
    fn instances_get_release_offsets_and_window_deadlines() {
        let a = periodic("a", 5, 20);
        let merged = merge_applications(&[a, periodic("b", 5, 40)]).unwrap();
        // Instance #1 of `a` is released at t=20 and must finish by t=40.
        let inst1_src = merged
            .processes()
            .find(|(_, p)| p.name() == "a0#1")
            .map(|(id, _)| id)
            .expect("instance name present");
        assert_eq!(merged.process(inst1_src).release(), Time::new(20));
        assert_eq!(merged.process(inst1_src).local_deadline(), Some(Time::new(40)));
    }

    #[test]
    fn single_instance_keeps_plain_names() {
        let a = periodic("a", 5, 20);
        let merged = merge_applications(std::slice::from_ref(&a)).unwrap();
        assert!(merged.processes().any(|(_, p)| p.name() == "a0"));
        assert_eq!(merged.process_count(), a.process_count());
    }

    #[test]
    fn empty_input_is_rejected() {
        assert_eq!(merge_applications(&[]).unwrap_err(), ModelError::EmptyApplication);
    }

    #[test]
    fn preserves_overheads_and_fixed_nodes() {
        let mut b = ApplicationBuilder::new(2);
        b.add_process(
            ProcessSpec::new("P0", [Some(Time::new(10)), Some(Time::new(12))])
                .overheads(Time::new(1), Time::new(2), Time::new(3))
                .fixed_node(NodeId::new(1)),
        );
        let app = b.deadline(Time::new(50)).build().unwrap();
        let merged = merge_applications(&[app]).unwrap();
        let (_, p) = merged.processes().next().unwrap();
        assert_eq!((p.alpha(), p.mu(), p.chi()), (Time::new(1), Time::new(2), Time::new(3)));
        assert_eq!(p.fixed_node(), Some(NodeId::new(1)));
    }
}
