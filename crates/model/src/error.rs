//! Error types reported by model construction and validation.

use crate::{MessageId, NodeId, ProcessId};
use std::error::Error;
use std::fmt;

/// Error produced when an application, architecture or mapping fails
/// validation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// The application graph contains no processes.
    EmptyApplication,
    /// The application graph contains a dependency cycle involving the given
    /// process (the paper requires acyclic directed graphs, §4).
    CyclicGraph(ProcessId),
    /// A message references a process id that does not exist.
    UnknownProcess(ProcessId),
    /// A message connects a process to itself.
    SelfMessage(ProcessId),
    /// Two messages connect the same ordered pair of processes.
    DuplicateEdge(ProcessId, ProcessId),
    /// A process has no node it can execute on (all WCET entries are `X`).
    NoFeasibleNode(ProcessId),
    /// A process is pre-assigned (by the designer) to a node on which it has
    /// no WCET entry.
    InfeasibleFixedMapping(ProcessId, NodeId),
    /// A WCET, overhead or transmission time is negative or a WCET is zero.
    NonPositiveDuration(&'static str),
    /// The global deadline or a local deadline is not strictly positive.
    BadDeadline,
    /// The period is not strictly positive or is smaller than the deadline.
    BadPeriod,
    /// A WCET table row has the wrong number of node columns.
    WcetArityMismatch {
        /// Offending process.
        process: ProcessId,
        /// Number of entries supplied.
        got: usize,
        /// Number of architecture nodes expected.
        expected: usize,
    },
    /// A mapping assigns a process to a node where it cannot execute.
    InfeasibleMapping(ProcessId, NodeId),
    /// A mapping does not cover every process.
    IncompleteMapping(ProcessId),
    /// A mapping references a node outside the architecture.
    UnknownNode(NodeId),
    /// A transparency declaration references an unknown message.
    UnknownMessage(MessageId),
    /// The architecture has no computation nodes.
    EmptyArchitecture,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::EmptyApplication => write!(f, "application has no processes"),
            ModelError::CyclicGraph(p) => {
                write!(f, "application graph has a cycle through {p}")
            }
            ModelError::UnknownProcess(p) => write!(f, "message references unknown process {p}"),
            ModelError::SelfMessage(p) => write!(f, "message from {p} to itself"),
            ModelError::DuplicateEdge(a, b) => {
                write!(f, "duplicate message between {a} and {b}")
            }
            ModelError::NoFeasibleNode(p) => {
                write!(f, "{p} has no computation node it can execute on")
            }
            ModelError::InfeasibleFixedMapping(p, n) => {
                write!(f, "{p} is pre-assigned to {n} where it has no WCET")
            }
            ModelError::NonPositiveDuration(what) => {
                write!(f, "{what} must be a positive duration")
            }
            ModelError::BadDeadline => write!(f, "deadline must be strictly positive"),
            ModelError::BadPeriod => {
                write!(f, "period must be strictly positive and no smaller than the deadline")
            }
            ModelError::WcetArityMismatch { process, got, expected } => write!(
                f,
                "WCET row of {process} has {got} entries but the architecture has {expected} nodes"
            ),
            ModelError::InfeasibleMapping(p, n) => {
                write!(f, "mapping places {p} on {n} where it has no WCET")
            }
            ModelError::IncompleteMapping(p) => write!(f, "mapping does not assign {p}"),
            ModelError::UnknownNode(n) => write!(f, "mapping references unknown node {n}"),
            ModelError::UnknownMessage(m) => {
                write!(f, "transparency declaration references unknown message {m}")
            }
            ModelError::EmptyArchitecture => write!(f, "architecture has no computation nodes"),
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_unpunctuated() {
        let samples = [
            ModelError::EmptyApplication,
            ModelError::CyclicGraph(ProcessId::new(2)),
            ModelError::BadDeadline,
            ModelError::InfeasibleMapping(ProcessId::new(0), NodeId::new(1)),
        ];
        for e in samples {
            let s = e.to_string();
            assert!(!s.ends_with('.'), "no trailing punctuation: {s}");
            assert!(s.chars().next().unwrap().is_lowercase(), "lowercase start: {s}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<ModelError>();
    }
}
