//! Dependency-free JSON emission with correct string escaping.
//!
//! The workspace hand-rolls its machine-readable output (no crates.io
//! access), and until now every emitter leaned on a "labels are `[a-z0-9_]`
//! by convention" assumption instead of escaping. This module replaces that
//! convention with an actual escape function and a small streaming
//! [`JsonWriter`] shared by `ftes-explore`'s suite reports and the
//! `ftes-serve` HTTP service, whose responses embed arbitrary user-supplied
//! process names and error messages.
//!
//! The writer emits compact JSON (no insignificant whitespace) so equal
//! data renders to byte-identical documents — the property the service's
//! result cache and determinism tests rely on. Floating-point values are
//! written with an explicit fixed number of decimals for the same reason.
//!
//! ```
//! use ftes_model::json::JsonWriter;
//!
//! let mut w = JsonWriter::new();
//! w.begin_object();
//! w.key("name");
//! w.string("P1 \"primary\"");
//! w.key("wcet");
//! w.number_i64(30);
//! w.end_object();
//! assert_eq!(w.finish(), r#"{"name":"P1 \"primary\"","wcet":30}"#);
//! ```

use std::fmt::Write as _;

/// Appends `s` to `out` with JSON string escaping (quotes, backslashes,
/// control characters; everything else passes through verbatim, UTF-8 is
/// preserved).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Returns `s` escaped for inclusion inside a JSON string literal (without
/// the surrounding quotes).
pub fn escaped(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    escape_into(&mut out, s);
    out
}

/// One open container on the writer's stack.
#[derive(Debug, Clone, Copy)]
struct Frame {
    is_object: bool,
    items: usize,
    key_pending: bool,
}

/// A streaming writer for compact JSON documents.
///
/// Commas and `key:value` separators are inserted automatically; misuse
/// (a value in an object position without a [`key`](JsonWriter::key), or
/// unbalanced `begin`/`end` calls) panics — emitters are internal, so a
/// malformed document is a programming error, not an input error.
#[derive(Debug, Default)]
pub struct JsonWriter {
    buf: String,
    stack: Vec<Frame>,
}

impl JsonWriter {
    /// An empty writer.
    pub fn new() -> Self {
        JsonWriter::default()
    }

    /// Bookkeeping common to every value position: comma separation inside
    /// arrays, key consumption inside objects.
    fn before_value(&mut self) {
        let mut needs_comma = false;
        if let Some(frame) = self.stack.last_mut() {
            if frame.is_object {
                assert!(frame.key_pending, "object member written without a key");
                frame.key_pending = false;
            } else {
                needs_comma = frame.items > 0;
                frame.items += 1;
            }
        }
        if needs_comma {
            self.buf.push(',');
        }
    }

    /// Writes an object member key (must be inside an object).
    pub fn key(&mut self, key: &str) {
        let frame = self.stack.last_mut().expect("key outside any container");
        assert!(frame.is_object, "key inside an array");
        assert!(!frame.key_pending, "two keys in a row");
        let needs_comma = frame.items > 0;
        frame.items += 1;
        frame.key_pending = true;
        if needs_comma {
            self.buf.push(',');
        }
        self.buf.push('"');
        escape_into(&mut self.buf, key);
        self.buf.push_str("\":");
    }

    /// Opens an object (`{`).
    pub fn begin_object(&mut self) {
        self.before_value();
        self.stack.push(Frame { is_object: true, items: 0, key_pending: false });
        self.buf.push('{');
    }

    /// Closes the innermost object (`}`).
    pub fn end_object(&mut self) {
        let frame = self.stack.pop().expect("end_object without begin_object");
        assert!(frame.is_object && !frame.key_pending, "unbalanced object");
        self.buf.push('}');
    }

    /// Opens an array (`[`).
    pub fn begin_array(&mut self) {
        self.before_value();
        self.stack.push(Frame { is_object: false, items: 0, key_pending: false });
        self.buf.push('[');
    }

    /// Closes the innermost array (`]`).
    pub fn end_array(&mut self) {
        let frame = self.stack.pop().expect("end_array without begin_array");
        assert!(!frame.is_object, "unbalanced array");
        self.buf.push(']');
    }

    /// Writes an escaped string value.
    pub fn string(&mut self, value: &str) {
        self.before_value();
        self.buf.push('"');
        escape_into(&mut self.buf, value);
        self.buf.push('"');
    }

    /// Writes a signed integer value.
    pub fn number_i64(&mut self, value: i64) {
        self.before_value();
        let _ = write!(self.buf, "{value}");
    }

    /// Writes an unsigned integer value.
    pub fn number_u64(&mut self, value: u64) {
        self.before_value();
        let _ = write!(self.buf, "{value}");
    }

    /// Writes a usize value.
    pub fn number_usize(&mut self, value: usize) {
        self.before_value();
        let _ = write!(self.buf, "{value}");
    }

    /// Writes a float with a fixed number of decimals (deterministic,
    /// locale-independent rendering; NaN/infinities become `null`, which
    /// plain `{:.n}` formatting would render as invalid JSON).
    pub fn number_f64(&mut self, value: f64, decimals: usize) {
        self.before_value();
        if value.is_finite() {
            let _ = write!(self.buf, "{value:.decimals$}");
        } else {
            self.buf.push_str("null");
        }
    }

    /// Writes a boolean value.
    pub fn bool(&mut self, value: bool) {
        self.before_value();
        self.buf.push_str(if value { "true" } else { "false" });
    }

    /// Writes a JSON `null`.
    pub fn null(&mut self) {
        self.before_value();
        self.buf.push_str("null");
    }

    /// Writes a pre-rendered JSON fragment verbatim (caller guarantees it
    /// is itself valid JSON — used to splice cached sub-documents).
    pub fn raw(&mut self, fragment: &str) {
        self.before_value();
        self.buf.push_str(fragment);
    }

    /// Finishes the document and returns it.
    ///
    /// # Panics
    ///
    /// Panics if containers are still open.
    pub fn finish(self) -> String {
        assert!(self.stack.is_empty(), "unclosed containers at finish");
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_backslashes_and_controls() {
        assert_eq!(escaped("plain_label"), "plain_label");
        assert_eq!(escaped(r#"a"b"#), r#"a\"b"#);
        assert_eq!(escaped(r"a\b"), r"a\\b");
        assert_eq!(escaped("a\nb\tc\r"), r"a\nb\tc\r");
        assert_eq!(escaped("\u{08}\u{0C}"), r"\b\f");
        assert_eq!(escaped("\u{01}"), "\\u0001");
        assert_eq!(escaped("héllo ⏱"), "héllo ⏱");
    }

    #[test]
    fn writer_builds_nested_documents() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("points");
        w.begin_array();
        for i in 0..2 {
            w.begin_object();
            w.key("i");
            w.number_usize(i);
            w.key("ok");
            w.bool(i == 0);
            w.end_object();
        }
        w.end_array();
        w.key("rate");
        w.number_f64(0.5, 4);
        w.key("none");
        w.null();
        w.end_object();
        assert_eq!(
            w.finish(),
            r#"{"points":[{"i":0,"ok":true},{"i":1,"ok":false}],"rate":0.5000,"none":null}"#
        );
    }

    #[test]
    fn top_level_scalars_and_raw_fragments() {
        let mut w = JsonWriter::new();
        w.string("just a string");
        assert_eq!(w.finish(), r#""just a string""#);

        let mut w = JsonWriter::new();
        w.begin_array();
        w.raw("{\"cached\":1}");
        w.number_i64(-3);
        w.end_array();
        assert_eq!(w.finish(), r#"[{"cached":1},-3]"#);
    }

    #[test]
    fn non_finite_floats_render_as_null() {
        let mut w = JsonWriter::new();
        w.begin_array();
        w.number_f64(f64::NAN, 2);
        w.number_f64(f64::INFINITY, 2);
        w.number_f64(1.0 / 3.0, 2);
        w.end_array();
        assert_eq!(w.finish(), "[null,null,0.33]");
    }

    #[test]
    #[should_panic(expected = "without a key")]
    fn object_value_without_key_panics() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.number_i64(1);
    }

    #[test]
    #[should_panic(expected = "unclosed")]
    fn unclosed_container_panics_at_finish() {
        let mut w = JsonWriter::new();
        w.begin_object();
        let _ = w.finish();
    }
}
