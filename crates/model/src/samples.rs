//! The worked examples from the paper, reused across tests, examples and
//! documentation.

use crate::{Application, ApplicationBuilder, Architecture, ProcessSpec, Time, Transparency};

/// The simple application and two-node architecture of **Fig. 3**.
///
/// Five processes `P1..P5` (ids `P0..P4` here, zero-based), WCET table:
///
/// | process | N1 | N2 |
/// |---------|----|----|
/// | P1      | 20 | 30 |
/// | P2      | 40 | 60 |
/// | P3      | 60 | X  |
/// | P4      | 40 | 60 |
/// | P5      | 40 | 60 |
///
/// Edges follow Fig. 3a: `P1 → P2`, `P1 → P3`, `P2 → P4`, `P3 → P5`.
/// Overheads default to `α = 10, µ = 10, χ = 5` (the values used in the
/// paper's Fig. 1 running example); the deadline is set loosely to 400.
///
/// # Examples
///
/// ```
/// use ftes_model::samples;
///
/// let (app, arch) = samples::fig3();
/// assert_eq!(app.process_count(), 5);
/// assert_eq!(arch.node_count(), 2);
/// ```
pub fn fig3() -> (Application, Architecture) {
    let t = |v: i64| Some(Time::new(v));
    let mut b = ApplicationBuilder::new(2);
    let oh = |s: ProcessSpec| s.overheads(Time::new(10), Time::new(10), Time::new(5));
    let p1 = b.add_process(oh(ProcessSpec::new("P1", [t(20), t(30)])));
    let p2 = b.add_process(oh(ProcessSpec::new("P2", [t(40), t(60)])));
    let p3 = b.add_process(oh(ProcessSpec::new("P3", [t(60), None])));
    let p4 = b.add_process(oh(ProcessSpec::new("P4", [t(40), t(60)])));
    let p5 = b.add_process(oh(ProcessSpec::new("P5", [t(40), t(60)])));
    b.add_message("m1", p1, p2, Time::new(5)).expect("valid edge");
    b.add_message("m2", p1, p3, Time::new(5)).expect("valid edge");
    b.add_message("m3", p2, p4, Time::new(5)).expect("valid edge");
    b.add_message("m4", p3, p5, Time::new(5)).expect("valid edge");
    let app = b.deadline(Time::new(400)).build().expect("fig3 sample is valid");
    let arch = Architecture::new(["N1", "N2"]).expect("two nodes");
    (app, arch)
}

/// The four-process application of **Fig. 5a** with its transparency
/// requirements, reconstructed to match the schedule tables of Fig. 6.
///
/// Graph: `P1 → P2` (message `m0`, internal once both sit on `N1`),
/// `P1 → P4` via `m1`, `P1 → P3` via `m2`, `P2 → P3` via `m3`.
/// Frozen: process `P3` and messages `m2`, `m3` (the rectangles of
/// Fig. 5a). `k = 2` faults are assumed in the paper's walk-through.
///
/// This reading reproduces the guard structure of Fig. 6: `P2`'s columns
/// depend on `P1`'s fault conditions (internal edge), `P4`'s columns on
/// `P1` and `P4` (bus message `m1`), while `P3`'s activation times depend
/// only on its own conditions (its inputs `m2`/`m3` are frozen).
///
/// WCETs: P1 = 30, P2 = 25, P3 = 25, P4 = 30; transmissions 1;
/// `α = 5, µ = 5, χ = 5`.
///
/// # Examples
///
/// ```
/// use ftes_model::samples;
///
/// let (app, arch, transparency) = samples::fig5();
/// assert_eq!(app.process_count(), 4);
/// assert!(transparency.is_process_frozen(ftes_model::ProcessId::new(2)));
/// ```
pub fn fig5() -> (Application, Architecture, Transparency) {
    let mut b = ApplicationBuilder::new(2);
    let oh = |s: ProcessSpec| s.overheads(Time::new(5), Time::new(5), Time::new(5));
    let p1 = b.add_process(oh(ProcessSpec::uniform("P1", Time::new(30), 2)));
    let p2 = b.add_process(oh(ProcessSpec::uniform("P2", Time::new(25), 2)));
    let p3 = b.add_process(oh(ProcessSpec::uniform("P3", Time::new(25), 2)));
    let p4 = b.add_process(oh(ProcessSpec::uniform("P4", Time::new(30), 2)));
    b.add_message("m0", p1, p2, Time::new(1)).expect("valid edge");
    b.add_message("m1", p1, p4, Time::new(1)).expect("valid edge");
    let m2 = b.add_message("m2", p1, p3, Time::new(1)).expect("valid edge");
    let m3 = b.add_message("m3", p2, p3, Time::new(1)).expect("valid edge");
    let app = b.deadline(Time::new(400)).build().expect("fig5 sample is valid");
    let arch = Architecture::new(["N1", "N2"]).expect("two nodes");
    let mut t = Transparency::none();
    t.freeze_process(p3).freeze_message(m2).freeze_message(m3);
    (app, arch, t)
}

/// The canonical mapping used by the Fig. 6 schedule tables: `P1`, `P2` on
/// `N1`; `P3`, `P4` on `N2`.
pub fn fig5_mapping() -> Vec<crate::NodeId> {
    use crate::NodeId;
    vec![NodeId::new(0), NodeId::new(0), NodeId::new(1), NodeId::new(1)]
}

/// The single-process example of **Fig. 1 / Fig. 2 / Fig. 4**: `P1` with
/// `C1 = 60`, `α = 10, µ = 10, χ = 5`, on an architecture of `node_count`
/// identical nodes.
pub fn fig1_process(node_count: usize) -> (Application, Architecture) {
    let mut b = ApplicationBuilder::new(node_count);
    b.add_process(ProcessSpec::uniform("P1", Time::new(60), node_count).overheads(
        Time::new(10),
        Time::new(10),
        Time::new(5),
    ));
    let app = b.deadline(Time::new(1000)).build().expect("fig1 sample is valid");
    let arch = Architecture::homogeneous(node_count).expect("nonzero node count");
    (app, arch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NodeId, ProcessId};

    #[test]
    fn fig3_matches_paper_table() {
        let (app, arch) = fig3();
        assert_eq!(arch.node_count(), 2);
        let n1 = NodeId::new(0);
        let n2 = NodeId::new(1);
        assert_eq!(app.process(ProcessId::new(0)).wcet_on(n1), Some(Time::new(20)));
        assert_eq!(app.process(ProcessId::new(0)).wcet_on(n2), Some(Time::new(30)));
        assert_eq!(app.process(ProcessId::new(2)).wcet_on(n2), None, "P3 cannot map on N2");
        assert_eq!(app.message_count(), 4);
    }

    #[test]
    fn fig5_transparency_matches_paper() {
        let (app, _, t) = fig5();
        // Frozen: P3 (id 2), m2 (id 2), m3 (id 3).
        assert!(t.is_process_frozen(ProcessId::new(2)));
        assert!(t.is_message_frozen(crate::MessageId::new(2)));
        assert!(t.is_message_frozen(crate::MessageId::new(3)));
        assert!(!t.is_process_frozen(ProcessId::new(0)));
        assert!(!t.is_message_frozen(crate::MessageId::new(0)));
        assert!(!t.is_message_frozen(crate::MessageId::new(1)));
        t.validate(&app).unwrap();
        // The Fig. 6 mapping is feasible.
        let arch = crate::Architecture::new(["N1", "N2"]).unwrap();
        crate::Mapping::new(&app, &arch, fig5_mapping()).unwrap();
    }

    #[test]
    fn fig1_overheads() {
        let (app, _) = fig1_process(2);
        let p = app.process(ProcessId::new(0));
        assert_eq!(p.wcet_on(NodeId::new(0)), Some(Time::new(60)));
        assert_eq!((p.alpha(), p.mu(), p.chi()), (Time::new(10), Time::new(10), Time::new(5)));
    }
}
