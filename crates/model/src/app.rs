//! The application model of the paper's §4: a directed acyclic graph of
//! non-preemptable processes exchanging messages, annotated with per-node
//! WCETs, fault-tolerance overheads and timing constraints.

use crate::{MessageId, ModelError, NodeId, ProcessId, Time};

/// A non-preemptable application process `Pi ∈ V`.
///
/// Besides its worst-case execution time per candidate node, every process
/// carries the fault-tolerance overheads of §4: error-detection overhead
/// `αi`, recovery overhead `µi` and checkpointing overhead `χi`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Process {
    name: String,
    /// WCET per architecture node; `None` encodes the `X` (cannot map)
    /// entries of Fig. 3c.
    wcet: Vec<Option<Time>>,
    alpha: Time,
    mu: Time,
    chi: Time,
    release: Time,
    local_deadline: Option<Time>,
    fixed_node: Option<NodeId>,
}

impl Process {
    /// Returns the human-readable process name (e.g. `"P1"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Worst-case execution time on `node`, or `None` if the process cannot
    /// be mapped there.
    pub fn wcet_on(&self, node: NodeId) -> Option<Time> {
        self.wcet.get(node.index()).copied().flatten()
    }

    /// Iterator over the nodes this process can potentially be mapped to
    /// (the set `N_Pi ⊆ N` of §4).
    pub fn candidate_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.wcet.iter().enumerate().filter(|(_, w)| w.is_some()).map(|(i, _)| NodeId::new(i))
    }

    /// Error-detection overhead `αi` (§3).
    pub fn alpha(&self) -> Time {
        self.alpha
    }

    /// Recovery overhead `µi` (§3.1).
    pub fn mu(&self) -> Time {
        self.mu
    }

    /// Checkpointing overhead `χi` (§3.1).
    pub fn chi(&self) -> Time {
        self.chi
    }

    /// Earliest activation time (non-zero for unrolled instances of merged
    /// periodic applications, §4).
    pub fn release(&self) -> Time {
        self.release
    }

    /// Local deadline `dlocal`, if the designer imposed one (§4).
    pub fn local_deadline(&self) -> Option<Time> {
        self.local_deadline
    }

    /// Node pre-assigned by the designer (e.g. sensor/actuator proximity,
    /// §6), if any; such processes are not remapped during optimization.
    pub fn fixed_node(&self) -> Option<NodeId> {
        self.fixed_node
    }
}

/// Specification of one process, consumed by [`ApplicationBuilder`].
///
/// # Examples
///
/// ```
/// use ftes_model::{ProcessSpec, Time};
///
/// let spec = ProcessSpec::new("P2", [Some(Time::new(40)), Some(Time::new(60))])
///     .overheads(Time::new(10), Time::new(10), Time::new(5));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessSpec {
    name: String,
    wcet: Vec<Option<Time>>,
    alpha: Time,
    mu: Time,
    chi: Time,
    release: Time,
    local_deadline: Option<Time>,
    fixed_node: Option<NodeId>,
}

impl ProcessSpec {
    /// Creates a specification with the given per-node WCET row
    /// (`None` = cannot map, the `X` of Fig. 3c). Overheads default to zero.
    pub fn new(name: impl Into<String>, wcet: impl IntoIterator<Item = Option<Time>>) -> Self {
        ProcessSpec {
            name: name.into(),
            wcet: wcet.into_iter().collect(),
            alpha: Time::ZERO,
            mu: Time::ZERO,
            chi: Time::ZERO,
            release: Time::ZERO,
            local_deadline: None,
            fixed_node: None,
        }
    }

    /// Convenience constructor for a process executable on every node with
    /// the same WCET.
    pub fn uniform(name: impl Into<String>, wcet: Time, node_count: usize) -> Self {
        ProcessSpec::new(name, std::iter::repeat_n(Some(wcet), node_count))
    }

    /// Sets the fault-tolerance overheads `(αi, µi, χi)`.
    pub fn overheads(mut self, alpha: Time, mu: Time, chi: Time) -> Self {
        self.alpha = alpha;
        self.mu = mu;
        self.chi = chi;
        self
    }

    /// Sets the earliest activation time (defaults to zero).
    pub fn release(mut self, release: Time) -> Self {
        self.release = release;
        self
    }

    /// Imposes a local deadline `dlocal`.
    pub fn local_deadline(mut self, deadline: Time) -> Self {
        self.local_deadline = Some(deadline);
        self
    }

    /// Pre-assigns the process to a node; design optimization will not remap
    /// it.
    pub fn fixed_node(mut self, node: NodeId) -> Self {
        self.fixed_node = Some(node);
        self
    }
}

/// A message `mi` carried by an edge `eij ∈ E` of the application graph.
///
/// If sender and receiver are mapped on the same node the transmission time
/// is accounted for inside the sender's WCET and the message never reaches
/// the bus (§4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    name: String,
    src: ProcessId,
    dst: ProcessId,
    transmission: Time,
}

impl Message {
    /// Returns the message name (e.g. `"m1"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sending process.
    pub fn src(&self) -> ProcessId {
        self.src
    }

    /// Receiving process.
    pub fn dst(&self) -> ProcessId {
        self.dst
    }

    /// Worst-case transmission time on the bus (derived from the worst-case
    /// message size, §4).
    pub fn transmission(&self) -> Time {
        self.transmission
    }
}

/// The (virtual) application `A = G(V, E)` of §4: a validated acyclic graph
/// of processes and messages plus global timing constraints.
///
/// `Application` is immutable once built; construct it with
/// [`ApplicationBuilder`].
///
/// # Examples
///
/// ```
/// use ftes_model::{ApplicationBuilder, ProcessSpec, Time};
///
/// # fn main() -> Result<(), ftes_model::ModelError> {
/// let mut b = ApplicationBuilder::new(2);
/// let p1 = b.add_process(ProcessSpec::new("P1", [Some(Time::new(20)), Some(Time::new(30))]));
/// let p2 = b.add_process(ProcessSpec::new("P2", [Some(Time::new(40)), None]));
/// b.add_message("m1", p1, p2, Time::new(5))?;
/// let app = b.deadline(Time::new(200)).build()?;
/// assert_eq!(app.process_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Application {
    node_count: usize,
    deadline: Time,
    period: Time,
    processes: Vec<Process>,
    messages: Vec<Message>,
    succs: Vec<Vec<(ProcessId, MessageId)>>,
    preds: Vec<Vec<(ProcessId, MessageId)>>,
    topo: Vec<ProcessId>,
}

impl Application {
    /// Number of processes `|V|`.
    pub fn process_count(&self) -> usize {
        self.processes.len()
    }

    /// Number of messages `|E|`.
    pub fn message_count(&self) -> usize {
        self.messages.len()
    }

    /// Number of architecture nodes the WCET table was built against.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Global hard deadline `D` (§4).
    pub fn deadline(&self) -> Time {
        self.deadline
    }

    /// Period `T` of the (virtual) application (§4).
    pub fn period(&self) -> Time {
        self.period
    }

    /// Returns the process with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn process(&self, id: ProcessId) -> &Process {
        &self.processes[id.index()]
    }

    /// Returns the message with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn message(&self, id: MessageId) -> &Message {
        &self.messages[id.index()]
    }

    /// Iterator over `(ProcessId, &Process)` in id order.
    pub fn processes(&self) -> impl Iterator<Item = (ProcessId, &Process)> {
        self.processes.iter().enumerate().map(|(i, p)| (ProcessId::new(i), p))
    }

    /// Iterator over `(MessageId, &Message)` in id order.
    pub fn messages(&self) -> impl Iterator<Item = (MessageId, &Message)> {
        self.messages.iter().enumerate().map(|(i, m)| (MessageId::new(i), m))
    }

    /// Successors of `id` together with the connecting message.
    pub fn successors(&self, id: ProcessId) -> &[(ProcessId, MessageId)] {
        &self.succs[id.index()]
    }

    /// Predecessors of `id` together with the connecting message.
    pub fn predecessors(&self, id: ProcessId) -> &[(ProcessId, MessageId)] {
        &self.preds[id.index()]
    }

    /// Processes with no predecessors (application entry points).
    pub fn sources(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.preds.iter().enumerate().filter(|(_, p)| p.is_empty()).map(|(i, _)| ProcessId::new(i))
    }

    /// Processes with no successors (application exit points).
    pub fn sinks(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.succs.iter().enumerate().filter(|(_, s)| s.is_empty()).map(|(i, _)| ProcessId::new(i))
    }

    /// A topological ordering of the processes (stable across runs).
    pub fn topological_order(&self) -> &[ProcessId] {
        &self.topo
    }

    /// Sum of the minimal WCETs of all processes; a lower bound on total
    /// computation demand, used by load-balancing constructive mapping.
    pub fn total_min_wcet(&self) -> Time {
        self.processes
            .iter()
            .map(|p| p.wcet.iter().flatten().copied().min().unwrap_or(Time::ZERO))
            .sum()
    }
}

/// Builder assembling and validating an [`Application`].
#[derive(Debug, Clone)]
pub struct ApplicationBuilder {
    node_count: usize,
    deadline: Time,
    period: Option<Time>,
    processes: Vec<ProcessSpec>,
    messages: Vec<Message>,
}

impl ApplicationBuilder {
    /// Starts an application whose WCET rows have `node_count` columns.
    pub fn new(node_count: usize) -> Self {
        ApplicationBuilder {
            node_count,
            deadline: Time::ZERO,
            period: None,
            processes: Vec::new(),
            messages: Vec::new(),
        }
    }

    /// Adds a process and returns its id.
    pub fn add_process(&mut self, spec: ProcessSpec) -> ProcessId {
        let id = ProcessId::new(self.processes.len());
        self.processes.push(spec);
        id
    }

    /// Adds a message (graph edge) from `src` to `dst` with the given
    /// worst-case bus transmission time.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownProcess`], [`ModelError::SelfMessage`] or
    /// [`ModelError::DuplicateEdge`] for malformed edges, and
    /// [`ModelError::NonPositiveDuration`] for a negative transmission time.
    pub fn add_message(
        &mut self,
        name: impl Into<String>,
        src: ProcessId,
        dst: ProcessId,
        transmission: Time,
    ) -> Result<MessageId, ModelError> {
        if src.index() >= self.processes.len() {
            return Err(ModelError::UnknownProcess(src));
        }
        if dst.index() >= self.processes.len() {
            return Err(ModelError::UnknownProcess(dst));
        }
        if src == dst {
            return Err(ModelError::SelfMessage(src));
        }
        if transmission.is_negative() {
            return Err(ModelError::NonPositiveDuration("message transmission time"));
        }
        if self.messages.iter().any(|m| m.src == src && m.dst == dst) {
            return Err(ModelError::DuplicateEdge(src, dst));
        }
        let id = MessageId::new(self.messages.len());
        self.messages.push(Message { name: name.into(), src, dst, transmission });
        Ok(id)
    }

    /// Sets the global hard deadline `D`.
    pub fn deadline(mut self, deadline: Time) -> Self {
        self.deadline = deadline;
        self
    }

    /// Sets the period `T` (defaults to the deadline).
    pub fn period(mut self, period: Time) -> Self {
        self.period = Some(period);
        self
    }

    /// Validates and freezes the application.
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] if the graph is empty or cyclic, a WCET row
    /// has the wrong arity, a process has no feasible node, a duration is
    /// invalid, or the deadline/period constraints are violated.
    pub fn build(self) -> Result<Application, ModelError> {
        if self.processes.is_empty() {
            return Err(ModelError::EmptyApplication);
        }
        if self.deadline <= Time::ZERO {
            return Err(ModelError::BadDeadline);
        }
        let period = self.period.unwrap_or(self.deadline);
        if period <= Time::ZERO || period < self.deadline {
            return Err(ModelError::BadPeriod);
        }
        let n = self.processes.len();
        let mut processes = Vec::with_capacity(n);
        for (i, spec) in self.processes.into_iter().enumerate() {
            let pid = ProcessId::new(i);
            if spec.wcet.len() != self.node_count {
                return Err(ModelError::WcetArityMismatch {
                    process: pid,
                    got: spec.wcet.len(),
                    expected: self.node_count,
                });
            }
            if spec.wcet.iter().all(Option::is_none) {
                return Err(ModelError::NoFeasibleNode(pid));
            }
            if spec.wcet.iter().flatten().any(|w| *w <= Time::ZERO) {
                return Err(ModelError::NonPositiveDuration("worst-case execution time"));
            }
            for (what, t) in [
                ("error-detection overhead", spec.alpha),
                ("recovery overhead", spec.mu),
                ("checkpointing overhead", spec.chi),
            ] {
                if t.is_negative() {
                    return Err(ModelError::NonPositiveDuration(what));
                }
            }
            if spec.release.is_negative() {
                return Err(ModelError::NonPositiveDuration("release time"));
            }
            if let Some(d) = spec.local_deadline {
                if d <= Time::ZERO {
                    return Err(ModelError::BadDeadline);
                }
            }
            if let Some(node) = spec.fixed_node {
                if node.index() >= self.node_count {
                    return Err(ModelError::UnknownNode(node));
                }
                if spec.wcet[node.index()].is_none() {
                    return Err(ModelError::InfeasibleFixedMapping(pid, node));
                }
            }
            processes.push(Process {
                name: spec.name,
                wcet: spec.wcet,
                alpha: spec.alpha,
                mu: spec.mu,
                chi: spec.chi,
                release: spec.release,
                local_deadline: spec.local_deadline,
                fixed_node: spec.fixed_node,
            });
        }

        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (i, m) in self.messages.iter().enumerate() {
            let mid = MessageId::new(i);
            succs[m.src.index()].push((m.dst, mid));
            preds[m.dst.index()].push((m.src, mid));
        }

        let topo = topological_sort(n, &succs, &preds)?;

        Ok(Application {
            node_count: self.node_count,
            deadline: self.deadline,
            period,
            processes,
            messages: self.messages,
            succs,
            preds,
            topo,
        })
    }
}

/// Kahn's algorithm; deterministic (smallest ready id first).
fn topological_sort(
    n: usize,
    succs: &[Vec<(ProcessId, MessageId)>],
    preds: &[Vec<(ProcessId, MessageId)>],
) -> Result<Vec<ProcessId>, ModelError> {
    let mut indegree: Vec<usize> = preds.iter().map(Vec::len).collect();
    let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = indegree
        .iter()
        .enumerate()
        .filter(|(_, &d)| d == 0)
        .map(|(i, _)| std::cmp::Reverse(i))
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(std::cmp::Reverse(i)) = ready.pop() {
        order.push(ProcessId::new(i));
        for &(succ, _) in &succs[i] {
            indegree[succ.index()] -= 1;
            if indegree[succ.index()] == 0 {
                ready.push(std::cmp::Reverse(succ.index()));
            }
        }
    }
    if order.len() != n {
        let culprit = indegree.iter().position(|&d| d > 0).unwrap_or(0);
        return Err(ModelError::CyclicGraph(ProcessId::new(culprit)));
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_proc_builder() -> (ApplicationBuilder, ProcessId, ProcessId) {
        let mut b = ApplicationBuilder::new(2);
        let p0 = b.add_process(ProcessSpec::new("P0", [Some(Time::new(20)), Some(Time::new(30))]));
        let p1 = b.add_process(ProcessSpec::new("P1", [Some(Time::new(40)), None]));
        (b, p0, p1)
    }

    #[test]
    fn build_simple_chain() {
        let (mut b, p0, p1) = two_proc_builder();
        b.add_message("m0", p0, p1, Time::new(5)).unwrap();
        let app = b.deadline(Time::new(100)).build().unwrap();
        assert_eq!(app.process_count(), 2);
        assert_eq!(app.message_count(), 1);
        assert_eq!(app.successors(p0), &[(p1, MessageId::new(0))]);
        assert_eq!(app.predecessors(p1), &[(p0, MessageId::new(0))]);
        assert_eq!(app.topological_order(), &[p0, p1]);
        assert_eq!(app.sources().collect::<Vec<_>>(), vec![p0]);
        assert_eq!(app.sinks().collect::<Vec<_>>(), vec![p1]);
        assert_eq!(app.period(), app.deadline());
    }

    #[test]
    fn rejects_empty_application() {
        let b = ApplicationBuilder::new(1).deadline(Time::new(10));
        assert_eq!(b.build().unwrap_err(), ModelError::EmptyApplication);
    }

    #[test]
    fn rejects_cycle() {
        let (mut b, p0, p1) = two_proc_builder();
        b.add_message("m0", p0, p1, Time::new(1)).unwrap();
        b.add_message("m1", p1, p0, Time::new(1)).unwrap();
        let err = b.deadline(Time::new(100)).build().unwrap_err();
        assert!(matches!(err, ModelError::CyclicGraph(_)));
    }

    #[test]
    fn rejects_self_message_and_duplicates() {
        let (mut b, p0, p1) = two_proc_builder();
        assert_eq!(
            b.add_message("m", p0, p0, Time::new(1)).unwrap_err(),
            ModelError::SelfMessage(p0)
        );
        b.add_message("m0", p0, p1, Time::new(1)).unwrap();
        assert_eq!(
            b.add_message("m1", p0, p1, Time::new(1)).unwrap_err(),
            ModelError::DuplicateEdge(p0, p1)
        );
    }

    #[test]
    fn rejects_unknown_process_in_message() {
        let (mut b, p0, _) = two_proc_builder();
        let ghost = ProcessId::new(99);
        assert_eq!(
            b.add_message("m", p0, ghost, Time::new(1)).unwrap_err(),
            ModelError::UnknownProcess(ghost)
        );
    }

    #[test]
    fn rejects_bad_deadline_and_period() {
        let (b, _, _) = two_proc_builder();
        assert_eq!(b.clone().build().unwrap_err(), ModelError::BadDeadline);
        assert_eq!(
            b.deadline(Time::new(100)).period(Time::new(50)).build().unwrap_err(),
            ModelError::BadPeriod
        );
    }

    #[test]
    fn rejects_no_feasible_node() {
        let mut b = ApplicationBuilder::new(2);
        b.add_process(ProcessSpec::new("P0", [None, None]));
        let err = b.deadline(Time::new(10)).build().unwrap_err();
        assert_eq!(err, ModelError::NoFeasibleNode(ProcessId::new(0)));
    }

    #[test]
    fn rejects_zero_wcet() {
        let mut b = ApplicationBuilder::new(1);
        b.add_process(ProcessSpec::new("P0", [Some(Time::ZERO)]));
        let err = b.deadline(Time::new(10)).build().unwrap_err();
        assert_eq!(err, ModelError::NonPositiveDuration("worst-case execution time"));
    }

    #[test]
    fn rejects_wcet_arity_mismatch() {
        let mut b = ApplicationBuilder::new(3);
        b.add_process(ProcessSpec::new("P0", [Some(Time::new(5))]));
        let err = b.deadline(Time::new(10)).build().unwrap_err();
        assert!(matches!(err, ModelError::WcetArityMismatch { expected: 3, got: 1, .. }));
    }

    #[test]
    fn rejects_infeasible_fixed_mapping() {
        let mut b = ApplicationBuilder::new(2);
        b.add_process(
            ProcessSpec::new("P0", [Some(Time::new(5)), None]).fixed_node(NodeId::new(1)),
        );
        let err = b.deadline(Time::new(10)).build().unwrap_err();
        assert_eq!(err, ModelError::InfeasibleFixedMapping(ProcessId::new(0), NodeId::new(1)));
    }

    #[test]
    fn topological_order_is_deterministic_and_valid() {
        let mut b = ApplicationBuilder::new(1);
        let ps: Vec<_> = (0..5)
            .map(|i| b.add_process(ProcessSpec::uniform(format!("P{i}"), Time::new(10), 1)))
            .collect();
        // Diamond: 0 -> {1, 2} -> 3, plus isolated 4.
        b.add_message("a", ps[0], ps[1], Time::new(1)).unwrap();
        b.add_message("b", ps[0], ps[2], Time::new(1)).unwrap();
        b.add_message("c", ps[1], ps[3], Time::new(1)).unwrap();
        b.add_message("d", ps[2], ps[3], Time::new(1)).unwrap();
        let app = b.deadline(Time::new(100)).build().unwrap();
        let order = app.topological_order();
        let pos = |p: ProcessId| order.iter().position(|&q| q == p).unwrap();
        for (mid, m) in app.messages() {
            let _ = mid;
            assert!(pos(m.src()) < pos(m.dst()));
        }
        assert_eq!(order.len(), 5);
    }

    #[test]
    fn candidate_nodes_skip_x_entries() {
        let (b, _, p1) = two_proc_builder();
        let app = b.deadline(Time::new(100)).build().unwrap();
        let nodes: Vec<_> = app.process(p1).candidate_nodes().collect();
        assert_eq!(nodes, vec![NodeId::new(0)]);
    }

    #[test]
    fn total_min_wcet_sums_cheapest_rows() {
        let (b, _, _) = two_proc_builder();
        let app = b.deadline(Time::new(100)).build().unwrap();
        assert_eq!(app.total_min_wcet(), Time::new(60));
    }
}
