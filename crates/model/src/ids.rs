//! Strongly-typed identifiers for model entities.
//!
//! Newtypes prevent accidentally indexing a process table with a node id and
//! similar unit-confusion bugs (the scheduling core juggles four id spaces).

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl $name {
            /// Creates an identifier from a dense zero-based index.
            #[inline]
            pub const fn new(index: usize) -> Self {
                Self(index as u32)
            }

            /// Returns the dense zero-based index for table lookups.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<usize> for $name {
            fn from(index: usize) -> Self {
                Self::new(index)
            }
        }
    };
}

id_type!(
    /// Identifier of an application process `Pi ∈ V` (paper §4).
    ProcessId,
    "P"
);
id_type!(
    /// Identifier of an inter-process message `mi` (edge of the application
    /// graph, paper §4).
    MessageId,
    "m"
);
id_type!(
    /// Identifier of a computation node `Ni ∈ N` (paper §2).
    NodeId,
    "N"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        assert_eq!(ProcessId::new(3).index(), 3);
        assert_eq!(MessageId::new(0).index(), 0);
        assert_eq!(NodeId::new(7).index(), 7);
    }

    #[test]
    fn display_uses_paper_prefixes() {
        assert_eq!(ProcessId::new(1).to_string(), "P1");
        assert_eq!(MessageId::new(2).to_string(), "m2");
        assert_eq!(NodeId::new(0).to_string(), "N0");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(ProcessId::new(1) < ProcessId::new(2));
        assert_eq!(NodeId::from(4), NodeId::new(4));
    }
}
