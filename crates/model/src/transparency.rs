//! Transparency requirements (paper §3.3, §4).
//!
//! The designer may declare arbitrary processes and messages *frozen*:
//! `T(vi) = frozen` forces the scheduler to allocate the same start time for
//! `vi` in every alternative fault-tolerant schedule, trading schedule length
//! for fault containment and debuggability.

use crate::{Application, MessageId, ModelError, ProcessId};
use std::collections::BTreeSet;

/// The transparency function `T: V ∪ E → {frozen, not_frozen}`.
///
/// # Examples
///
/// ```
/// use ftes_model::{Transparency, ProcessId, MessageId};
///
/// let mut t = Transparency::none();
/// t.freeze_process(ProcessId::new(2));
/// t.freeze_message(MessageId::new(1));
/// assert!(t.is_process_frozen(ProcessId::new(2)));
/// assert!(!t.is_process_frozen(ProcessId::new(0)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Transparency {
    frozen_processes: BTreeSet<ProcessId>,
    frozen_messages: BTreeSet<MessageId>,
    all_messages_frozen: bool,
    all_processes_frozen: bool,
}

impl Transparency {
    /// No transparency requirements: every process and message may have
    /// scenario-dependent start times (maximum performance, §3.3).
    pub fn none() -> Self {
        Transparency::default()
    }

    /// A fully transparent system: all messages **and** processes frozen
    /// (§4: "in a fully transparent system, all messages and processes are
    /// frozen").
    pub fn fully_transparent() -> Self {
        Transparency {
            all_messages_frozen: true,
            all_processes_frozen: true,
            ..Transparency::default()
        }
    }

    /// Freezes all inter-node messages but leaves processes free; this is the
    /// common intermediate point used in the authors' experiments
    /// (fault containment at node boundaries).
    pub fn frozen_messages_only() -> Self {
        Transparency { all_messages_frozen: true, ..Transparency::default() }
    }

    /// Declares one process frozen.
    pub fn freeze_process(&mut self, p: ProcessId) -> &mut Self {
        self.frozen_processes.insert(p);
        self
    }

    /// Declares one message frozen.
    pub fn freeze_message(&mut self, m: MessageId) -> &mut Self {
        self.frozen_messages.insert(m);
        self
    }

    /// Returns `true` if `T(p) = frozen`.
    pub fn is_process_frozen(&self, p: ProcessId) -> bool {
        self.all_processes_frozen || self.frozen_processes.contains(&p)
    }

    /// Returns `true` if `T(m) = frozen`.
    pub fn is_message_frozen(&self, m: MessageId) -> bool {
        self.all_messages_frozen || self.frozen_messages.contains(&m)
    }

    /// Returns `true` if nothing is frozen.
    pub fn is_fully_flexible(&self) -> bool {
        !self.all_messages_frozen
            && !self.all_processes_frozen
            && self.frozen_processes.is_empty()
            && self.frozen_messages.is_empty()
    }

    /// Explicitly frozen processes (does not enumerate `all_processes_frozen`).
    pub fn frozen_processes(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.frozen_processes.iter().copied()
    }

    /// Explicitly frozen messages (does not enumerate `all_messages_frozen`).
    pub fn frozen_messages(&self) -> impl Iterator<Item = MessageId> + '_ {
        self.frozen_messages.iter().copied()
    }

    /// Checks that every declaration references an entity of `app`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownProcess`] or
    /// [`ModelError::UnknownMessage`] for out-of-range declarations.
    pub fn validate(&self, app: &Application) -> Result<(), ModelError> {
        if let Some(&p) = self.frozen_processes.iter().find(|p| p.index() >= app.process_count()) {
            return Err(ModelError::UnknownProcess(p));
        }
        if let Some(&m) = self.frozen_messages.iter().find(|m| m.index() >= app.message_count()) {
            return Err(ModelError::UnknownMessage(m));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ApplicationBuilder, ProcessSpec, Time};

    fn tiny_app() -> Application {
        let mut b = ApplicationBuilder::new(1);
        let p0 = b.add_process(ProcessSpec::uniform("P0", Time::new(10), 1));
        let p1 = b.add_process(ProcessSpec::uniform("P1", Time::new(10), 1));
        b.add_message("m0", p0, p1, Time::new(1)).unwrap();
        b.deadline(Time::new(100)).build().unwrap()
    }

    #[test]
    fn none_is_fully_flexible() {
        assert!(Transparency::none().is_fully_flexible());
        assert!(!Transparency::fully_transparent().is_fully_flexible());
        assert!(!Transparency::frozen_messages_only().is_fully_flexible());
    }

    #[test]
    fn fully_transparent_freezes_everything() {
        let t = Transparency::fully_transparent();
        assert!(t.is_process_frozen(ProcessId::new(41)));
        assert!(t.is_message_frozen(MessageId::new(17)));
    }

    #[test]
    fn selective_freezing() {
        let mut t = Transparency::none();
        t.freeze_process(ProcessId::new(1)).freeze_message(MessageId::new(0));
        assert!(t.is_process_frozen(ProcessId::new(1)));
        assert!(!t.is_process_frozen(ProcessId::new(0)));
        assert!(t.is_message_frozen(MessageId::new(0)));
        assert_eq!(t.frozen_processes().collect::<Vec<_>>(), vec![ProcessId::new(1)]);
    }

    #[test]
    fn validate_catches_out_of_range() {
        let app = tiny_app();
        let mut t = Transparency::none();
        t.freeze_process(ProcessId::new(9));
        assert_eq!(t.validate(&app).unwrap_err(), ModelError::UnknownProcess(ProcessId::new(9)));

        let mut t = Transparency::none();
        t.freeze_message(MessageId::new(9));
        assert_eq!(t.validate(&app).unwrap_err(), ModelError::UnknownMessage(MessageId::new(9)));

        let mut ok = Transparency::none();
        ok.freeze_process(ProcessId::new(0)).freeze_message(MessageId::new(0));
        assert!(ok.validate(&app).is_ok());
    }
}
