//! Discrete time values used throughout the synthesis flow.
//!
//! All schedule mathematics in this workspace is performed on integer time
//! units (the paper uses milliseconds in its examples; the unit is abstract
//! here). Keeping time integral makes schedules exactly reproducible and
//! avoids floating-point drift in worst-case analyses.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Rem, Sub, SubAssign};

/// A discrete instant or duration in abstract time units.
///
/// `Time` is a thin newtype over `i64`. Negative values are permitted so that
/// differences are well-defined, but the model validation layers reject
/// negative durations where they would be meaningless (e.g. WCETs).
///
/// # Examples
///
/// ```
/// use ftes_model::Time;
///
/// let wcet = Time::new(60);
/// let overhead = Time::new(10);
/// assert_eq!(wcet + overhead, Time::new(70));
/// assert_eq!((wcet / 2).units(), 30);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(i64);

impl Time {
    /// The zero instant / empty duration.
    pub const ZERO: Time = Time(0);
    /// The largest representable time; used as "unreachable" sentinel bound.
    pub const MAX: Time = Time(i64::MAX);

    /// Creates a time value from raw units.
    #[inline]
    pub const fn new(units: i64) -> Self {
        Time(units)
    }

    /// Returns the raw unit count.
    #[inline]
    pub const fn units(self) -> i64 {
        self.0
    }

    /// Returns `true` if the value is negative.
    #[inline]
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// Returns the larger of two time values.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// Returns the smaller of two time values.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }

    /// Division rounding towards positive infinity; used for equidistant
    /// checkpoint segment lengths (`⌈C/n⌉`).
    ///
    /// # Panics
    ///
    /// Panics if `divisor == 0`.
    #[inline]
    pub fn div_ceil(self, divisor: i64) -> Time {
        assert!(divisor != 0, "division by zero");
        Time((self.0 + divisor - 1).div_euclid(divisor))
    }

    /// Saturating addition (never overflows past [`Time::MAX`]).
    #[inline]
    pub fn saturating_add(self, rhs: Time) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }

    /// Converts to `f64` for statistics / reporting only.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<i64> for Time {
    fn from(units: i64) -> Self {
        Time(units)
    }
}

impl From<Time> for i64 {
    fn from(t: Time) -> Self {
        t.0
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl SubAssign for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Time) {
        self.0 -= rhs.0;
    }
}

impl Mul<i64> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: i64) -> Time {
        Time(self.0 * rhs)
    }
}

impl Mul<Time> for i64 {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: Time) -> Time {
        Time(self * rhs.0)
    }
}

impl Div<i64> for Time {
    type Output = Time;
    #[inline]
    fn div(self, rhs: i64) -> Time {
        Time(self.0 / rhs)
    }
}

impl Rem<Time> for Time {
    type Output = Time;
    #[inline]
    fn rem(self, rhs: Time) -> Time {
        Time(self.0.rem_euclid(rhs.0))
    }
}

impl Neg for Time {
    type Output = Time;
    #[inline]
    fn neg(self) -> Time {
        Time(-self.0)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, Add::add)
    }
}

/// Least common multiple of two positive durations; used to merge periodic
/// applications into the virtual hyper-period application (paper §4).
///
/// # Panics
///
/// Panics if either argument is not strictly positive.
pub fn lcm(a: Time, b: Time) -> Time {
    assert!(a.0 > 0 && b.0 > 0, "lcm requires positive periods");
    Time(a.0 / gcd(a.0, b.0) * b.0)
}

fn gcd(mut a: i64, mut b: i64) -> i64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_basics() {
        let a = Time::new(30);
        let b = Time::new(12);
        assert_eq!(a + b, Time::new(42));
        assert_eq!(a - b, Time::new(18));
        assert_eq!(a * 2, Time::new(60));
        assert_eq!(2 * a, Time::new(60));
        assert_eq!(a / 3, Time::new(10));
        assert_eq!(-b, Time::new(-12));
    }

    #[test]
    fn div_ceil_rounds_up() {
        assert_eq!(Time::new(60).div_ceil(2), Time::new(30));
        assert_eq!(Time::new(61).div_ceil(2), Time::new(31));
        assert_eq!(Time::new(1).div_ceil(3), Time::new(1));
        assert_eq!(Time::ZERO.div_ceil(5), Time::ZERO);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_ceil_zero_divisor_panics() {
        let _ = Time::new(1).div_ceil(0);
    }

    #[test]
    fn ordering_and_extrema() {
        let a = Time::new(5);
        let b = Time::new(7);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn sum_of_times() {
        let total: Time = [1, 2, 3, 4].into_iter().map(Time::new).sum();
        assert_eq!(total, Time::new(10));
    }

    #[test]
    fn lcm_of_periods() {
        assert_eq!(lcm(Time::new(20), Time::new(30)), Time::new(60));
        assert_eq!(lcm(Time::new(7), Time::new(7)), Time::new(7));
        assert_eq!(lcm(Time::new(1), Time::new(9)), Time::new(9));
    }

    #[test]
    #[should_panic(expected = "positive periods")]
    fn lcm_rejects_zero() {
        let _ = lcm(Time::ZERO, Time::new(3));
    }

    #[test]
    fn saturating_add_caps_at_max() {
        assert_eq!(Time::MAX.saturating_add(Time::new(1)), Time::MAX);
    }
}
