//! The transient fault model of the paper's §2: at most `k` transient faults
//! may occur *anywhere in the system* during one operation cycle.

/// Maximum number of transient faults per application cycle.
///
/// Unlike the single-fault-per-node model of Kandasamy et al. \[19\], `k` is a
/// global budget: several faults may hit the same processor, and `k` may
/// exceed the number of processors (§2, footnote 1).
///
/// # Examples
///
/// ```
/// use ftes_model::FaultModel;
///
/// let fm = FaultModel::new(2);
/// assert_eq!(fm.k(), 2);
/// assert!(FaultModel::fault_free().is_fault_free());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FaultModel {
    k: u32,
}

impl FaultModel {
    /// Creates a fault model tolerating at most `k` transient faults.
    pub const fn new(k: u32) -> Self {
        FaultModel { k }
    }

    /// The degenerate model with no faults (plain static scheduling).
    pub const fn fault_free() -> Self {
        FaultModel { k: 0 }
    }

    /// Maximum number of transient faults per cycle.
    pub const fn k(self) -> u32 {
        self.k
    }

    /// Returns `true` if no faults have to be tolerated.
    pub const fn is_fault_free(self) -> bool {
        self.k == 0
    }
}

impl std::fmt::Display for FaultModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "k={}", self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(FaultModel::new(7).k(), 7);
        assert!(!FaultModel::new(1).is_fault_free());
        assert!(FaultModel::default().is_fault_free());
        assert_eq!(FaultModel::new(3).to_string(), "k=3");
    }
}
