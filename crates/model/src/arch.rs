//! The hardware architecture of the paper's §2: a set of computation nodes
//! sharing a broadcast communication channel.
//!
//! The TDMA bus itself (slot table, rounds) lives in the `ftes-tdma` crate;
//! this module only captures the node set.

use crate::{ModelError, NodeId};

/// One computation node `Ni ∈ N`: a CPU plus communication controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    name: String,
}

impl Node {
    /// Returns the node's display name (e.g. `"N1"`).
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// The set `N` of computation nodes.
///
/// # Examples
///
/// ```
/// use ftes_model::Architecture;
///
/// # fn main() -> Result<(), ftes_model::ModelError> {
/// let arch = Architecture::homogeneous(3)?;
/// assert_eq!(arch.node_count(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Architecture {
    nodes: Vec<Node>,
}

impl Architecture {
    /// Creates an architecture from explicit node names.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyArchitecture`] if no names are given.
    pub fn new<I, S>(names: I) -> Result<Self, ModelError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let nodes: Vec<Node> = names.into_iter().map(|n| Node { name: n.into() }).collect();
        if nodes.is_empty() {
            return Err(ModelError::EmptyArchitecture);
        }
        Ok(Architecture { nodes })
    }

    /// Creates `count` identically named nodes `N0..N{count-1}`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyArchitecture`] if `count == 0`.
    pub fn homogeneous(count: usize) -> Result<Self, ModelError> {
        Architecture::new((0..count).map(|i| format!("N{i}")))
    }

    /// Number of computation nodes `|N|`.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Returns the node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Iterator over `(NodeId, &Node)` in id order.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeId::new(i), n))
    }

    /// Iterator over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len()).map(NodeId::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_names_nodes() {
        let arch = Architecture::homogeneous(2).unwrap();
        assert_eq!(arch.node(NodeId::new(0)).name(), "N0");
        assert_eq!(arch.node(NodeId::new(1)).name(), "N1");
        assert_eq!(arch.node_ids().count(), 2);
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(Architecture::homogeneous(0).unwrap_err(), ModelError::EmptyArchitecture);
        assert_eq!(
            Architecture::new(Vec::<String>::new()).unwrap_err(),
            ModelError::EmptyArchitecture
        );
    }

    #[test]
    fn explicit_names() {
        let arch = Architecture::new(["ecu-a", "ecu-b"]).unwrap();
        let names: Vec<_> = arch.nodes().map(|(_, n)| n.name().to_string()).collect();
        assert_eq!(names, vec!["ecu-a", "ecu-b"]);
    }
}
