//! End-to-end service tests against an ephemeral-port in-process server:
//! CLI/service byte-parity, concurrent-client determinism, canonical-key
//! cache accounting, queue-full backpressure, malformed-request 4xx paths
//! and the load-harness acceptance run.

use ftes::json::escaped;
use ftes::sched::export::tables_to_csv;
use ftes::spec::{parse_spec, FIG5_SPEC};
use ftes::{synthesize_system, FlowConfig};
use ftes_serve::{
    read_response, read_response_full, request, run_load, start, LoadConfig, ServeConfig, Server,
};
use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn test_server(config: ServeConfig) -> Server {
    start(ServeConfig { addr: "127.0.0.1:0".into(), ..config }).expect("bind ephemeral port")
}

fn call(server: &Server, method: &str, path: &str, body: &str) -> (u16, String) {
    let stream = TcpStream::connect(server.addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    request(&stream, method, path, body).expect("request")
}

/// `call` that also surfaces the `Retry-After` header.
fn call_full(server: &Server, method: &str, path: &str, body: &str) -> (u16, Option<u64>, String) {
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: ftes\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len(),
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    read_response_full(&stream).expect("response")
}

/// Extracts the job id out of a `202` submission body.
fn job_id(body: &str) -> u64 {
    let rest = body.split("\"job\":").nth(1).unwrap_or_else(|| panic!("no job id in {body}"));
    rest.chars().take_while(char::is_ascii_digit).collect::<String>().parse().expect("job id")
}

/// Polls `GET /jobs/<id>` until the job reaches a terminal state.
fn poll_job(server: &Server, id: u64, timeout: Duration) -> String {
    let deadline = Instant::now() + timeout;
    loop {
        let (status, body) = call(server, "GET", &format!("/jobs/{id}"), "");
        assert_eq!(status, 200, "{body}");
        for terminal in ["completed", "failed", "cancelled"] {
            if body.contains(&format!("\"state\":\"{terminal}\"")) {
                return body;
            }
        }
        assert!(Instant::now() < deadline, "job {id} never reached a terminal state: {body}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Slices the spliced terminal `result` value out of a status body.
fn extract_result(body: &str) -> &str {
    let start =
        body.find("\"result\":").expect("status body has a result field") + "\"result\":".len();
    let end = body.rfind(",\"error\":").expect("status body has an error field");
    &body[start..end]
}

#[test]
fn synthesize_reply_embeds_cli_identical_tables() {
    let server = test_server(ServeConfig { workers: 2, ..ServeConfig::default() });
    let (status, body) = call(&server, "POST", "/synthesize", FIG5_SPEC);
    assert_eq!(status, 200, "{body}");

    // Derive the CLI-path result in-process: same parser, same flow, same
    // defaults as `ftes <spec> --csv`.
    let spec = parse_spec(FIG5_SPEC).unwrap();
    let config = FlowConfig { strategy: spec.strategy, ..FlowConfig::default() };
    let psi =
        synthesize_system(&spec.app, &spec.platform, spec.fault_model, &spec.transparency, config)
            .unwrap();
    let exact = psi.exact.as_ref().expect("fig5 gets exact tables");
    let expected_csv = tables_to_csv(&exact.tables, &exact.cpg);

    // The service body must embed those bytes exactly (JSON-escaped).
    let needle = format!("\"tables_csv\":\"{}\"", escaped(&expected_csv));
    assert!(body.contains(&needle), "service CSV diverges from the CLI path");
    assert!(body.contains("\"schedulable\":true"));
    assert!(body.contains("\"strategy\":\"MXR\""));
    assert!(body.contains(&format!("\"worst_case\":{}", psi.worst_case_length().units())));
}

#[test]
fn concurrent_clients_get_identical_bodies() {
    let server = test_server(ServeConfig { workers: 4, ..ServeConfig::default() });
    let bodies: Vec<(u16, String)> = std::thread::scope(|scope| {
        let server = &server;
        let handles: Vec<_> = (0..8)
            .map(|_| scope.spawn(move || call(server, "POST", "/synthesize", FIG5_SPEC)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    assert_eq!(bodies.len(), 8);
    for (status, body) in &bodies {
        assert_eq!(*status, 200);
        assert_eq!(body, &bodies[0].1, "all concurrent replies must be byte-identical");
    }
}

#[test]
fn equivalent_specs_share_a_cache_entry() {
    let server = test_server(ServeConfig { workers: 2, ..ServeConfig::default() });
    let reformatted = format!("# twin\n\n{FIG5_SPEC}\n# end\n");

    let (s1, b1) = call(&server, "POST", "/synthesize", FIG5_SPEC);
    let (s2, b2) = call(&server, "POST", "/synthesize", FIG5_SPEC);
    let (s3, b3) = call(&server, "POST", "/synthesize", &reformatted);
    assert_eq!((s1, s2, s3), (200, 200, 200));
    assert_eq!(b1, b2, "verbatim repeat is served from cache");
    assert_eq!(b1, b3, "equivalent spec canonicalizes onto the same entry");

    let stats = server.cache_stats();
    assert_eq!(stats.misses, 1, "one synthesis for three requests");
    assert_eq!(stats.hits, 2);
    assert_eq!(stats.entries, 1);

    // The /metrics endpoint reports the same accounting.
    let (status, metrics) = call(&server, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(metrics.contains("\"hits\":2"), "{metrics}");
    assert!(metrics.contains("\"misses\":1"), "{metrics}");
}

#[test]
fn metrics_expose_phase_timings_and_the_evaluator_bank() {
    let server = test_server(ServeConfig { workers: 2, ..ServeConfig::default() });
    // Two specs with the same (app, platform, k) but different strategies:
    // the response cache keeps them apart, the evaluator bank shares one
    // warm kernel between them.
    let mx_spec = FIG5_SPEC.replace("strategy mxr", "strategy mx");
    assert_ne!(mx_spec, FIG5_SPEC);
    let (s1, _) = call(&server, "POST", "/synthesize", FIG5_SPEC);
    let (s2, _) = call(&server, "POST", "/synthesize", &mx_spec);
    assert_eq!((s1, s2), (200, 200));
    assert_eq!(server.cache_stats().misses, 2, "different strategies are distinct responses");

    let (status, metrics) = call(&server, "GET", "/metrics", "");
    assert_eq!(status, 200);
    // Phase counters: both uncached requests parsed, optimized, built a
    // CPG and scheduled (fig5 fits the exact budget).
    assert!(metrics.contains("\"phases_us\""), "{metrics}");
    for phase in ["parse", "optimize", "cpg", "schedule"] {
        let needle = format!("\"{phase}\":{{\"total\":");
        assert!(metrics.contains(&needle), "missing phase {phase}: {metrics}");
    }
    assert!(!metrics.contains("\"optimize\":{\"total\":0,"), "optimize did real work: {metrics}");
    // Evaluator bank: first request misses, second checks the kernel out.
    assert!(
        metrics.contains("\"evaluator_bank\":{\"hits\":1,\"misses\":1,\"banked\":1"),
        "{metrics}"
    );
}

#[test]
fn metrics_json_carries_p90_and_the_per_endpoint_breakdown() {
    let server = test_server(ServeConfig { workers: 2, ..ServeConfig::default() });
    let (status, _) = call(&server, "POST", "/synthesize", FIG5_SPEC);
    assert_eq!(status, 200);
    let (status, metrics) = call(&server, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(metrics.contains("\"p90\":"), "{metrics}");
    assert!(
        metrics.contains("\"latency_by_endpoint\":{\"synthesize\":{\"served\":1,"),
        "{metrics}"
    );
    assert!(metrics.contains("\"journal_appends\":"), "{metrics}");
    // `?format=json` is the explicit spelling of the default.
    let (status, same_shape) = call(&server, "GET", "/metrics?format=json", "");
    assert_eq!(status, 200);
    assert!(same_shape.contains("\"latency_by_endpoint\""), "{same_shape}");
    // Unknown formats are a client error, not a silent JSON fallback.
    let (status, body) = call(&server, "GET", "/metrics?format=xml", "");
    assert_eq!(status, 400, "{body}");
}

#[test]
fn prometheus_exposition_is_valid_and_pins_the_family_set() {
    let server = test_server(ServeConfig { workers: 2, ..ServeConfig::default() });
    let (status, _) = call(&server, "POST", "/synthesize", FIG5_SPEC);
    assert_eq!(status, 200);

    // Raw read: the exposition must go out as text/plain, not JSON.
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    stream
        .write_all(
            b"GET /metrics?format=prometheus HTTP/1.1\r\nHost: ftes\r\n\
              Content-Length: 0\r\nConnection: close\r\n\r\n",
        )
        .unwrap();
    let mut raw = String::new();
    use std::io::Read as _;
    (&stream).read_to_string(&mut raw).expect("read");
    assert!(raw.starts_with("HTTP/1.1 200 OK\r\n"), "{raw}");
    assert!(
        raw.contains(&format!("Content-Type: {}\r\n", ftes_serve::PROMETHEUS_CONTENT_TYPE)),
        "{raw}"
    );
    let body = raw.split("\r\n\r\n").nth(1).expect("body");

    // The format checker enforces HELP/TYPE ordering, sample syntax and
    // histogram bucket/count consistency; the golden set below is the
    // scrape contract — extending it is fine, renaming a family is not.
    let families = ftes_serve::validate_prometheus(body).unwrap_or_else(|e| panic!("{e}\n{body}"));
    let expected: std::collections::BTreeSet<String> = [
        "ftes_cache_entries",
        "ftes_cache_hits_total",
        "ftes_cache_misses_total",
        "ftes_certifications_total",
        "ftes_evaluator_bank_banked",
        "ftes_evaluator_bank_hits_total",
        "ftes_evaluator_bank_misses_total",
        "ftes_jobs",
        "ftes_jobs_queue_capacity",
        "ftes_jobs_queue_depth",
        "ftes_jobs_replayed_total",
        "ftes_jobs_resumed_total",
        "ftes_journal_append_microseconds_total",
        "ftes_journal_appends_total",
        "ftes_journal_bytes_total",
        "ftes_phase_microseconds_total",
        "ftes_phase_runs_total",
        "ftes_queue_depth",
        "ftes_repair_rounds_total",
        "ftes_request_duration_microseconds",
        "ftes_requests_total",
        "ftes_responses_total",
        "ftes_trace_events_dropped_total",
    ]
    .into_iter()
    .map(String::from)
    .collect();
    assert_eq!(families, expected);

    // The one synthesize request this test made shows up in the scrape.
    assert!(body.contains("ftes_requests_total{endpoint=\"synthesize\"} 1"), "{body}");
    assert!(
        body.contains("ftes_request_duration_microseconds_count{endpoint=\"synthesize\"} 1"),
        "{body}"
    );
}

#[test]
fn explore_jobs_complete_with_the_direct_suite_report() {
    let server = test_server(ServeConfig { workers: 2, ..ServeConfig::default() });
    let params = "processes=8 nodes=2 k=1 rounds=2 iters=4 seed=5";
    let (status, body) = call(&server, "POST", "/explore", params);
    assert_eq!(status, 202, "{body}");
    assert!(body.contains("\"state\":\"queued\""), "{body}");
    let id = job_id(&body);
    let done = poll_job(&server, id, Duration::from_secs(300));
    assert!(done.contains("\"state\":\"completed\""), "{done}");
    assert!(done.contains("\"rows_done\":1"), "one grid point streams one row: {done}");

    // Byte-parity with the library path, wall-clock fields normalized
    // (everything else in the report is deterministic).
    let config = ftes_serve::parse_explore_request(params).unwrap();
    let direct = ftes::explore::suite_to_json(&ftes::explore::run_suite(&config).unwrap());
    fn zero_wall(s: &str) -> String {
        let mut out = String::new();
        let mut rest = s;
        while let Some(pos) = rest.find("\"wall_ms\":") {
            let (head, tail) = rest.split_at(pos + "\"wall_ms\":".len());
            out.push_str(head);
            out.push('0');
            rest = tail.trim_start_matches(|c: char| c.is_ascii_digit());
        }
        out.push_str(rest);
        out
    }
    assert_eq!(zero_wall(extract_result(&done)), zero_wall(direct.trim_end()));

    // A malformed body is still rejected at submit time, like the old
    // synchronous endpoint.
    let (status, body) = call(&server, "POST", "/explore", "processes=banana");
    assert_eq!(status, 400, "{body}");
}

#[test]
fn queue_full_returns_429_and_recovers() {
    let server = test_server(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        io_timeout: Duration::from_secs(30),
        ..ServeConfig::default()
    });

    // Occupy the single worker and the single queue slot with idle
    // connections (the worker blocks reading a request that never comes).
    let idle: Vec<TcpStream> =
        (0..2).map(|_| TcpStream::connect(server.addr()).expect("connect")).collect();

    // The acceptor processes connections sequentially; retry until both
    // idles are placed and the probe is shed with 429.
    let mut saw_429 = false;
    for _ in 0..100 {
        let stream = TcpStream::connect(server.addr()).expect("connect");
        stream.set_read_timeout(Some(Duration::from_millis(500))).unwrap();
        match request(&stream, "GET", "/healthz", "") {
            Ok((429, body)) => {
                assert!(body.contains("queue full"), "{body}");
                saw_429 = true;
                break;
            }
            Ok(_) | Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    assert!(saw_429, "full queue must shed load with 429");
    assert!(server.metrics().rejected_429 >= 1);

    // Dropping the idle connections frees the worker; service recovers.
    drop(idle);
    let mut recovered = false;
    for _ in 0..100 {
        let stream = TcpStream::connect(server.addr()).expect("connect");
        stream.set_read_timeout(Some(Duration::from_millis(500))).unwrap();
        if let Ok((200, _)) = request(&stream, "GET", "/healthz", "") {
            recovered = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(recovered, "service must recover once the queue drains");
}

#[test]
fn malformed_requests_get_4xx() {
    let server = test_server(ServeConfig { workers: 2, ..ServeConfig::default() });

    let (status, body) = call(&server, "GET", "/nope", "");
    assert_eq!(status, 404, "{body}");

    let (status, _) = call(&server, "DELETE", "/synthesize", "");
    assert_eq!(status, 405);

    let (status, body) = call(&server, "POST", "/synthesize", "nodes 2\nbogus directive\n");
    assert_eq!(status, 400);
    assert!(body.contains("unknown directive"), "{body}");

    let (status, body) = call(&server, "POST", "/explore", "processes=banana");
    assert_eq!(status, 400);
    assert!(body.contains("bad number"), "{body}");

    // POST without Content-Length → 411 (raw request, bypassing the client
    // helper which always sends one).
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    stream.write_all(b"POST /synthesize HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let (status, _) = read_response(&stream).unwrap();
    assert_eq!(status, 411);

    // Garbage request line → 400.
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    stream.write_all(b"COMPLETE NONSENSE\r\n\r\n").unwrap();
    let (status, _) = read_response(&stream).unwrap();
    assert_eq!(status, 400);

    // 4xx traffic lands in the metrics status classes.
    assert!(server.metrics().status_4xx >= 5);
}

#[test]
fn healthz_reports_capacity() {
    let server =
        test_server(ServeConfig { workers: 3, queue_capacity: 17, ..ServeConfig::default() });
    let (status, body) = call(&server, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"status\":\"ok\""), "{body}");
    assert!(body.contains("\"workers\":3"), "{body}");
    assert!(body.contains("\"queue_capacity\":17"), "{body}");
}

#[test]
fn corpus_catalog_lists_every_builtin_family() {
    use ftes::gen::corpus::Family;
    let server = test_server(ServeConfig::default());
    let (status, body) = call(&server, "GET", "/corpus", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"default_seed\":7"), "{body}");
    for family in Family::ALL {
        assert!(body.contains(&format!("\"name\":\"{}\"", family.name())), "{body}");
    }
    // Member parameters are machine-usable (the documented catalog shape).
    assert!(body.contains("\"processes\":"), "{body}");
    assert!(body.contains("\"strategy\":\"mr\""), "{body}");
    // The catalog is static: repeated requests are byte-identical.
    let (_, again) = call(&server, "GET", "/corpus", "");
    assert_eq!(body, again);
    // Wrong method is a 405, like every other endpoint.
    let (status, _) = call(&server, "POST", "/corpus", "x=1");
    assert_eq!(status, 405);
    // And the per-endpoint request counter tracks it.
    let (_, metrics) = call(&server, "GET", "/metrics", "");
    assert!(metrics.contains("\"corpus\":2"), "{metrics}");
}

#[test]
fn synthesize_jobs_match_the_synchronous_endpoint_byte_for_byte() {
    let server = test_server(ServeConfig { workers: 2, ..ServeConfig::default() });
    let (status, sync_body) = call(&server, "POST", "/synthesize", FIG5_SPEC);
    assert_eq!(status, 200);

    let (status, body) = call(&server, "POST", "/jobs", FIG5_SPEC);
    assert_eq!(status, 202, "{body}");
    let id = job_id(&body);
    let done = poll_job(&server, id, Duration::from_secs(120));
    assert!(done.contains("\"state\":\"completed\""), "{done}");
    assert_eq!(
        extract_result(&done),
        sync_body.trim_end(),
        "async result must carry exactly the synchronous bytes"
    );

    // The listing knows the job; unknown ids are 404.
    let (status, list) = call(&server, "GET", "/jobs", "");
    assert_eq!(status, 200);
    assert!(list.contains(&format!("\"job\":{id}")), "{list}");
    assert!(list.contains("\"kind\":\"synthesize\""), "{list}");
    let (status, _) = call(&server, "GET", "/jobs/999", "");
    assert_eq!(status, 404);

    // Cancelling a terminal job is a no-op, reported as such.
    let (status, cancel) = call(&server, "DELETE", &format!("/jobs/{id}"), "");
    assert_eq!(status, 200);
    assert!(cancel.contains("\"cancelled\":false"), "{cancel}");

    // The executor's lifecycle counters surface on /metrics.
    let (_, metrics) = call(&server, "GET", "/metrics", "");
    assert!(metrics.contains("\"jobs\":{"), "{metrics}");
    assert!(metrics.contains("\"completed\":1"), "{metrics}");
}

#[test]
fn full_job_queue_sheds_submissions_with_retry_after() {
    let server = test_server(ServeConfig {
        workers: 2,
        job_workers: 1,
        job_queue_capacity: 1,
        ..ServeConfig::default()
    });
    // One slow suite occupies the single job worker, the next fills the
    // one-slot queue; a submission after that must shed with 429.
    let params = "processes=8 nodes=2 k=1 rounds=2 iters=6 seeds=2";
    let mut shed = None;
    for _ in 0..16 {
        let (status, retry_after, body) = call_full(&server, "POST", "/explore", params);
        if status == 429 {
            shed = Some((retry_after, body));
            break;
        }
        assert_eq!(status, 202, "{body}");
    }
    let (retry_after, body) = shed.expect("a bounded job queue must shed submissions");
    assert_eq!(retry_after, Some(1), "429 carries Retry-After for client backoff");
    assert!(body.contains("\"queue_depth\":"), "{body}");
    assert!(body.contains("queue full"), "{body}");
}

#[test]
fn corpus_run_submissions_validate_and_cancel_at_row_boundaries() {
    let server = test_server(ServeConfig::default());
    let (status, body) = call(&server, "POST", "/corpus/run", "family=westeros");
    assert_eq!(status, 400);
    assert!(body.contains("unknown corpus family"), "{body}");
    let (status, _) = call(&server, "POST", "/corpus/run", "workers=0");
    assert_eq!(status, 400);

    let (status, body) = call(&server, "POST", "/corpus/run", "family=automotive workers=2");
    assert_eq!(status, 202, "{body}");
    let id = job_id(&body);
    // Cancel right away: the worker stops at its next row boundary (or the
    // job slipped through to completion first — both are healthy ends).
    let (status, cancel) = call(&server, "DELETE", &format!("/jobs/{id}"), "");
    assert_eq!(status, 200, "{cancel}");
    let done = poll_job(&server, id, Duration::from_secs(300));
    assert!(!done.contains("\"state\":\"failed\""), "{done}");
}

#[test]
fn a_restarted_daemon_replays_terminal_jobs_from_its_journal() {
    let dir = std::env::temp_dir().join(format!("ftes-serve-journal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config =
        ServeConfig { workers: 2, journal_dir: Some(dir.clone()), ..ServeConfig::default() };
    let (id, first) = {
        let server = test_server(config.clone());
        let (status, body) = call(&server, "POST", "/jobs", FIG5_SPEC);
        assert_eq!(status, 202, "{body}");
        let id = job_id(&body);
        let done = poll_job(&server, id, Duration::from_secs(120));
        assert!(done.contains("\"state\":\"completed\""), "{done}");
        server.shutdown();
        (id, done)
    };

    // Same journal directory: the job is back, terminal, byte-identical —
    // without re-running any synthesis.
    let server = test_server(config);
    let replayed = poll_job(&server, id, Duration::from_secs(10));
    assert!(replayed.contains("\"state\":\"completed\""), "{replayed}");
    assert_eq!(extract_result(&replayed), extract_result(&first));
    let (_, metrics) = call(&server, "GET", "/metrics", "");
    assert!(metrics.contains("\"replayed\":1"), "{metrics}");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The ISSUE acceptance run: ≥ 8 concurrent clients, zero failures,
/// cache hit rate > 0 on the repeated-spec mix.
#[test]
fn load_harness_sustains_eight_clients_with_zero_failures() {
    let server = test_server(ServeConfig { workers: 4, ..ServeConfig::default() });
    let report = run_load(&LoadConfig {
        clients: 8,
        requests: 48,
        ..LoadConfig::against(server.addr().to_string())
    })
    .expect("load run");
    assert_eq!(report.sent, 48);
    assert_eq!(report.failed, 0, "{report:?}");
    assert_eq!(report.ok, 48);
    assert!(report.p99_us >= report.p50_us);
    assert!(report.throughput_rps() > 0.0);

    let stats = server.cache_stats();
    assert!(stats.hits > 0, "repeated-spec mix must produce cache hits: {stats:?}");
    assert!(stats.hit_rate() > 0.0);
    // Two equivalent specs → one canonical entry, one real synthesis
    // (modulo a benign race when several clients miss simultaneously).
    assert!(stats.entries <= 2, "{stats:?}");
    // 48 synthesize requests + the harness's own before/after /metrics
    // scrapes. Workers record *after* replying, so the last counter tick
    // can trail the client's read by a moment — wait it out, bounded.
    // A lower bound, not equality: the harness's closing scrape retries
    // (each one a /metrics request) whenever that same lag is visible to
    // it, so the exact 2xx count depends on scheduling.
    for _ in 0..100 {
        if server.metrics().status_2xx >= 50 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(server.metrics().status_2xx >= 50, "{:?}", server.metrics());

    // The before/after scrape delta attributes this run's requests to
    // their endpoints, with server-side latency.
    let synth = report
        .endpoints
        .iter()
        .find(|ep| ep.label == "synthesize")
        .expect("per-endpoint breakdown present: {report:?}");
    assert_eq!(synth.requests, 48);
    assert_eq!(synth.served, 48);
    assert!(synth.p99_us >= synth.p50_us);
}
