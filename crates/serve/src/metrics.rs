//! Lock-free service counters and a latency histogram.
//!
//! Everything is atomics so the hot path never takes a lock for
//! accounting. Latencies land in power-of-two microsecond buckets;
//! percentiles are answered with the upper bound of the bucket containing
//! the requested rank — coarse (factor-of-two) but monotone, stable and
//! allocation-free, which is what a `/metrics` endpoint needs.

use ftes::sched::CertificationCounters;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two latency buckets: bucket `i` holds samples in
/// `[2^i, 2^(i+1))` µs, except bucket 0 (`< 2` µs) and the last bucket
/// (everything above ~17 minutes).
pub(crate) const BUCKETS: usize = 30;

/// The service endpoints tracked individually.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /synthesize`
    Synthesize,
    /// `POST /explore`
    Explore,
    /// `GET /corpus` and `POST /corpus/run`
    Corpus,
    /// The `/jobs` family (`POST`/`GET`/`DELETE`)
    Jobs,
    /// `GET /healthz`
    Healthz,
    /// `GET /metrics`
    Metrics,
    /// Anything else (404/405/parse failures).
    Other,
}

impl Endpoint {
    fn index(self) -> usize {
        match self {
            Endpoint::Synthesize => 0,
            Endpoint::Explore => 1,
            Endpoint::Corpus => 2,
            Endpoint::Jobs => 3,
            Endpoint::Healthz => 4,
            Endpoint::Metrics => 5,
            Endpoint::Other => 6,
        }
    }

    const COUNT: usize = 7;

    /// All endpoints, in reporting order (matches `index()`).
    pub const ALL: [Endpoint; Endpoint::COUNT] = [
        Endpoint::Synthesize,
        Endpoint::Explore,
        Endpoint::Corpus,
        Endpoint::Jobs,
        Endpoint::Healthz,
        Endpoint::Metrics,
        Endpoint::Other,
    ];

    /// Stable label used in the `/metrics` document.
    pub fn label(self) -> &'static str {
        match self {
            Endpoint::Synthesize => "synthesize",
            Endpoint::Explore => "explore",
            Endpoint::Corpus => "corpus",
            Endpoint::Jobs => "jobs",
            Endpoint::Healthz => "healthz",
            Endpoint::Metrics => "metrics",
            Endpoint::Other => "other",
        }
    }
}

/// One phase of the request hot path, timed individually so regressions
/// are observable on a live daemon (`/metrics` exposes the totals).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// `.ftes` / request-body parsing.
    Parse,
    /// Design-space optimization (mapping + policy search, repair rounds
    /// included).
    Optimize,
    /// Exact certification inside the certify-and-repair loop.
    Certify,
    /// FT-CPG construction.
    Cpg,
    /// Conditional scheduling + table generation.
    Schedule,
}

impl Phase {
    fn index(self) -> usize {
        match self {
            Phase::Parse => 0,
            Phase::Optimize => 1,
            Phase::Certify => 2,
            Phase::Cpg => 3,
            Phase::Schedule => 4,
        }
    }

    const COUNT: usize = 5;

    /// Stable label used in the `/metrics` document.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::Optimize => "optimize",
            Phase::Certify => "certify",
            Phase::Cpg => "cpg",
            Phase::Schedule => "schedule",
        }
    }

    /// All phases, in reporting order.
    pub const ALL: [Phase; Phase::COUNT] =
        [Phase::Parse, Phase::Optimize, Phase::Certify, Phase::Cpg, Phase::Schedule];
}

/// Atomic counters shared by every worker thread.
///
/// Latencies are histogrammed **per endpoint** — one pooled histogram
/// would let `/healthz` probes drown cold-synthesis samples and render
/// mixed-load percentiles meaningless. The pooled summary in the snapshot
/// is recomputed by summing the per-endpoint buckets.
pub struct Metrics {
    requests: [AtomicU64; Endpoint::COUNT],
    status_2xx: AtomicU64,
    status_4xx: AtomicU64,
    status_5xx: AtomicU64,
    rejected_429: AtomicU64,
    latency: [[AtomicU64; BUCKETS]; Endpoint::COUNT],
    latency_count: [AtomicU64; Endpoint::COUNT],
    latency_sum_us: [AtomicU64; Endpoint::COUNT],
    phase_us: [AtomicU64; Phase::COUNT],
    phase_count: [AtomicU64; Phase::COUNT],
    cert_certified: AtomicU64,
    cert_refuted: AtomicU64,
    cert_uncertifiable: AtomicU64,
    cert_repair_rounds: AtomicU64,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            requests: std::array::from_fn(|_| AtomicU64::new(0)),
            status_2xx: AtomicU64::new(0),
            status_4xx: AtomicU64::new(0),
            status_5xx: AtomicU64::new(0),
            rejected_429: AtomicU64::new(0),
            latency: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
            latency_count: std::array::from_fn(|_| AtomicU64::new(0)),
            latency_sum_us: std::array::from_fn(|_| AtomicU64::new(0)),
            phase_us: std::array::from_fn(|_| AtomicU64::new(0)),
            phase_count: std::array::from_fn(|_| AtomicU64::new(0)),
            cert_certified: AtomicU64::new(0),
            cert_refuted: AtomicU64::new(0),
            cert_uncertifiable: AtomicU64::new(0),
            cert_repair_rounds: AtomicU64::new(0),
        }
    }
}

fn bucket_of(micros: u64) -> usize {
    ((64 - micros.max(1).leading_zeros()) as usize).min(BUCKETS) - 1
}

/// Upper bound (µs) of a bucket, reported as the percentile estimate.
pub(crate) fn bucket_upper(bucket: usize) -> u64 {
    if bucket + 1 >= 64 {
        u64::MAX
    } else {
        (1u64 << (bucket + 1)) - 1
    }
}

impl Metrics {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Records one served request: endpoint, response status, wall time.
    pub fn record(&self, endpoint: Endpoint, status: u16, micros: u64) {
        self.requests[endpoint.index()].fetch_add(1, Ordering::Relaxed);
        match status {
            429 => {
                self.rejected_429.fetch_add(1, Ordering::Relaxed);
            }
            200..=299 => {
                self.status_2xx.fetch_add(1, Ordering::Relaxed);
            }
            400..=499 => {
                self.status_4xx.fetch_add(1, Ordering::Relaxed);
            }
            _ => {
                self.status_5xx.fetch_add(1, Ordering::Relaxed);
            }
        }
        let e = endpoint.index();
        self.latency[e][bucket_of(micros)].fetch_add(1, Ordering::Relaxed);
        self.latency_count[e].fetch_add(1, Ordering::Relaxed);
        self.latency_sum_us[e].fetch_add(micros, Ordering::Relaxed);
    }

    /// Records a request shed at the acceptor (queue full): it consumed no
    /// worker time, so it counts toward 429s but not latency.
    pub fn record_rejected(&self) {
        self.requests[Endpoint::Other.index()].fetch_add(1, Ordering::Relaxed);
        self.rejected_429.fetch_add(1, Ordering::Relaxed);
    }

    /// Records the wall time one hot-path phase spent on one request.
    /// Cache hits skip the expensive phases entirely and record nothing —
    /// the counters measure actual work, not traffic.
    pub fn record_phase(&self, phase: Phase, micros: u64) {
        self.phase_us[phase.index()].fetch_add(micros, Ordering::Relaxed);
        self.phase_count[phase.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one synthesis's certification outcome: `Some(true)` the
    /// incumbent certified, `Some(false)` it shipped refuted, `None` the
    /// instance was uncertifiable (estimate-only regime), plus the repair
    /// searches the loop ran.
    pub fn record_certification(&self, certified: Option<bool>, repair_rounds: u64) {
        match certified {
            Some(true) => self.cert_certified.fetch_add(1, Ordering::Relaxed),
            Some(false) => self.cert_refuted.fetch_add(1, Ordering::Relaxed),
            None => self.cert_uncertifiable.fetch_add(1, Ordering::Relaxed),
        };
        self.cert_repair_rounds.fetch_add(repair_rounds, Ordering::Relaxed);
    }

    /// A consistent-enough snapshot for reporting (counters are
    /// independently relaxed-loaded; exactness across counters is not a
    /// goal of an operational metrics endpoint).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let by_endpoint = Endpoint::ALL.map(|endpoint| {
            let e = endpoint.index();
            let histogram: Vec<u64> =
                self.latency[e].iter().map(|b| b.load(Ordering::Relaxed)).collect();
            let served = self.latency_count[e].load(Ordering::Relaxed);
            EndpointLatency {
                label: endpoint.label(),
                served,
                sum_us: self.latency_sum_us[e].load(Ordering::Relaxed),
                p50_us: percentile(&histogram, served, 0.50),
                p90_us: percentile(&histogram, served, 0.90),
                p99_us: percentile(&histogram, served, 0.99),
                histogram,
            }
        });
        // Pooled summary: sum the per-endpoint buckets back together.
        let mut pooled = vec![0u64; BUCKETS];
        let mut total = 0u64;
        for lat in &by_endpoint {
            total += lat.served;
            for (sum, &count) in pooled.iter_mut().zip(&lat.histogram) {
                *sum += count;
            }
        }
        MetricsSnapshot {
            requests_by_endpoint: Endpoint::ALL.map(|endpoint| {
                (endpoint.label(), self.requests[endpoint.index()].load(Ordering::Relaxed))
            }),
            status_2xx: self.status_2xx.load(Ordering::Relaxed),
            status_4xx: self.status_4xx.load(Ordering::Relaxed),
            status_5xx: self.status_5xx.load(Ordering::Relaxed),
            rejected_429: self.rejected_429.load(Ordering::Relaxed),
            p50_us: percentile(&pooled, total, 0.50),
            p90_us: percentile(&pooled, total, 0.90),
            p99_us: percentile(&pooled, total, 0.99),
            served: total,
            latency_by_endpoint: by_endpoint,
            phases: Phase::ALL.map(|p| PhaseSnapshot {
                label: p.label(),
                total_us: self.phase_us[p.index()].load(Ordering::Relaxed),
                count: self.phase_count[p.index()].load(Ordering::Relaxed),
            }),
            certification: CertificationCounters {
                certified: self.cert_certified.load(Ordering::Relaxed),
                refuted: self.cert_refuted.load(Ordering::Relaxed),
                uncertifiable: self.cert_uncertifiable.load(Ordering::Relaxed),
                repair_rounds: self.cert_repair_rounds.load(Ordering::Relaxed),
            },
        }
    }
}

/// Accumulated wall time of one hot-path phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseSnapshot {
    /// Stable phase label (`parse` / `optimize` / `certify` / `cpg` /
    /// `schedule`).
    pub label: &'static str,
    /// Total microseconds spent in the phase across all requests.
    pub total_us: u64,
    /// Requests that executed (and timed) the phase.
    pub count: u64,
}

/// Bucket-resolution percentile: the upper bound of the bucket holding the
/// requested rank, or 0 when nothing was recorded yet.
///
/// `total` and `histogram` are loaded from independent relaxed atomics, so
/// they can disagree transiently (and a counter reset can leave a non-zero
/// `total` against an emptied histogram). The effective total is therefore
/// clamped to what the histogram actually holds — an empty histogram
/// answers 0, never the catch-all bucket's ~17-minute upper bound.
fn percentile(histogram: &[u64], total: u64, p: f64) -> u64 {
    let in_histogram: u64 = histogram.iter().sum();
    let total = total.min(in_histogram);
    if total == 0 {
        return 0;
    }
    let rank = ((total as f64 * p).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (i, &count) in histogram.iter().enumerate() {
        seen += count;
        if seen >= rank {
            return bucket_upper(i);
        }
    }
    // Unreachable once rank ≤ in_histogram, kept as a safe floor.
    0
}

/// Point-in-time counter values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(label, requests)` per endpoint.
    pub requests_by_endpoint: [(&'static str, u64); Endpoint::COUNT],
    /// Responses with 2xx status.
    pub status_2xx: u64,
    /// Responses with 4xx status (excluding 429).
    pub status_4xx: u64,
    /// Responses with 5xx status.
    pub status_5xx: u64,
    /// Requests shed with 429 (acceptor backpressure included).
    pub rejected_429: u64,
    /// Estimated median service latency in microseconds (all endpoints).
    pub p50_us: u64,
    /// Estimated 90th-percentile service latency in microseconds.
    pub p90_us: u64,
    /// Estimated 99th-percentile service latency in microseconds.
    pub p99_us: u64,
    /// Requests that reached a worker (latency samples).
    pub served: u64,
    /// Per-endpoint latency accounting — the pooled percentiles above mix
    /// healthz probes with cold synthesis; these don't.
    pub latency_by_endpoint: [EndpointLatency; Endpoint::COUNT],
    /// Per-phase work accounting (parse / optimize / certify / cpg /
    /// schedule).
    pub phases: [PhaseSnapshot; Phase::COUNT],
    /// Certification outcome counters of the synthesis work served (the
    /// shared corpus-level shape from `ftes-sched`).
    pub certification: CertificationCounters,
}

impl MetricsSnapshot {
    /// Total requests seen (served + shed).
    pub fn requests_total(&self) -> u64 {
        self.requests_by_endpoint.iter().map(|(_, n)| n).sum()
    }
}

/// One endpoint's latency accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EndpointLatency {
    /// Stable endpoint label (matches `requests_by_endpoint`).
    pub label: &'static str,
    /// Latency samples recorded for the endpoint.
    pub served: u64,
    /// Sum of all recorded latencies, microseconds (the Prometheus
    /// histogram `_sum`).
    pub sum_us: u64,
    /// Estimated median latency, microseconds.
    pub p50_us: u64,
    /// Estimated 90th-percentile latency, microseconds.
    pub p90_us: u64,
    /// Estimated 99th-percentile latency, microseconds.
    pub p99_us: u64,
    /// Power-of-two bucket counts (bucket `i` ends at `2^(i+1) - 1` µs).
    pub histogram: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_cover_the_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        for us in [1u64, 10, 1_000, 1_000_000, (1 << BUCKETS) - 1] {
            let b = bucket_of(us);
            assert!(bucket_upper(b) >= us, "{us}");
        }
        // Values beyond the histogram range clamp into the catch-all.
        assert_eq!(bucket_of(1 << 40), BUCKETS - 1);
    }

    #[test]
    fn percentiles_track_recorded_latencies() {
        let m = Metrics::new();
        // 99 fast requests (~100 µs) and one slow outlier (~1 s).
        for _ in 0..99 {
            m.record(Endpoint::Synthesize, 200, 100);
        }
        m.record(Endpoint::Synthesize, 200, 1_000_000);
        let snap = m.snapshot();
        assert_eq!(snap.served, 100);
        assert!(snap.p50_us >= 100 && snap.p50_us < 256, "{}", snap.p50_us);
        assert!(snap.p99_us < snap.p50_us * 20, "p99 excludes the outlier at rank 99");
        assert_eq!(snap.status_2xx, 100);
    }

    #[test]
    fn status_classes_and_rejections_count_separately() {
        let m = Metrics::new();
        m.record(Endpoint::Synthesize, 200, 10);
        m.record(Endpoint::Other, 404, 10);
        m.record(Endpoint::Synthesize, 422, 10);
        m.record(Endpoint::Explore, 500, 10);
        m.record_rejected();
        let snap = m.snapshot();
        assert_eq!(snap.status_2xx, 1);
        assert_eq!(snap.status_4xx, 2);
        assert_eq!(snap.status_5xx, 1);
        assert_eq!(snap.rejected_429, 1);
        assert_eq!(snap.requests_total(), 5);
        assert_eq!(snap.served, 4, "shed requests carry no latency sample");
    }

    #[test]
    fn empty_metrics_report_zero_percentiles() {
        let snap = Metrics::new().snapshot();
        assert_eq!((snap.p50_us, snap.p99_us, snap.requests_total()), (0, 0, 0));
        assert!(snap.phases.iter().all(|p| p.total_us == 0 && p.count == 0));
        assert_eq!(snap.certification, CertificationCounters::default());
    }

    #[test]
    fn empty_histogram_with_nonzero_total_reports_zero_not_the_top_bucket() {
        // Regression: `total` and the histogram load from independent
        // relaxed atomics, so after a reset (or mid-update) the histogram
        // can be empty while `total > 0`. The percentile must answer 0,
        // not the catch-all bucket's upper bound (~17 minutes).
        let empty = vec![0u64; BUCKETS];
        assert_eq!(percentile(&empty, 5, 0.50), 0);
        assert_eq!(percentile(&empty, 5, 0.99), 0);
        // And a histogram holding fewer samples than `total` clamps to
        // what it actually has instead of falling through to the top.
        let mut partial = vec![0u64; BUCKETS];
        partial[3] = 2;
        assert_eq!(percentile(&partial, 100, 0.99), bucket_upper(3));
    }

    #[test]
    fn per_endpoint_histograms_isolate_mixed_load() {
        let m = Metrics::new();
        // 90 fast healthz probes pooled with 10 slow cold syntheses: the
        // pooled p90 sees the probes; the per-endpoint views don't mix.
        for _ in 0..90 {
            m.record(Endpoint::Healthz, 200, 10);
        }
        for _ in 0..10 {
            m.record(Endpoint::Synthesize, 200, 100_000);
        }
        let snap = m.snapshot();
        let by = |l: &str| snap.latency_by_endpoint.iter().find(|e| e.label == l).unwrap();
        assert_eq!(by("healthz").served, 90);
        assert_eq!(by("synthesize").served, 10);
        assert!(by("healthz").p99_us < 64, "{}", by("healthz").p99_us);
        assert!(by("synthesize").p50_us >= 100_000, "{}", by("synthesize").p50_us);
        assert_eq!(by("synthesize").sum_us, 1_000_000);
        assert_eq!(by("explore").served, 0);
        // Pooled percentiles are monotone and still answer for the mix.
        assert_eq!(snap.served, 100);
        assert!(snap.p50_us <= snap.p90_us && snap.p90_us <= snap.p99_us);
        assert!(snap.p90_us < 64, "pooled p90 lands in the probe buckets");
        assert!(snap.p99_us >= 100_000, "pooled p99 reaches the synthesis tail");
    }

    #[test]
    fn certification_counters_accumulate() {
        let m = Metrics::new();
        m.record_certification(Some(true), 0);
        m.record_certification(Some(true), 2);
        m.record_certification(Some(false), 3);
        m.record_certification(None, 0);
        let snap = m.snapshot().certification;
        assert_eq!((snap.certified, snap.refuted, snap.uncertifiable), (2, 1, 1));
        assert_eq!(snap.repair_rounds, 5);
    }

    #[test]
    fn phase_timings_accumulate_per_phase() {
        let m = Metrics::new();
        m.record_phase(Phase::Parse, 5);
        m.record_phase(Phase::Parse, 7);
        m.record_phase(Phase::Optimize, 1_000);
        m.record_phase(Phase::Schedule, 300);
        let snap = m.snapshot();
        let by_label = |l: &str| snap.phases.iter().find(|p| p.label == l).unwrap();
        assert_eq!((by_label("parse").total_us, by_label("parse").count), (12, 2));
        assert_eq!((by_label("optimize").total_us, by_label("optimize").count), (1_000, 1));
        assert_eq!((by_label("cpg").total_us, by_label("cpg").count), (0, 0));
        assert_eq!((by_label("schedule").total_us, by_label("schedule").count), (300, 1));
    }
}
