//! The load harness: a multi-threaded closed-loop client for the service.
//!
//! `clients` threads each own a deterministic slice of the request mix
//! (request `i` goes to client `i % clients`, spec `i % specs.len()`), open
//! one connection per request, and record status + latency. The default
//! mix repeats two *equivalent* specs — the Fig. 5 document verbatim and a
//! reformatted twin — so a healthy run both exercises concurrency and
//! demonstrates canonical-key cache hits.

use crate::http::reason_phrase;
use ftes::spec::FIG5_SPEC;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Tunables of a load run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadConfig {
    /// Server address, e.g. `127.0.0.1:8080`.
    pub addr: String,
    /// Concurrent client threads.
    pub clients: usize,
    /// Total requests across all clients.
    pub requests: usize,
    /// The `.ftes` documents cycled through `POST /synthesize`.
    pub specs: Vec<String>,
    /// Per-request IO timeout.
    pub timeout: Duration,
}

impl LoadConfig {
    /// The default mix against `addr`: 8 clients, 50 requests, two
    /// equivalent Fig. 5 specs (verbatim + reformatted) so repeated
    /// requests hit the canonical-key cache.
    pub fn against(addr: impl Into<String>) -> Self {
        LoadConfig {
            addr: addr.into(),
            clients: 8,
            requests: 50,
            specs: default_spec_mix(),
            timeout: Duration::from_secs(30),
        }
    }
}

/// The built-in repeated-spec request mix (two equivalent documents).
pub fn default_spec_mix() -> Vec<String> {
    vec![
        FIG5_SPEC.to_string(),
        // Equivalent after parsing: comments and blank lines only.
        format!("# reformatted twin of the Fig. 5 spec\n\n{FIG5_SPEC}\n# trailing comment\n"),
    ]
}

/// Outcome of one load run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadReport {
    /// Requests attempted.
    pub sent: usize,
    /// Responses with status 200.
    pub ok: usize,
    /// Everything else: non-200 statuses and transport failures.
    pub failed: usize,
    /// Count per received status code (0 = transport failure).
    pub by_status: BTreeMap<u16, usize>,
    /// Wall-clock time of the whole run.
    pub wall: Duration,
    /// Median request latency (µs).
    pub p50_us: u64,
    /// 99th-percentile request latency (µs).
    pub p99_us: u64,
}

impl LoadReport {
    /// Requests per second over the whole run.
    pub fn throughput_rps(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.sent as f64 / secs
    }

    /// Human-readable summary (the `ftes load` output).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} requests in {:.2}s ({:.1} req/s): {} ok, {} failed",
            self.sent,
            self.wall.as_secs_f64(),
            self.throughput_rps(),
            self.ok,
            self.failed,
        );
        for (&status, &count) in &self.by_status {
            let reason = if status == 0 { "transport error" } else { reason_phrase(status) };
            let _ = writeln!(out, "  {status:>3} {reason:<22} {count}");
        }
        let _ = writeln!(out, "  latency p50 {} us, p99 {} us", self.p50_us, self.p99_us);
        out
    }
}

/// Runs the load harness against a running server.
///
/// # Errors
///
/// Returns an error only for configuration problems (no specs, zero
/// clients); individual request failures are *counted*, not propagated —
/// the report is the deliverable.
pub fn run_load(config: &LoadConfig) -> Result<LoadReport, String> {
    if config.specs.is_empty() {
        return Err("load mix has no specs".into());
    }
    if config.clients == 0 || config.requests == 0 {
        return Err("clients and requests must be positive".into());
    }
    let started = Instant::now();
    let results: Vec<(u16, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.clients)
            .map(|client| {
                let config = &config;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut i = client;
                    while i < config.requests {
                        let spec = &config.specs[i % config.specs.len()];
                        let t0 = Instant::now();
                        // Transport failures record as status 0.
                        let status =
                            post_synthesize(&config.addr, spec, config.timeout).unwrap_or_default();
                        out.push((status, t0.elapsed().as_micros() as u64));
                        i += config.clients;
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("load client panicked")).collect()
    });
    let wall = started.elapsed();

    let mut by_status: BTreeMap<u16, usize> = BTreeMap::new();
    let mut latencies: Vec<u64> = Vec::with_capacity(results.len());
    let mut ok = 0usize;
    for (status, micros) in &results {
        *by_status.entry(*status).or_default() += 1;
        latencies.push(*micros);
        if *status == 200 {
            ok += 1;
        }
    }
    latencies.sort_unstable();
    let pick = |p: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let rank = ((latencies.len() as f64 * p).ceil() as usize).clamp(1, latencies.len());
        latencies[rank - 1]
    };
    Ok(LoadReport {
        sent: results.len(),
        ok,
        failed: results.len() - ok,
        by_status,
        wall,
        p50_us: pick(0.50),
        p99_us: pick(0.99),
    })
}

/// One `POST /synthesize` over a fresh connection; returns the status.
fn post_synthesize(addr: &str, spec: &str, timeout: Duration) -> Result<u16, std::io::Error> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    request(&stream, "POST", "/synthesize", spec).map(|(status, _)| status)
}

/// Minimal HTTP/1.1 client: writes one request, reads one response.
/// Shared by the load harness and the service tests.
pub fn request(
    mut stream: &TcpStream,
    method: &str,
    path: &str,
    body: &str,
) -> Result<(u16, String), std::io::Error> {
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: ftes\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    read_response(stream)
}

/// Parses a `(status, body)` response off the wire.
pub fn read_response<R: Read>(stream: R) -> Result<(u16, String), std::io::Error> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::other(format!("bad status line `{}`", line.trim())))?;
    let mut content_length = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::other("truncated response headers"));
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    std::io::Error::other(format!("bad Content-Length `{}`", value.trim()))
                })?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body =
        String::from_utf8(body).map_err(|_| std::io::Error::other("response body is not UTF-8"))?;
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mix_is_two_equivalent_specs() {
        let mix = default_spec_mix();
        assert_eq!(mix.len(), 2);
        let a = ftes::spec::parse_spec(&mix[0]).unwrap();
        let b = ftes::spec::parse_spec(&mix[1]).unwrap();
        assert_eq!(a.canonical_bytes(), b.canonical_bytes());
    }

    #[test]
    fn report_percentiles_and_render() {
        let report = LoadReport {
            sent: 4,
            ok: 3,
            failed: 1,
            by_status: BTreeMap::from([(200, 3), (429, 1)]),
            wall: Duration::from_millis(200),
            p50_us: 100,
            p99_us: 900,
        };
        assert!((report.throughput_rps() - 20.0).abs() < 1e-9);
        let text = report.render();
        assert!(text.contains("4 requests"));
        assert!(text.contains("429"));
        assert!(text.contains("p50 100 us"));
    }

    #[test]
    fn response_parser_round_trips_a_server_response() {
        let raw = "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 2\r\nConnection: close\r\n\r\n{}";
        let (status, body) = read_response(raw.as_bytes()).unwrap();
        assert_eq!((status, body.as_str()), (200, "{}"));
        assert!(read_response("garbage".as_bytes()).is_err());
    }

    #[test]
    fn config_validation() {
        let mut config = LoadConfig::against("127.0.0.1:1");
        config.specs.clear();
        assert!(run_load(&config).is_err());
        let mut config = LoadConfig::against("127.0.0.1:1");
        config.clients = 0;
        assert!(run_load(&config).is_err());
    }
}
