//! The load harness: a multi-threaded closed-loop client for the service.
//!
//! `clients` threads each own a deterministic slice of the request mix
//! (request `i` goes to client `i % clients`, spec `i % specs.len()`), open
//! one connection per request, and record status + latency. The default
//! mix repeats two *equivalent* specs — the Fig. 5 document verbatim and a
//! reformatted twin — so a healthy run both exercises concurrency and
//! demonstrates canonical-key cache hits.
//!
//! `429` responses are not hard failures: the harness honors the server's
//! `Retry-After` header with bounded backoff and counts the retries, so an
//! overloaded-but-recovering daemon scores as slow, not broken. With
//! `jobs_requests > 0` the harness additionally exercises the asynchronous
//! path end-to-end — submit via `POST /jobs`, poll `GET /jobs/<id>` to a
//! terminal state — and reports submit-to-terminal latency percentiles
//! alongside the synchronous mix.

use crate::http::reason_phrase;
use ftes::spec::FIG5_SPEC;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Maximum resubmission attempts after a `429` before the request counts
/// as failed.
const MAX_RETRIES: usize = 5;
/// Upper bound on one `Retry-After` sleep (a misconfigured server must
/// not be able to stall the harness for minutes per request).
const MAX_BACKOFF: Duration = Duration::from_secs(2);

/// Tunables of a load run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadConfig {
    /// Server address, e.g. `127.0.0.1:8080`.
    pub addr: String,
    /// Concurrent client threads.
    pub clients: usize,
    /// Total requests across all clients.
    pub requests: usize,
    /// Asynchronous jobs submitted on top of the synchronous mix: each is
    /// a `POST /jobs` submit followed by `GET /jobs/<id>` polling until
    /// the job reaches a terminal state.
    pub jobs_requests: usize,
    /// The `.ftes` documents cycled through `POST /synthesize`.
    pub specs: Vec<String>,
    /// Per-request IO timeout.
    pub timeout: Duration,
}

impl LoadConfig {
    /// The default mix against `addr`: 8 clients, 50 requests, two
    /// equivalent Fig. 5 specs (verbatim + reformatted) so repeated
    /// requests hit the canonical-key cache. No asynchronous jobs.
    pub fn against(addr: impl Into<String>) -> Self {
        LoadConfig {
            addr: addr.into(),
            clients: 8,
            requests: 50,
            jobs_requests: 0,
            specs: default_spec_mix(),
            timeout: Duration::from_secs(30),
        }
    }
}

/// The built-in repeated-spec request mix (two equivalent documents).
pub fn default_spec_mix() -> Vec<String> {
    vec![
        FIG5_SPEC.to_string(),
        // Equivalent after parsing: comments and blank lines only.
        format!("# reformatted twin of the Fig. 5 spec\n\n{FIG5_SPEC}\n# trailing comment\n"),
    ]
}

/// Submit-to-terminal accounting for the asynchronous job slice of a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobsReport {
    /// Jobs whose submission was accepted (`202`).
    pub submitted: usize,
    /// Jobs observed in the `completed` state.
    pub completed: usize,
    /// Everything else: rejected submissions, failed or cancelled jobs,
    /// polls that timed out.
    pub failed: usize,
    /// Median submit-to-terminal latency (µs).
    pub p50_us: u64,
    /// 99th-percentile submit-to-terminal latency (µs).
    pub p99_us: u64,
}

/// One endpoint's server-side accounting over a load run, computed as the
/// difference between a `/metrics` scrape before the run and one after.
///
/// The percentiles are the server's lifetime histogram percentiles at the
/// closing scrape (histograms only accumulate), while `requests`,
/// `served` and `mean_us` are true deltas attributable to this run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EndpointDelta {
    /// Endpoint label as reported by `/metrics` (e.g. `synthesize`).
    pub label: String,
    /// Requests routed to the endpoint during the run.
    pub requests: u64,
    /// Responses measured by the latency histogram during the run.
    pub served: u64,
    /// Mean server-side latency of this run's responses (µs).
    pub mean_us: u64,
    /// Server-side median latency (µs, lifetime histogram).
    pub p50_us: u64,
    /// Server-side 90th percentile latency (µs, lifetime histogram).
    pub p90_us: u64,
    /// Server-side 99th percentile latency (µs, lifetime histogram).
    pub p99_us: u64,
}

/// Outcome of one load run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadReport {
    /// Requests attempted.
    pub sent: usize,
    /// Responses with status 200.
    pub ok: usize,
    /// Everything else: non-200 statuses and transport failures.
    pub failed: usize,
    /// `429` responses that were retried after honoring `Retry-After`
    /// (each counted request reports only its final status).
    pub retried: usize,
    /// Count per received final status code (0 = transport failure).
    pub by_status: BTreeMap<u16, usize>,
    /// Wall-clock time of the whole run.
    pub wall: Duration,
    /// Median request latency (µs).
    pub p50_us: u64,
    /// 99th-percentile request latency (µs).
    pub p99_us: u64,
    /// The asynchronous job slice (`None` when `jobs_requests` was 0).
    pub jobs: Option<JobsReport>,
    /// Server-side per-endpoint accounting from `/metrics` scraped before
    /// and after the run (empty when either scrape failed). Client-side
    /// percentiles above include connect + transfer time; these do not.
    pub endpoints: Vec<EndpointDelta>,
}

impl LoadReport {
    /// Requests per second over the whole run.
    pub fn throughput_rps(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.sent as f64 / secs
    }

    /// Human-readable summary (the `ftes load` output).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} requests in {:.2}s ({:.1} req/s): {} ok, {} failed",
            self.sent,
            self.wall.as_secs_f64(),
            self.throughput_rps(),
            self.ok,
            self.failed,
        );
        for (&status, &count) in &self.by_status {
            let reason = if status == 0 { "transport error" } else { reason_phrase(status) };
            let _ = writeln!(out, "  {status:>3} {reason:<22} {count}");
        }
        if self.retried > 0 {
            let _ = writeln!(out, "  retried after 429 (Retry-After honored): {}", self.retried);
        }
        let _ = writeln!(out, "  latency p50 {} us, p99 {} us", self.p50_us, self.p99_us);
        if !self.endpoints.is_empty() {
            let _ = writeln!(out, "  per-endpoint (server-side, /metrics delta):");
            for ep in &self.endpoints {
                let _ = writeln!(
                    out,
                    "    {:<11} {} requests, {} served, mean {} us, p50 {} us, p90 {} us, p99 {} us",
                    ep.label, ep.requests, ep.served, ep.mean_us, ep.p50_us, ep.p90_us, ep.p99_us,
                );
            }
        }
        if let Some(jobs) = &self.jobs {
            let _ = writeln!(
                out,
                "  jobs: {} submitted, {} completed, {} failed",
                jobs.submitted, jobs.completed, jobs.failed,
            );
            let _ = writeln!(
                out,
                "  job submit-to-terminal p50 {} us, p99 {} us",
                jobs.p50_us, jobs.p99_us,
            );
        }
        out
    }
}

/// Runs the load harness against a running server.
///
/// # Errors
///
/// Returns an error only for configuration problems (no specs, zero
/// clients); individual request failures are *counted*, not propagated —
/// the report is the deliverable.
pub fn run_load(config: &LoadConfig) -> Result<LoadReport, String> {
    if config.specs.is_empty() {
        return Err("load mix has no specs".into());
    }
    if config.clients == 0 || config.requests == 0 {
        return Err("clients and requests must be positive".into());
    }
    let before = scrape_metrics(&config.addr, config.timeout);
    let started = Instant::now();
    let results: Vec<(u16, u64, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.clients)
            .map(|client| {
                let config = &config;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut i = client;
                    while i < config.requests {
                        let spec = &config.specs[i % config.specs.len()];
                        let t0 = Instant::now();
                        // Transport failures record as status 0.
                        let (status, retries) =
                            post_synthesize(&config.addr, spec, config.timeout).unwrap_or((0, 0));
                        out.push((status, t0.elapsed().as_micros() as u64, retries));
                        i += config.clients;
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("load client panicked")).collect()
    });

    let jobs = if config.jobs_requests > 0 { Some(run_jobs_slice(config)) } else { None };
    let wall = started.elapsed();
    // Workers record a request *after* replying to it, so the closing
    // scrape can race the final counter ticks — retry briefly until the
    // run's own requests are all visible.
    let sent = results.len() as u64;
    let endpoints = before
        .and_then(|before| {
            let deadline = Instant::now() + Duration::from_millis(500);
            loop {
                let after = scrape_metrics(&config.addr, config.timeout)?;
                let deltas = endpoint_deltas(&before, &after);
                let counted: u64 = deltas.iter().map(|d| d.requests).sum();
                if counted > sent || Instant::now() >= deadline {
                    return Some(deltas);
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        })
        .unwrap_or_default();

    let mut by_status: BTreeMap<u16, usize> = BTreeMap::new();
    let mut latencies: Vec<u64> = Vec::with_capacity(results.len());
    let mut ok = 0usize;
    let mut retried = 0usize;
    for (status, micros, retries) in &results {
        *by_status.entry(*status).or_default() += 1;
        latencies.push(*micros);
        retried += retries;
        if *status == 200 {
            ok += 1;
        }
    }
    latencies.sort_unstable();
    Ok(LoadReport {
        sent: results.len(),
        ok,
        failed: results.len() - ok,
        retried,
        by_status,
        wall,
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        jobs,
        endpoints,
    })
}

/// One endpoint's numbers out of a parsed `/metrics` scrape.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct EndpointScrape {
    requests: u64,
    served: u64,
    sum_us: u64,
    p50_us: u64,
    p90_us: u64,
    p99_us: u64,
}

/// `GET /metrics` parsed into per-endpoint numbers; `None` on any
/// transport or parse failure (the run proceeds without the breakdown).
fn scrape_metrics(addr: &str, timeout: Duration) -> Option<BTreeMap<String, EndpointScrape>> {
    let (status, _, body) = one_request(addr, "GET", "/metrics", "", timeout).ok()?;
    if status != 200 {
        return None;
    }
    let json = ftes::obs::validate::parse_json(&body).ok()?;
    let mut out: BTreeMap<String, EndpointScrape> = BTreeMap::new();
    if let Some(ftes::obs::validate::Json::Obj(requests)) = json.get("requests_by_endpoint") {
        for (label, count) in requests {
            out.entry(label.clone()).or_default().requests = count.as_num()? as u64;
        }
    }
    if let Some(ftes::obs::validate::Json::Obj(latency)) = json.get("latency_by_endpoint") {
        for (label, stats) in latency {
            let field = |key: &str| stats.get(key).and_then(|v| v.as_num()).map(|v| v as u64);
            let entry = out.entry(label.clone()).or_default();
            entry.served = field("served")?;
            entry.sum_us = field("sum_us")?;
            entry.p50_us = field("p50")?;
            entry.p90_us = field("p90")?;
            entry.p99_us = field("p99")?;
        }
    }
    Some(out)
}

/// Differences two `/metrics` scrapes into the per-endpoint report rows
/// (endpoints untouched by the run are dropped; `/metrics` itself shows
/// up with at least the closing scrape's own request).
fn endpoint_deltas(
    before: &BTreeMap<String, EndpointScrape>,
    after: &BTreeMap<String, EndpointScrape>,
) -> Vec<EndpointDelta> {
    let mut out = Vec::new();
    for (label, now) in after {
        let base = before.get(label).cloned().unwrap_or_default();
        let requests = now.requests.saturating_sub(base.requests);
        let served = now.served.saturating_sub(base.served);
        if requests == 0 && served == 0 {
            continue;
        }
        let sum = now.sum_us.saturating_sub(base.sum_us);
        out.push(EndpointDelta {
            label: label.clone(),
            requests,
            served,
            mean_us: sum.checked_div(served).unwrap_or(0),
            p50_us: now.p50_us,
            p90_us: now.p90_us,
            p99_us: now.p99_us,
        });
    }
    out
}

/// The `p`-quantile of an ascending-sorted latency list (0 when empty).
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// The asynchronous slice of a load run: submit `jobs_requests` synthesis
/// jobs (same client-thread slicing as the synchronous mix), poll each to
/// a terminal state, record submit-to-terminal latency.
fn run_jobs_slice(config: &LoadConfig) -> JobsReport {
    let outcomes: Vec<Option<(bool, u64)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.clients)
            .map(|client| {
                let config = &config;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut i = client;
                    while i < config.jobs_requests {
                        let spec = &config.specs[i % config.specs.len()];
                        out.push(submit_and_await(&config.addr, spec, config.timeout));
                        i += config.clients;
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("load client panicked")).collect()
    });
    let submitted = outcomes.iter().filter(|o| o.is_some()).count();
    let completed = outcomes.iter().filter(|o| matches!(o, Some((true, _)))).count();
    let mut latencies: Vec<u64> =
        outcomes.iter().filter_map(|o| o.map(|(_, micros)| micros)).collect();
    latencies.sort_unstable();
    JobsReport {
        submitted,
        completed,
        failed: outcomes.len() - completed,
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
    }
}

/// One end-to-end job: `POST /jobs`, then `GET /jobs/<id>` until terminal.
/// `None` means the submission itself never got a `202` (after backoff);
/// otherwise `(reached_completed, submit_to_terminal_micros)`.
fn submit_and_await(addr: &str, spec: &str, timeout: Duration) -> Option<(bool, u64)> {
    let t0 = Instant::now();
    let mut attempt = 0;
    let (status, body) = loop {
        let reply = one_request(addr, "POST", "/jobs", spec, timeout).ok()?;
        if reply.0 != 429 || attempt >= MAX_RETRIES {
            break (reply.0, reply.2);
        }
        attempt += 1;
        std::thread::sleep(backoff(reply.1));
    };
    if status != 202 {
        return None;
    }
    let id = parse_job_id(&body)?;
    let path = format!("/jobs/{id}");
    let deadline = Instant::now() + timeout;
    loop {
        let (status, _, body) = one_request(addr, "GET", &path, "", timeout).ok()?;
        if status == 200 {
            for terminal in ["\"completed\"", "\"failed\"", "\"cancelled\""] {
                if body.contains(&format!("\"state\":{terminal}")) {
                    let done = terminal == "\"completed\"";
                    return Some((done, t0.elapsed().as_micros() as u64));
                }
            }
        }
        if Instant::now() >= deadline {
            return None;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Extracts the `"job":<id>` field from a submission body.
fn parse_job_id(body: &str) -> Option<u64> {
    let rest = body.split("\"job\":").nth(1)?;
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// The sleep for one `429` retry: the server's `Retry-After` when present,
/// bounded by [`MAX_BACKOFF`]; a short fixed pause otherwise.
fn backoff(retry_after: Option<u64>) -> Duration {
    match retry_after {
        Some(secs) => Duration::from_secs(secs).min(MAX_BACKOFF),
        None => Duration::from_millis(100),
    }
}

/// One `POST /synthesize` over a fresh connection; honors `Retry-After`
/// backoff on `429` up to [`MAX_RETRIES`] times. Returns the final status
/// and how many retries were spent.
fn post_synthesize(
    addr: &str,
    spec: &str,
    timeout: Duration,
) -> Result<(u16, usize), std::io::Error> {
    let mut retries = 0;
    loop {
        let (status, retry_after, _) = one_request(addr, "POST", "/synthesize", spec, timeout)?;
        if status != 429 || retries >= MAX_RETRIES {
            return Ok((status, retries));
        }
        retries += 1;
        std::thread::sleep(backoff(retry_after));
    }
}

/// One request over a fresh connection: `(status, retry_after, body)`.
fn one_request(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
    timeout: Duration,
) -> Result<(u16, Option<u64>, String), std::io::Error> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: ftes\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len(),
    );
    let mut w = &stream;
    w.write_all(head.as_bytes())?;
    w.write_all(body.as_bytes())?;
    w.flush()?;
    read_response_full(&stream)
}

/// Minimal HTTP/1.1 client: writes one request, reads one response.
/// Shared by the load harness and the service tests.
pub fn request(
    mut stream: &TcpStream,
    method: &str,
    path: &str,
    body: &str,
) -> Result<(u16, String), std::io::Error> {
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: ftes\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    read_response(stream)
}

/// Parses a `(status, body)` response off the wire.
pub fn read_response<R: Read>(stream: R) -> Result<(u16, String), std::io::Error> {
    read_response_full(stream).map(|(status, _, body)| (status, body))
}

/// Parses a `(status, retry_after, body)` response off the wire — the
/// `Retry-After` header (integer seconds) drives the harness's backoff.
pub fn read_response_full<R: Read>(
    stream: R,
) -> Result<(u16, Option<u64>, String), std::io::Error> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::other(format!("bad status line `{}`", line.trim())))?;
    let mut content_length = 0usize;
    let mut retry_after = None;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::other("truncated response headers"));
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    std::io::Error::other(format!("bad Content-Length `{}`", value.trim()))
                })?;
            } else if name.eq_ignore_ascii_case("retry-after") {
                retry_after = value.trim().parse().ok();
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body =
        String::from_utf8(body).map_err(|_| std::io::Error::other("response body is not UTF-8"))?;
    Ok((status, retry_after, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mix_is_two_equivalent_specs() {
        let mix = default_spec_mix();
        assert_eq!(mix.len(), 2);
        let a = ftes::spec::parse_spec(&mix[0]).unwrap();
        let b = ftes::spec::parse_spec(&mix[1]).unwrap();
        assert_eq!(a.canonical_bytes(), b.canonical_bytes());
    }

    #[test]
    fn report_percentiles_and_render() {
        let report = LoadReport {
            sent: 4,
            ok: 3,
            failed: 1,
            retried: 2,
            by_status: BTreeMap::from([(200, 3), (429, 1)]),
            wall: Duration::from_millis(200),
            p50_us: 100,
            p99_us: 900,
            jobs: Some(JobsReport {
                submitted: 2,
                completed: 2,
                failed: 0,
                p50_us: 1500,
                p99_us: 2500,
            }),
            endpoints: vec![EndpointDelta {
                label: "synthesize".to_string(),
                requests: 3,
                served: 3,
                mean_us: 450,
                p50_us: 100,
                p90_us: 700,
                p99_us: 900,
            }],
        };
        assert!((report.throughput_rps() - 20.0).abs() < 1e-9);
        let text = report.render();
        assert!(text.contains("4 requests"));
        assert!(text.contains("429"));
        assert!(text.contains("p50 100 us"));
        assert!(text.contains("retried after 429"));
        assert!(text.contains("per-endpoint (server-side, /metrics delta):"));
        assert!(text.contains("synthesize  3 requests, 3 served, mean 450 us"));
        assert!(text.contains("jobs: 2 submitted, 2 completed, 0 failed"));
        assert!(text.contains("job submit-to-terminal p50 1500 us"));
    }

    #[test]
    fn response_parser_round_trips_a_server_response() {
        let raw = "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 2\r\nConnection: close\r\n\r\n{}";
        let (status, body) = read_response(raw.as_bytes()).unwrap();
        assert_eq!((status, body.as_str()), (200, "{}"));
        assert!(read_response("garbage".as_bytes()).is_err());
    }

    #[test]
    fn retry_after_header_is_parsed_case_insensitively() {
        let raw = "HTTP/1.1 429 Too Many Requests\r\nretry-after: 3\r\nContent-Length: 2\r\n\r\n{}";
        let (status, retry_after, _) = read_response_full(raw.as_bytes()).unwrap();
        assert_eq!((status, retry_after), (429, Some(3)));
        assert_eq!(backoff(Some(100)), MAX_BACKOFF, "backoff is bounded");
        assert_eq!(backoff(None), Duration::from_millis(100));
    }

    #[test]
    fn job_ids_parse_out_of_submission_bodies() {
        assert_eq!(parse_job_id(r#"{"job":17,"state":"queued"}"#), Some(17));
        assert_eq!(parse_job_id(r#"{"error":"nope"}"#), None);
    }

    #[test]
    fn config_validation() {
        let mut config = LoadConfig::against("127.0.0.1:1");
        config.specs.clear();
        assert!(run_load(&config).is_err());
        let mut config = LoadConfig::against("127.0.0.1:1");
        config.clients = 0;
        assert!(run_load(&config).is_err());
    }
}
