//! Sharded LRU cache from canonical request keys to rendered response
//! bodies.
//!
//! The service's unit of work — a full synthesis or exploration run — is
//! many orders of magnitude more expensive than rendering its JSON body,
//! so the cache stores finished bodies verbatim: a hit re-sends the exact
//! bytes of the first computation, which is also what makes "repeated or
//! equivalent requests are answered byte-identically" a cache property
//! rather than a hope.
//!
//! Keys are canonical, collision-free byte encodings (for `/synthesize`,
//! [`ftes::spec::SystemSpec::canonical_bytes`]; for `/explore`, the
//! encoded semantic suite parameters) with a precomputed FNV-1a hash for
//! shard selection — the same recipe as `ftes-explore`'s estimate cache.
//! Eviction is least-recently-used per shard, tracked with a monotonic
//! use-stamp; shards are small (capacity / shards entries), so the O(cap)
//! eviction scan is noise next to a synthesis run.

use crate::sync;
use ftes::explore::{fnv1a64, CacheStats};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// A canonical, collision-free cache key with a precomputed hash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheKey {
    bytes: Vec<u8>,
    hash: u64,
}

impl CacheKey {
    /// Builds a key from an endpoint namespace and the request's canonical
    /// bytes (the namespace keeps `/synthesize` and `/explore` entries for
    /// coincidentally equal encodings apart).
    pub fn new(namespace: &str, canonical: &[u8]) -> Self {
        let mut bytes = Vec::with_capacity(namespace.len() + 1 + canonical.len());
        bytes.extend_from_slice(namespace.as_bytes());
        bytes.push(0);
        bytes.extend_from_slice(canonical);
        let hash = fnv1a64(&bytes);
        CacheKey { bytes, hash }
    }
}

impl std::hash::Hash for CacheKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

struct Entry {
    status: u16,
    body: Arc<String>,
    last_used: u64,
}

type Shard = Mutex<HashMap<CacheKey, Entry>>;

/// Completion signal for one in-flight computation (single-flight).
#[derive(Default)]
struct InFlight {
    done: Mutex<bool>,
    cv: Condvar,
}

/// The sharded LRU response cache.
pub struct ResultCache {
    shards: Box<[Shard]>,
    capacity_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    clock: AtomicU64,
    /// Single-flight table: keys currently being computed. Followers wait
    /// on the leader's completion instead of recomputing — a synthesis run
    /// is orders of magnitude more expensive than the wait.
    inflight: Mutex<HashMap<CacheKey, Arc<InFlight>>>,
}

/// Outcome of [`ResultCache::lookup`].
pub enum Lookup<'a> {
    /// `(status, body)` was cached (or just produced by another request's
    /// leader). Deterministic failures cache like successes: the handlers'
    /// replies are pure functions of the request, a 422 included, so
    /// repeating an expensive-but-failing request must not re-run it.
    Hit(u16, Arc<String>),
    /// The caller is the leader for this key: it must compute the reply
    /// and either [`FlightGuard::complete`] it or drop the guard if the
    /// outcome must not be cached (panic path).
    Miss(FlightGuard<'a>),
}

/// Leadership over one in-flight key. Dropping without
/// [`complete`](FlightGuard::complete) (error or panic path) releases the
/// key and wakes followers, who then retry — one of them becomes the next
/// leader.
pub struct FlightGuard<'a> {
    cache: &'a ResultCache,
    key: CacheKey,
}

impl FlightGuard<'_> {
    /// Publishes the computed reply to the cache, then releases the
    /// flight (followers waking up find the entry).
    pub fn complete(self, status: u16, body: Arc<String>) {
        self.cache.insert(self.key.clone(), status, body);
        // Drop runs next and wakes the followers.
    }
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        let flight = sync::lock(&self.cache.inflight).remove(&self.key);
        if let Some(flight) = flight {
            *sync::lock(&flight.done) = true;
            flight.cv.notify_all();
        }
    }
}

impl ResultCache {
    /// A cache holding roughly `capacity` bodies across `shards` shards
    /// (each shard holds at least one).
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        ResultCache {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            capacity_per_shard: capacity.div_ceil(shards).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            clock: AtomicU64::new(0),
            inflight: Mutex::new(HashMap::new()),
        }
    }

    fn shard(&self, key: &CacheKey) -> &Shard {
        &self.shards[(key.hash % self.shards.len() as u64) as usize]
    }

    /// Looks `key` up, refreshing its recency on a hit. Misses are counted
    /// here so the hit rate reflects lookups, not insertions.
    pub fn get(&self, key: &CacheKey) -> Option<(u16, Arc<String>)> {
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut shard = sync::lock(self.shard(key));
        match shard.get_mut(key) {
            Some(entry) => {
                entry.last_used = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some((entry.status, Arc::clone(&entry.body)))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Lock-and-look without touching counters or recency (used for the
    /// single-flight re-check, which must not distort hit/miss stats).
    fn peek(&self, key: &CacheKey) -> Option<(u16, Arc<String>)> {
        sync::lock(self.shard(key)).get(key).map(|entry| (entry.status, Arc::clone(&entry.body)))
    }

    /// Inserts a computed body, evicting the shard's least-recently-used
    /// entry when full. Two threads racing to fill the same key both
    /// computed identical bytes (handlers are deterministic), so last
    /// write wins without consequence.
    pub fn insert(&self, key: CacheKey, status: u16, body: Arc<String>) {
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut shard = sync::lock(self.shard(&key));
        if !shard.contains_key(&key) && shard.len() >= self.capacity_per_shard {
            if let Some(evict) =
                shard.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k.clone())
            {
                shard.remove(&evict);
            }
        }
        shard.insert(key, Entry { status, body, last_used: stamp });
    }

    /// Single-flight lookup: a hit returns the body; a miss makes the
    /// caller the *leader* for the key while concurrent requests for the
    /// same key block until the leader completes (then read its result
    /// from cache) instead of each re-running the computation.
    pub fn lookup(&self, key: &CacheKey) -> Lookup<'_> {
        loop {
            if let Some((status, body)) = self.get(key) {
                return Lookup::Hit(status, body);
            }
            let flight = {
                let mut inflight = sync::lock(&self.inflight);
                // Re-check under the table lock: a leader completing
                // between our miss and this point first inserts, then
                // releases its flight — so a peek here is exact and no
                // second computation can start for a populated key.
                if let Some((status, body)) = self.peek(key) {
                    return Lookup::Hit(status, body);
                }
                match inflight.get(key) {
                    Some(flight) => Arc::clone(flight),
                    None => {
                        inflight.insert(key.clone(), Arc::new(InFlight::default()));
                        return Lookup::Miss(FlightGuard { cache: self, key: key.clone() });
                    }
                }
            };
            // Follower: wait for the leader, then loop — normally the next
            // `get` hits; if the leader failed, one follower takes over.
            let mut done = sync::lock(&flight.done);
            while !*done {
                done = sync::wait(&flight.cv, done);
            }
        }
    }

    /// Hit/miss/size counters (reuses the explore-layer snapshot type so
    /// reports aggregate uniformly).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.shards.iter().map(|s| sync::lock(s).len()).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(s: &str) -> Arc<String> {
        Arc::new(s.to_string())
    }

    #[test]
    fn namespaces_and_payloads_separate_keys() {
        let a = CacheKey::new("synthesize/v1", b"abc");
        let b = CacheKey::new("explore/v1", b"abc");
        let c = CacheKey::new("synthesize/v1", b"abd");
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, CacheKey::new("synthesize/v1", b"abc"));
    }

    #[test]
    fn hit_and_miss_accounting() {
        let cache = ResultCache::new(8, 2);
        let key = CacheKey::new("t", b"k1");
        assert!(cache.get(&key).is_none());
        cache.insert(key.clone(), 200, body("v1"));
        assert_eq!(cache.get(&key).unwrap().1.as_str(), "v1");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!(stats.hit_rate() > 0.49);
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        // Single shard, capacity 2: deterministic eviction order.
        let cache = ResultCache::new(2, 1);
        let (k1, k2, k3) =
            (CacheKey::new("t", b"1"), CacheKey::new("t", b"2"), CacheKey::new("t", b"3"));
        cache.insert(k1.clone(), 200, body("1"));
        cache.insert(k2.clone(), 200, body("2"));
        // Touch k1 so k2 becomes the LRU victim.
        assert!(cache.get(&k1).is_some());
        cache.insert(k3.clone(), 200, body("3"));
        assert!(cache.get(&k1).is_some(), "recently used survives");
        assert!(cache.get(&k2).is_none(), "LRU entry evicted");
        assert!(cache.get(&k3).is_some());
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn single_flight_computes_once_for_concurrent_misses() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cache = ResultCache::new(8, 2);
        let key = CacheKey::new("t", b"hot");
        let computed = AtomicUsize::new(0);
        let results: Vec<Arc<String>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let (cache, key, computed) = (&cache, &key, &computed);
                    scope.spawn(move || match cache.lookup(key) {
                        Lookup::Hit(_, body) => body,
                        Lookup::Miss(guard) => {
                            computed.fetch_add(1, Ordering::Relaxed);
                            // Give followers time to pile onto the flight.
                            std::thread::sleep(std::time::Duration::from_millis(30));
                            let body = body("expensive");
                            guard.complete(200, Arc::clone(&body));
                            body
                        }
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Not strictly 1 (a thread may start after the leader finished and
        // the entry is cached — that is a plain hit, not a computation),
        // but piling 8 threads onto one cold key must not compute 8 times.
        assert_eq!(computed.load(Ordering::Relaxed), 1, "followers must not recompute");
        for r in &results {
            assert_eq!(r.as_str(), "expensive");
        }
    }

    #[test]
    fn failed_leader_hands_leadership_to_a_follower() {
        let cache = ResultCache::new(8, 1);
        let key = CacheKey::new("t", b"flaky");
        // Leader errors out: guard dropped without complete().
        match cache.lookup(&key) {
            Lookup::Miss(guard) => drop(guard),
            Lookup::Hit(..) => panic!("cold key cannot hit"),
        }
        // The key is released: the next lookup leads again. A 422 caches
        // like a success (negative caching of deterministic failures).
        match cache.lookup(&key) {
            Lookup::Miss(guard) => guard.complete(422, body("infeasible")),
            Lookup::Hit(..) => panic!("abandoned flight must not populate the cache"),
        }
        assert!(matches!(cache.lookup(&key), Lookup::Hit(422, b) if b.as_str() == "infeasible"));
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict_neighbors() {
        let cache = ResultCache::new(2, 1);
        let (k1, k2) = (CacheKey::new("t", b"1"), CacheKey::new("t", b"2"));
        cache.insert(k1.clone(), 200, body("a"));
        cache.insert(k2.clone(), 200, body("b"));
        cache.insert(k1.clone(), 200, body("a2"));
        assert_eq!(cache.get(&k1).unwrap().1.as_str(), "a2");
        assert!(cache.get(&k2).is_some());
    }
}
