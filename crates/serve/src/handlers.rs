//! Endpoint handlers: routing, request-body parsing and deterministic JSON
//! rendering.
//!
//! Every body a handler renders is a pure function of the parsed request —
//! no timestamps, no host state — which is what lets the result cache
//! replay bodies byte-identically and the determinism tests diff
//! concurrent responses. (`/healthz` and `/metrics` report live state and
//! are never cached.)

use crate::cache::{CacheKey, Lookup};
use crate::http::{error_body, Request};
use crate::metrics::{Endpoint, Phase};
use crate::server::Shared;
use ftes::explore::{
    paper_grid, run_suite, suite_to_json, EngineKind, PortfolioConfig, ScenarioPoint, SuiteConfig,
    VerifyConfig,
};
use ftes::json::JsonWriter;
use ftes::model::Time;
use ftes::sched::export::tables_to_csv;
use ftes::sched::SystemEvaluator;
use ftes::spec::{parse_spec, SystemSpec};
use ftes::{synthesize_system_timed, Certification, FlowConfig, SystemConfiguration};
use std::sync::Arc;
use std::time::Instant;

/// A handler's verdict: status code plus rendered JSON body.
pub struct Reply {
    /// HTTP status code.
    pub status: u16,
    /// JSON body (shared so cached bodies are not copied per request).
    pub body: Arc<String>,
}

impl Reply {
    fn new(status: u16, body: String) -> Self {
        Reply { status, body: Arc::new(body) }
    }

    fn err(status: u16, message: &str) -> Self {
        Reply::new(status, error_body(status, message))
    }
}

/// Routes one parsed request to its handler.
pub fn route(shared: &Shared, req: &Request) -> (Endpoint, Reply) {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/synthesize") => (Endpoint::Synthesize, synthesize(shared, &req.body)),
        ("POST", "/explore") => (Endpoint::Explore, explore(shared, &req.body)),
        ("GET", "/corpus") => (Endpoint::Corpus, corpus_catalog()),
        ("GET", "/healthz") => (Endpoint::Healthz, healthz(shared)),
        ("GET", "/metrics") => (Endpoint::Metrics, metrics(shared)),
        (_, "/synthesize" | "/explore" | "/corpus" | "/healthz" | "/metrics") => {
            (Endpoint::Other, Reply::err(405, "method not allowed"))
        }
        _ => (Endpoint::Other, Reply::err(404, "no such endpoint")),
    }
}

/// `POST /synthesize`: body is a `.ftes` document; the reply carries the
/// schedule summary, the policy assignment and (when the FT-CPG fits the
/// size budget) the exact schedule tables as CSV — byte-identical to the
/// `ftes <spec> --csv` CLI output for the same spec.
fn synthesize(shared: &Shared, body: &[u8]) -> Reply {
    let parse_started = Instant::now();
    let Ok(text) = std::str::from_utf8(body) else {
        return Reply::err(400, "body is not UTF-8");
    };
    let spec = match parse_spec(text) {
        Ok(spec) => spec,
        Err(e) => return Reply::err(400, &format!("spec: {e}")),
    };
    shared.metrics.record_phase(Phase::Parse, parse_started.elapsed().as_micros() as u64);
    let key = CacheKey::new("synthesize/v1", &spec.canonical_bytes());
    // Single-flight: concurrent requests for the same (equivalent) spec
    // wait for one synthesis instead of each running their own.
    let guard = match shared.cache.lookup(&key) {
        Lookup::Hit(status, body) => return Reply { status, body },
        Lookup::Miss(guard) => guard,
    };
    // Evaluator bank: a repeated (app, platform, k) on a warm daemon skips
    // the kernel construction even when strategy/transparency differ (the
    // response cache only collapses fully identical specs).
    let eval_key = spec.evaluator_bytes();
    let mut evaluator = shared
        .evaluators
        .checkout(&eval_key)
        .unwrap_or_else(|| SystemEvaluator::new(&spec.app, &spec.platform, spec.fault_model.k()));
    let config = FlowConfig { strategy: spec.strategy, ..FlowConfig::default() };
    let reply =
        match synthesize_system_timed(&mut evaluator, spec.fault_model, &spec.transparency, config)
        {
            Ok((psi, timings)) => {
                shared.metrics.record_phase(Phase::Optimize, timings.optimize.as_micros() as u64);
                shared.metrics.record_phase(Phase::Certify, timings.certify.as_micros() as u64);
                shared.metrics.record_phase(Phase::Cpg, timings.cpg.as_micros() as u64);
                shared.metrics.record_phase(Phase::Schedule, timings.schedule.as_micros() as u64);
                let verdict = match psi.certification {
                    Certification::Certified { .. } => Some(true),
                    Certification::Refuted { .. } => Some(false),
                    Certification::Uncertifiable => None,
                };
                shared.metrics.record_certification(verdict, psi.repair_rounds as u64);
                Reply { status: 200, body: Arc::new(render_synthesis(&spec, &psi)) }
            }
            // A 422 is as deterministic as a success: cache it so a repeated
            // expensive-but-infeasible spec is not a work-amplification vector.
            Err(e) => Reply::err(422, &format!("synthesis: {e}")),
        };
    shared.evaluators.checkin(eval_key, evaluator);
    guard.complete(reply.status, Arc::clone(&reply.body));
    reply
}

/// Renders the `/synthesize` response body.
fn render_synthesis(spec: &SystemSpec, psi: &SystemConfiguration) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("strategy");
    w.string(&spec.strategy.to_string());
    w.key("k");
    w.number_u64(spec.fault_model.k() as u64);
    w.key("processes");
    w.number_usize(spec.app.process_count());
    w.key("nodes");
    w.number_usize(spec.platform.architecture().node_count());
    w.key("schedulable");
    w.bool(psi.schedulable);
    w.key("deadline");
    w.number_i64(spec.app.deadline().units());
    w.key("worst_case");
    w.number_i64(psi.worst_case_length().units());
    w.key("fault_free");
    w.number_i64(psi.estimate.fault_free_length.units());
    w.key("estimated_worst_case");
    w.number_i64(psi.estimate.worst_case_length.units());
    w.key("recovery_slack");
    w.number_i64(psi.estimate.recovery_slack().units());
    let fault_free = psi.estimate.fault_free_length;
    w.key("slack_pct");
    if fault_free > Time::ZERO {
        w.number_f64(100.0 * psi.estimate.recovery_slack().as_f64() / fault_free.as_f64(), 2);
    } else {
        w.number_f64(0.0, 2);
    }
    w.key("policies");
    w.begin_array();
    for (pid, policy) in psi.policies.iter() {
        w.begin_object();
        w.key("process");
        w.string(spec.app.process(pid).name());
        w.key("policy");
        w.string(&format!("{:?}", policy.kind()));
        w.key("node");
        w.number_usize(psi.mapping.node_of(pid).index());
        w.key("replicas");
        w.number_u64(policy.replica_count() as u64);
        w.end_object();
    }
    w.end_array();
    w.key("exact");
    w.bool(psi.exact.is_some());
    // The certify-and-repair contract: `certified:true` incumbents are
    // exact-schedulable; everything else ships explicitly tagged with the
    // exact length when one was computed.
    w.key("certified");
    w.bool(psi.certification.is_certified());
    w.key("exact_len");
    match psi.certification.exact_len() {
        Some(len) => w.number_i64(len.units()),
        None => w.null(),
    }
    w.key("repair_rounds");
    w.number_u64(psi.repair_rounds as u64);
    w.key("calibration_milli");
    w.number_u64(psi.calibration_milli);
    match psi.exact.as_ref() {
        Some(exact) => {
            w.key("table_entries");
            w.number_usize(exact.tables.entry_count());
            w.key("tables_csv");
            w.string(&tables_to_csv(&exact.tables, &exact.cpg));
        }
        None => {
            w.key("table_entries");
            w.number_usize(0);
            w.key("tables_csv");
            w.null();
        }
    }
    w.end_object();
    w.finish()
}

/// `POST /explore`: body is a whitespace-separated `key=value` list (see
/// [`parse_explore_request`]); the reply is the `ftes-explore` suite JSON
/// report, identical to `ftes explore --json` for the same parameters.
fn explore(shared: &Shared, body: &[u8]) -> Reply {
    let parse_started = Instant::now();
    let Ok(text) = std::str::from_utf8(body) else {
        return Reply::err(400, "body is not UTF-8");
    };
    let config = match parse_explore_request(text) {
        Ok(config) => config,
        Err(msg) => return Reply::err(400, &msg),
    };
    shared.metrics.record_phase(Phase::Parse, parse_started.elapsed().as_micros() as u64);
    let key = CacheKey::new("explore/v1", &canonical_explore_bytes(&config));
    let guard = match shared.cache.lookup(&key) {
        Lookup::Hit(status, body) => return Reply { status, body },
        Lookup::Miss(guard) => guard,
    };
    let reply = match run_suite(&config) {
        Ok(outcome) => Reply { status: 200, body: Arc::new(suite_to_json(&outcome)) },
        // Deterministic failure: cache it (see the synthesize handler).
        Err(e) => Reply::err(422, &format!("explore: {e}")),
    };
    guard.complete(reply.status, Arc::clone(&reply.body));
    reply
}

/// Upper bounds on client-controlled `/explore` parameters. The CLI
/// trusts its operator with these knobs; the service must not — an
/// unclamped `seeds` or `threads` lets one small request allocate or
/// spawn without limit. The caps comfortably cover the paper grid
/// (100 processes, 6 nodes, k = 7).
mod limits {
    pub const PROCESSES: u64 = 200;
    pub const NODES: u64 = 16;
    pub const K: u64 = 16;
    pub const SEEDS: u64 = 64;
    pub const ROUNDS: u64 = 64;
    pub const ITERS: u64 = 1_000;
    /// `run_suite` divides the thread budget across concurrent points
    /// (`threads / point_par` each), so one request's peak OS-thread count
    /// is ≈ `POINT_PAR + THREADS`; with a full worker pool the host sees
    /// at most `workers ×` that, which these caps keep modest.
    pub const THREADS: u64 = 32;
    pub const POINT_PAR: u64 = 16;
    /// Aggregate ceiling: Σ(point processes) × rounds × iters. Per-knob
    /// caps alone still admit hour-scale products (64 seeds × 64 rounds ×
    /// 1000 iters); this bounds the whole job. The default paper grid
    /// costs 36 000 units, so the budget leaves two orders of magnitude
    /// of headroom for legitimate sweeps.
    pub const WORK_BUDGET: u64 = 5_000_000;
}

/// Parses an `/explore` request body: whitespace-separated `key=value`
/// tokens mirroring the `ftes explore` flags (`grid=paper` or
/// `processes=N nodes=N k=K`, plus `seeds`, `seed`, `rounds`, `iters`,
/// `threads`, `point_par`, `verify=true`). Work-scaling parameters are
/// bounded (see `limits`); out-of-range values are a client error, not a
/// clamp, so cache keys never alias different requested configurations.
pub fn parse_explore_request(text: &str) -> Result<SuiteConfig, String> {
    let mut processes: Option<usize> = None;
    let mut nodes: Option<usize> = None;
    let mut k: Option<u32> = None;
    let mut seeds: u64 = 1;
    let mut grid_paper = false;
    let mut portfolio = PortfolioConfig::default();
    let mut point_parallelism = 1usize;
    let mut verify = None;
    let mut certify = true;

    for token in text.split_whitespace() {
        let Some((key, value)) = token.split_once('=') else {
            return Err(format!("expected key=value, got `{token}`"));
        };
        let bounded = |max: u64| -> Result<u64, String> {
            let n: u64 = value.parse().map_err(|_| format!("bad number `{value}` for {key}"))?;
            if n > max {
                return Err(format!("{key}={n} exceeds the service limit of {max}"));
            }
            Ok(n)
        };
        match key {
            "grid" => {
                if value != "paper" {
                    return Err(format!("unknown grid `{value}` (only `paper`)"));
                }
                grid_paper = true;
            }
            "processes" => processes = Some(bounded(limits::PROCESSES)? as usize),
            "nodes" => nodes = Some(bounded(limits::NODES)? as usize),
            "k" => k = Some(bounded(limits::K)? as u32),
            "seeds" => seeds = bounded(limits::SEEDS)?.max(1),
            "seed" => {
                // The PRNG seed scales no work; any u64 is fine.
                portfolio.seed =
                    value.parse().map_err(|_| format!("bad number `{value}` for {key}"))?;
            }
            "threads" => portfolio.threads = (bounded(limits::THREADS)? as usize).max(1),
            "point_par" => point_parallelism = (bounded(limits::POINT_PAR)? as usize).max(1),
            "rounds" => portfolio.rounds = (bounded(limits::ROUNDS)? as usize).max(1),
            "iters" => portfolio.iterations_per_round = (bounded(limits::ITERS)? as usize).max(1),
            "verify" => {
                verify = match value {
                    "true" => Some(VerifyConfig::default()),
                    "false" => None,
                    other => return Err(format!("bad bool `{other}` for verify")),
                }
            }
            "certify" => {
                certify = match value {
                    "true" => true,
                    "false" => false,
                    other => return Err(format!("bad bool `{other}` for certify")),
                }
            }
            other => return Err(format!("unknown explore parameter `{other}`")),
        }
    }

    let custom = processes.is_some() || nodes.is_some() || k.is_some();
    if grid_paper && custom {
        return Err("grid=paper conflicts with processes/nodes/k".into());
    }
    let points = if custom {
        let processes = processes.ok_or("processes is required for a custom point")?;
        let nodes = nodes.ok_or("nodes is required for a custom point")?;
        let k = k.ok_or("k is required for a custom point")?;
        (0..seeds).map(|seed| ScenarioPoint { processes, nodes, k, seed }).collect()
    } else {
        paper_grid(seeds)
    };
    let work = points.iter().map(|p| p.processes as u64).sum::<u64>()
        * portfolio.rounds as u64
        * portfolio.iterations_per_round as u64;
    if work > limits::WORK_BUDGET {
        return Err(format!(
            "request expands to {work} process-iterations, over the service budget of {} \
             — reduce seeds, rounds or iters",
            limits::WORK_BUDGET
        ));
    }
    Ok(SuiteConfig { points, portfolio, point_parallelism, slot: Time::new(8), verify, certify })
}

/// Canonical encoding of the *semantic* suite parameters. `threads` and
/// `point_parallelism` are deliberately excluded: the explore determinism
/// contract guarantees they cannot change results, so requests differing
/// only in parallelism share one cache entry.
pub fn canonical_explore_bytes(config: &SuiteConfig) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + 32 * config.points.len());
    out.extend_from_slice(b"ftes-explore-v1");
    let push_u64 = |out: &mut Vec<u8>, v: u64| out.extend_from_slice(&v.to_le_bytes());
    push_u64(&mut out, config.points.len() as u64);
    for p in &config.points {
        push_u64(&mut out, p.processes as u64);
        push_u64(&mut out, p.nodes as u64);
        push_u64(&mut out, p.k as u64);
        push_u64(&mut out, p.seed);
    }
    push_u64(&mut out, config.slot.units() as u64);
    push_u64(&mut out, config.portfolio.seed);
    push_u64(&mut out, config.portfolio.rounds as u64);
    push_u64(&mut out, config.portfolio.iterations_per_round as u64);
    push_u64(&mut out, config.portfolio.max_checkpoints as u64);
    push_u64(&mut out, config.portfolio.workers.len() as u64);
    for worker in &config.portfolio.workers {
        let engine = match worker.engine {
            EngineKind::Tabu => 0u64,
            EngineKind::Anneal => 1,
            EngineKind::Greedy => 2,
        };
        push_u64(&mut out, engine);
        push_u64(&mut out, worker.seed_offset);
        push_u64(&mut out, worker.neighborhood as u64);
        push_u64(&mut out, worker.tenure as u64);
    }
    match &config.verify {
        None => out.push(0),
        Some(vc) => {
            out.push(1);
            push_u64(&mut out, vc.samples as u64);
            push_u64(&mut out, vc.seed);
        }
    }
    out.push(config.certify as u8);
    out
}

/// `GET /corpus`: the built-in scenario-family catalog — every family
/// `ftes corpus generate` knows, with its per-member parameters, so a
/// client can discover the corpus without shelling out to the CLI. Pure
/// static metadata (no generation runs), rendered deterministically.
fn corpus_catalog() -> Reply {
    use ftes::gen::corpus::{Family, DEFAULT_CORPUS_SEED};
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("default_seed");
    w.number_u64(DEFAULT_CORPUS_SEED);
    w.key("families");
    w.begin_array();
    for family in Family::ALL {
        w.begin_object();
        w.key("name");
        w.string(family.name());
        w.key("description");
        w.string(family.description());
        w.key("members");
        w.begin_array();
        for m in family.members() {
            w.begin_object();
            w.key("index");
            w.number_usize(m.index);
            w.key("processes");
            w.number_usize(m.config.process_count);
            w.key("nodes");
            w.number_usize(m.config.node_count);
            w.key("k");
            w.number_u64(m.k as u64);
            w.key("slot");
            w.number_i64(m.slot);
            w.key("strategy");
            w.string(m.strategy);
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
    w.end_object();
    Reply::new(200, w.finish())
}

/// `GET /healthz`: liveness plus basic capacity facts (never cached).
fn healthz(shared: &Shared) -> Reply {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("status");
    w.string("ok");
    w.key("workers");
    w.number_usize(shared.workers);
    w.key("queue_capacity");
    w.number_usize(shared.queue.capacity());
    w.key("queue_depth");
    w.number_usize(shared.queue.depth());
    w.end_object();
    Reply::new(200, w.finish())
}

/// `GET /metrics`: request counters, cache accounting, queue depth and
/// latency percentiles (never cached).
fn metrics(shared: &Shared) -> Reply {
    let snap = shared.metrics.snapshot();
    let cache = shared.cache.stats();
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("requests_total");
    w.number_u64(snap.requests_total());
    w.key("requests_by_endpoint");
    w.begin_object();
    for (label, count) in snap.requests_by_endpoint {
        w.key(label);
        w.number_u64(count);
    }
    w.end_object();
    w.key("responses");
    w.begin_object();
    w.key("ok_2xx");
    w.number_u64(snap.status_2xx);
    w.key("client_error_4xx");
    w.number_u64(snap.status_4xx);
    w.key("server_error_5xx");
    w.number_u64(snap.status_5xx);
    w.key("rejected_429");
    w.number_u64(snap.rejected_429);
    w.end_object();
    w.key("cache");
    w.begin_object();
    w.key("hits");
    w.number_u64(cache.hits);
    w.key("misses");
    w.number_u64(cache.misses);
    w.key("entries");
    w.number_usize(cache.entries);
    w.key("hit_rate");
    w.number_f64(cache.hit_rate(), 4);
    w.end_object();
    w.key("queue_depth");
    w.number_usize(shared.queue.depth());
    w.key("certification");
    w.begin_object();
    w.key("certified");
    w.number_u64(snap.certification.certified);
    w.key("refuted");
    w.number_u64(snap.certification.refuted);
    w.key("uncertifiable");
    w.number_u64(snap.certification.uncertifiable);
    w.key("repair_rounds");
    w.number_u64(snap.certification.repair_rounds);
    w.end_object();
    w.key("latency_us");
    w.begin_object();
    w.key("p50");
    w.number_u64(snap.p50_us);
    w.key("p99");
    w.number_u64(snap.p99_us);
    w.end_object();
    // Per-phase work accounting: where uncached requests actually spend
    // their time, so hot-path regressions are visible on a live daemon.
    w.key("phases_us");
    w.begin_object();
    for phase in snap.phases {
        w.key(phase.label);
        w.begin_object();
        w.key("total");
        w.number_u64(phase.total_us);
        w.key("count");
        w.number_u64(phase.count);
        w.end_object();
    }
    w.end_object();
    let bank = shared.evaluators.stats();
    w.key("evaluator_bank");
    w.begin_object();
    w.key("hits");
    w.number_u64(bank.hits);
    w.key("misses");
    w.number_u64(bank.misses);
    w.key("banked");
    w.number_usize(bank.banked);
    w.end_object();
    w.end_object();
    Reply::new(200, w.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explore_body_parsing_mirrors_the_cli() {
        let config = parse_explore_request(
            "processes=12 nodes=3 k=2 seeds=2 seed=9 rounds=3 iters=5 verify=true",
        )
        .unwrap();
        assert_eq!(config.points.len(), 2);
        assert!(config.points.iter().all(|p| p.processes == 12 && p.nodes == 3 && p.k == 2));
        assert_eq!(config.portfolio.seed, 9);
        assert_eq!(config.portfolio.rounds, 3);
        assert_eq!(config.portfolio.iterations_per_round, 5);
        assert!(config.verify.is_some());
        assert!(config.certify, "certification defaults on");
        assert!(!parse_explore_request("certify=false").unwrap().certify);

        let default = parse_explore_request("").unwrap();
        assert_eq!(default.points.len(), 5, "empty body = the paper grid");
    }

    #[test]
    fn explore_body_errors_are_reported() {
        for bad in [
            "processes",
            "processes=ten",
            "grid=fig9",
            "grid=paper processes=10",
            "processes=10 nodes=2",
            "verify=maybe",
            "certify=maybe",
            "bogus=1",
        ] {
            assert!(parse_explore_request(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn work_scaling_parameters_are_bounded() {
        // One small request must not be able to allocate or spawn without
        // limit: out-of-range values are rejected, not clamped.
        for bad in [
            "processes=10 nodes=2 k=1 seeds=18446744073709551615",
            "processes=10 nodes=2 k=1 threads=1000000",
            "processes=10 nodes=2 k=1 rounds=1000000000",
            "processes=10 nodes=2 k=1 iters=1000000000",
            "processes=1000 nodes=2 k=1",
            "processes=10 nodes=999 k=1",
            "processes=10 nodes=2 k=999",
            "processes=10 nodes=2 k=1 point_par=1000000",
        ] {
            let err = parse_explore_request(bad).unwrap_err();
            assert!(err.contains("limit") || err.contains("bad number"), "{bad}: {err}");
        }
        // Each knob in range, but the product is hour-scale work: the
        // aggregate budget rejects it.
        let err = parse_explore_request("grid=paper seeds=64 rounds=64 iters=1000").unwrap_err();
        assert!(err.contains("budget"), "{err}");
        // The paper grid itself stays comfortably inside the caps.
        assert!(parse_explore_request("grid=paper seeds=5").is_ok());
        assert!(
            parse_explore_request("processes=100 nodes=6 k=7 seed=18446744073709551615").is_ok()
        );
    }

    #[test]
    fn canonical_explore_bytes_ignore_parallelism_only() {
        let a = parse_explore_request("processes=10 nodes=2 k=1 threads=1").unwrap();
        let b = parse_explore_request("processes=10 nodes=2 k=1 threads=8 point_par=4").unwrap();
        assert_eq!(canonical_explore_bytes(&a), canonical_explore_bytes(&b));

        for different in [
            "processes=11 nodes=2 k=1",
            "processes=10 nodes=3 k=1",
            "processes=10 nodes=2 k=2",
            "processes=10 nodes=2 k=1 seed=2",
            "processes=10 nodes=2 k=1 rounds=9",
            "processes=10 nodes=2 k=1 iters=9",
            "processes=10 nodes=2 k=1 seeds=2",
            "processes=10 nodes=2 k=1 verify=true",
            "processes=10 nodes=2 k=1 certify=false",
            "grid=paper",
        ] {
            let c = parse_explore_request(different).unwrap();
            assert_ne!(canonical_explore_bytes(&a), canonical_explore_bytes(&c), "{different}");
        }
    }
}
