//! Endpoint handlers: routing, request-body parsing and deterministic JSON
//! rendering.
//!
//! Every body a handler renders is a pure function of the parsed request —
//! no timestamps, no host state — which is what lets the result cache
//! replay bodies byte-identically and the determinism tests diff
//! concurrent responses. (`/healthz` and `/metrics` report live state and
//! are never cached.)

use crate::cache::{CacheKey, Lookup};
use crate::http::{error_body, Request};
use crate::metrics::{Endpoint, Phase};
use crate::server::Shared;
use ftes::json::JsonWriter;
use ftes::sched::SystemEvaluator;
use ftes::spec::parse_spec;
use ftes::{synthesize_system_timed, Certification, FlowConfig};
use ftes_jobs::{parse_explore_request, render_synthesis, JobRequest, SubmitError};
use std::sync::Arc;
use std::time::Instant;

/// A handler's verdict: status code plus rendered body.
pub struct Reply {
    /// HTTP status code.
    pub status: u16,
    /// Response body (shared so cached bodies are not copied per request).
    pub body: Arc<String>,
    /// `Retry-After` seconds for `429` replies (rendered as a response
    /// header so well-behaved clients back off instead of hammering).
    pub retry_after: Option<u64>,
    /// `Content-Type` header value. Everything is JSON except the
    /// Prometheus text exposition of `/metrics`.
    pub content_type: &'static str,
}

/// The Prometheus text exposition format version we render.
pub const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

impl Reply {
    fn new(status: u16, body: String) -> Self {
        Reply { status, body: Arc::new(body), retry_after: None, content_type: "application/json" }
    }

    fn cached(status: u16, body: Arc<String>) -> Self {
        Reply { status, body, retry_after: None, content_type: "application/json" }
    }

    fn text(status: u16, body: String) -> Self {
        Reply {
            status,
            body: Arc::new(body),
            retry_after: None,
            content_type: PROMETHEUS_CONTENT_TYPE,
        }
    }

    fn err(status: u16, message: &str) -> Self {
        Reply::new(status, error_body(status, message))
    }
}

/// Splits a request target into path and (optional) query string.
fn split_query(target: &str) -> (&str, Option<&str>) {
    match target.split_once('?') {
        Some((path, query)) => (path, Some(query)),
        None => (target, None),
    }
}

/// Routes one parsed request to its handler.
pub fn route(shared: &Shared, req: &Request) -> (Endpoint, Reply) {
    let method = req.method.as_str();
    let (path, query) = split_query(req.path.as_str());
    if let Some(rest) = path.strip_prefix("/jobs") {
        if rest.is_empty() || rest.starts_with('/') {
            return (Endpoint::Jobs, jobs_route(shared, method, rest, &req.body));
        }
    }
    match (method, path) {
        ("POST", "/synthesize") => (Endpoint::Synthesize, synthesize(shared, &req.body)),
        ("POST", "/explore") => (Endpoint::Explore, submit_explore(shared, &req.body)),
        ("GET", "/corpus") => (Endpoint::Corpus, corpus_catalog()),
        ("POST", "/corpus/run") => (Endpoint::Corpus, submit_corpus_run(shared, &req.body)),
        ("GET", "/healthz") => (Endpoint::Healthz, healthz(shared)),
        ("GET", "/metrics") => (Endpoint::Metrics, metrics(shared, query)),
        (_, "/synthesize" | "/explore" | "/corpus" | "/corpus/run" | "/healthz" | "/metrics") => {
            (Endpoint::Other, Reply::err(405, "method not allowed"))
        }
        _ => (Endpoint::Other, Reply::err(404, "no such endpoint")),
    }
}

/// Routes the `/jobs` family: `POST /jobs` (submit a synthesize job),
/// `GET /jobs` (list), `GET /jobs/<id>` (status + accumulated progress
/// rows), `DELETE /jobs/<id>` (cancel at the next row boundary).
fn jobs_route(shared: &Shared, method: &str, rest: &str, body: &[u8]) -> Reply {
    match (method, rest) {
        ("POST", "") => submit_synthesize_job(shared, body),
        ("GET", "") => jobs_list(shared),
        (_, "") => Reply::err(405, "method not allowed"),
        _ => {
            let Ok(id) = rest[1..].parse::<u64>() else {
                return Reply::err(404, "no such job");
            };
            match method {
                "GET" => job_status(shared, id),
                "DELETE" => job_cancel(shared, id),
                _ => Reply::err(405, "method not allowed"),
            }
        }
    }
}

/// `POST /synthesize`: body is a `.ftes` document; the reply carries the
/// schedule summary, the policy assignment and (when the FT-CPG fits the
/// size budget) the exact schedule tables as CSV — byte-identical to the
/// `ftes <spec> --csv` CLI output for the same spec.
fn synthesize(shared: &Shared, body: &[u8]) -> Reply {
    // ftes-lint: allow(byte-identity) reason="parse-phase latency feeds /metrics only, never the response body"
    let parse_started = Instant::now();
    let Ok(text) = std::str::from_utf8(body) else {
        return Reply::err(400, "body is not UTF-8");
    };
    let spec = match parse_spec(text) {
        Ok(spec) => spec,
        Err(e) => return Reply::err(400, &format!("spec: {e}")),
    };
    shared.metrics.record_phase(Phase::Parse, parse_started.elapsed().as_micros() as u64);
    let key = CacheKey::new("synthesize/v1", &spec.canonical_bytes());
    // Single-flight: concurrent requests for the same (equivalent) spec
    // wait for one synthesis instead of each running their own.
    let guard = match shared.cache.lookup(&key) {
        Lookup::Hit(status, body) => return Reply::cached(status, body),
        Lookup::Miss(guard) => guard,
    };
    // Evaluator bank: a repeated (app, platform, k) on a warm daemon skips
    // the kernel construction even when strategy/transparency differ (the
    // response cache only collapses fully identical specs).
    let eval_key = spec.evaluator_bytes();
    let mut evaluator = shared
        .evaluators
        .checkout(&eval_key)
        .unwrap_or_else(|| SystemEvaluator::new(&spec.app, &spec.platform, spec.fault_model.k()));
    let config = FlowConfig { strategy: spec.strategy, ..FlowConfig::default() };
    let reply =
        match synthesize_system_timed(&mut evaluator, spec.fault_model, &spec.transparency, config)
        {
            Ok((psi, timings)) => {
                shared.metrics.record_phase(Phase::Optimize, timings.optimize.as_micros() as u64);
                shared.metrics.record_phase(Phase::Certify, timings.certify.as_micros() as u64);
                shared.metrics.record_phase(Phase::Cpg, timings.cpg.as_micros() as u64);
                shared.metrics.record_phase(Phase::Schedule, timings.schedule.as_micros() as u64);
                let verdict = match psi.certification {
                    Certification::Certified { .. } => Some(true),
                    Certification::Refuted { .. } => Some(false),
                    Certification::Uncertifiable => None,
                };
                shared.metrics.record_certification(verdict, psi.repair_rounds as u64);
                Reply::new(200, render_synthesis(&spec, &psi))
            }
            // A 422 is as deterministic as a success: cache it so a repeated
            // expensive-but-infeasible spec is not a work-amplification vector.
            Err(e) => Reply::err(422, &format!("synthesis: {e}")),
        };
    shared.evaluators.checkin(eval_key, evaluator);
    guard.complete(reply.status, Arc::clone(&reply.body));
    reply
}

/// `POST /explore`, asynchronous: the body is validated exactly like the
/// old synchronous endpoint (same `key=value` grammar, same limits — a
/// malformed body is still a `400` at submit time), then enqueued as an
/// `ExploreSuite` job. The reply is `202` with the job id; poll
/// `GET /jobs/<id>` for progress rows and the final suite JSON report,
/// which is byte-identical to `ftes explore --json` for the same
/// parameters.
fn submit_explore(shared: &Shared, body: &[u8]) -> Reply {
    // ftes-lint: allow(byte-identity) reason="parse-phase latency feeds /metrics only, never the response body"
    let parse_started = Instant::now();
    let Ok(text) = std::str::from_utf8(body) else {
        return Reply::err(400, "body is not UTF-8");
    };
    if let Err(msg) = parse_explore_request(text) {
        return Reply::err(400, &msg);
    }
    shared.metrics.record_phase(Phase::Parse, parse_started.elapsed().as_micros() as u64);
    submit_job(shared, JobRequest::ExploreSuite { params: text.to_string() })
}

/// `POST /corpus/run`: body is a whitespace-separated `key=value` list
/// (`family=<name>|all`, `seed=N`, `workers=N`) selecting a generated
/// corpus; the reply is `202` with a job id whose progress rows are the
/// corpus CSV rows and whose terminal result carries the full CSV plus
/// the deterministic aggregate JSON — byte-identical to an uninterrupted
/// `ftes corpus run` over the same corpus.
fn submit_corpus_run(shared: &Shared, body: &[u8]) -> Reply {
    let Ok(text) = std::str::from_utf8(body) else {
        return Reply::err(400, "body is not UTF-8");
    };
    match parse_corpus_run(text) {
        Ok(request) => submit_job(shared, request),
        Err(msg) => Reply::err(400, &msg),
    }
}

/// Parses a `/corpus/run` request body into a `CorpusRun` job request.
/// Generation is deterministic in `(family, seed)`, so the job's CSV is a
/// pure function of the parsed body.
fn parse_corpus_run(text: &str) -> Result<JobRequest, String> {
    use ftes::gen::corpus::{generate_corpus, Family, DEFAULT_CORPUS_SEED};
    let mut families: Vec<Family> = Family::ALL.to_vec();
    let mut seed = DEFAULT_CORPUS_SEED;
    let mut workers = 1usize;
    for token in text.split_whitespace() {
        let Some((key, value)) = token.split_once('=') else {
            return Err(format!("expected key=value, got `{token}`"));
        };
        match key {
            "family" => {
                if value != "all" {
                    families = vec![Family::from_name(value)
                        .ok_or_else(|| format!("unknown corpus family `{value}`"))?];
                }
            }
            "seed" => {
                seed = value.parse().map_err(|_| format!("bad number `{value}` for seed"))?;
            }
            "workers" => {
                let n: usize =
                    value.parse().map_err(|_| format!("bad number `{value}` for workers"))?;
                if n == 0 || n as u64 > ftes_jobs::limits::CORPUS_WORKERS {
                    return Err(format!(
                        "workers={n} outside 1..={}",
                        ftes_jobs::limits::CORPUS_WORKERS
                    ));
                }
                workers = n;
            }
            other => return Err(format!("unknown corpus parameter `{other}`")),
        }
    }
    let specs = generate_corpus(&families, seed).map_err(|e| format!("corpus: {e}"))?;
    let jobs = specs
        .into_iter()
        .map(|s| ftes::corpus::CorpusJob {
            name: s.file_name,
            family: s.family.name().to_string(),
            text: s.text,
        })
        .collect();
    Ok(JobRequest::CorpusRun { jobs, workers })
}

/// Submits one typed job to the shared executor: `202` with the job id,
/// `429` + `Retry-After` when the bounded job queue is full (the body
/// carries the current queue depth so clients can back off
/// proportionally), `400` for requests that fail submit-time validation.
fn submit_job(shared: &Shared, request: JobRequest) -> Reply {
    match shared.jobs.submit(request) {
        Ok(id) => {
            let mut w = JsonWriter::new();
            w.begin_object();
            w.key("job");
            w.number_u64(id);
            w.key("state");
            w.string("queued");
            w.end_object();
            Reply::new(202, w.finish())
        }
        Err(SubmitError::QueueFull { depth }) => {
            let mut w = JsonWriter::new();
            w.begin_object();
            w.key("error");
            w.string("job queue full, retry later");
            w.key("status");
            w.number_u64(429);
            w.key("queue_depth");
            w.number_usize(depth);
            w.end_object();
            Reply {
                status: 429,
                body: Arc::new(w.finish()),
                retry_after: Some(1),
                content_type: "application/json",
            }
        }
        Err(SubmitError::Invalid(msg)) => Reply::err(400, &msg),
        Err(SubmitError::Journal(msg)) => Reply::err(500, &msg),
    }
}

/// `POST /jobs`: body is a `.ftes` document, submitted as an asynchronous
/// `Synthesize` job whose terminal result is byte-identical to the
/// synchronous `POST /synthesize` body for the same spec.
fn submit_synthesize_job(shared: &Shared, body: &[u8]) -> Reply {
    let Ok(text) = std::str::from_utf8(body) else {
        return Reply::err(400, "body is not UTF-8");
    };
    submit_job(shared, JobRequest::Synthesize { spec: text.to_string() })
}

/// `GET /jobs`: id-ordered summaries of every job the executor knows
/// (journal-replayed jobs included).
fn jobs_list(shared: &Shared) -> Reply {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("jobs");
    w.begin_array();
    for job in shared.jobs.list() {
        w.begin_object();
        w.key("job");
        w.number_u64(job.id);
        w.key("kind");
        w.string(job.kind.label());
        w.key("state");
        w.string(job.state.label());
        w.key("rows_done");
        w.number_usize(job.rows_done);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    Reply::new(200, w.finish())
}

/// `GET /jobs/<id>`: the full snapshot — state, accumulated progress rows
/// in order, and the terminal result (spliced verbatim, so a completed
/// job's `result` field carries exactly the bytes the equivalent
/// synchronous endpoint would have returned) or error message.
fn job_status(shared: &Shared, id: u64) -> Reply {
    let Some(snap) = shared.jobs.status(id) else {
        return Reply::err(404, "no such job");
    };
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("job");
    w.number_u64(snap.id);
    w.key("kind");
    w.string(snap.kind.label());
    w.key("state");
    w.string(snap.state.label());
    w.key("resumed");
    w.bool(snap.resumed);
    w.key("rows_done");
    w.number_usize(snap.rows.len());
    w.key("rows");
    w.begin_array();
    for row in &snap.rows {
        w.string(row);
    }
    w.end_array();
    w.key("result");
    match &snap.result {
        Some(result) => w.raw(result.trim_end()),
        None => w.null(),
    }
    w.key("error");
    match &snap.error {
        Some(error) => w.string(error),
        None => w.null(),
    }
    w.end_object();
    Reply::new(200, w.finish())
}

/// `DELETE /jobs/<id>`: requests cancellation at the next row boundary.
/// `cancelled:false` means the job was already terminal.
fn job_cancel(shared: &Shared, id: u64) -> Reply {
    let Some(cancelled) = shared.jobs.cancel(id) else {
        return Reply::err(404, "no such job");
    };
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("job");
    w.number_u64(id);
    w.key("cancelled");
    w.bool(cancelled);
    w.end_object();
    Reply::new(200, w.finish())
}

/// `GET /corpus`: the built-in scenario-family catalog — every family
/// `ftes corpus generate` knows, with its per-member parameters, so a
/// client can discover the corpus without shelling out to the CLI. Pure
/// static metadata (no generation runs), rendered deterministically.
fn corpus_catalog() -> Reply {
    use ftes::gen::corpus::{Family, DEFAULT_CORPUS_SEED};
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("default_seed");
    w.number_u64(DEFAULT_CORPUS_SEED);
    w.key("families");
    w.begin_array();
    for family in Family::ALL {
        w.begin_object();
        w.key("name");
        w.string(family.name());
        w.key("description");
        w.string(family.description());
        w.key("members");
        w.begin_array();
        for m in family.members() {
            w.begin_object();
            w.key("index");
            w.number_usize(m.index);
            w.key("processes");
            w.number_usize(m.config.process_count);
            w.key("nodes");
            w.number_usize(m.config.node_count);
            w.key("k");
            w.number_u64(m.k as u64);
            w.key("slot");
            w.number_i64(m.slot);
            w.key("strategy");
            w.string(m.strategy);
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
    w.end_object();
    Reply::new(200, w.finish())
}

/// `GET /healthz`: liveness plus basic capacity facts (never cached).
fn healthz(shared: &Shared) -> Reply {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("status");
    w.string("ok");
    w.key("workers");
    w.number_usize(shared.workers);
    w.key("queue_capacity");
    w.number_usize(shared.queue.capacity());
    w.key("queue_depth");
    w.number_usize(shared.queue.depth());
    w.end_object();
    Reply::new(200, w.finish())
}

/// `GET /metrics`: request counters, cache accounting, queue depth and
/// latency percentiles (never cached). `?format=prometheus` selects the
/// text exposition format; the default (and `?format=json`) is JSON.
fn metrics(shared: &Shared, query: Option<&str>) -> Reply {
    match query {
        Some(q) if q.split('&').any(|kv| kv == "format=prometheus") => {
            return Reply::text(200, crate::prometheus::render_prometheus(shared));
        }
        Some(q)
            if q.split('&').any(|kv| kv.strip_prefix("format=").is_some_and(|v| v != "json")) =>
        {
            return Reply::err(400, "unknown metrics format (want json or prometheus)");
        }
        _ => {}
    }
    let snap = shared.metrics.snapshot();
    let cache = shared.cache.stats();
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("requests_total");
    w.number_u64(snap.requests_total());
    w.key("requests_by_endpoint");
    w.begin_object();
    for (label, count) in snap.requests_by_endpoint {
        w.key(label);
        w.number_u64(count);
    }
    w.end_object();
    w.key("responses");
    w.begin_object();
    w.key("ok_2xx");
    w.number_u64(snap.status_2xx);
    w.key("client_error_4xx");
    w.number_u64(snap.status_4xx);
    w.key("server_error_5xx");
    w.number_u64(snap.status_5xx);
    w.key("rejected_429");
    w.number_u64(snap.rejected_429);
    w.end_object();
    w.key("cache");
    w.begin_object();
    w.key("hits");
    w.number_u64(cache.hits);
    w.key("misses");
    w.number_u64(cache.misses);
    w.key("entries");
    w.number_usize(cache.entries);
    w.key("hit_rate");
    w.number_f64(cache.hit_rate(), 4);
    w.end_object();
    w.key("queue_depth");
    w.number_usize(shared.queue.depth());
    // Job-executor accounting: queue pressure, lifecycle counters and the
    // crash-safety journal's size + resume/replay counters.
    let jobs = shared.jobs.stats();
    w.key("jobs");
    w.begin_object();
    w.key("queue_depth");
    w.number_usize(jobs.queue_depth);
    w.key("queue_capacity");
    w.number_usize(jobs.queue_capacity);
    w.key("queued");
    w.number_u64(jobs.queued);
    w.key("running");
    w.number_u64(jobs.running);
    w.key("completed");
    w.number_u64(jobs.completed);
    w.key("failed");
    w.number_u64(jobs.failed);
    w.key("cancelled");
    w.number_u64(jobs.cancelled);
    w.key("resumed");
    w.number_u64(jobs.resumed);
    w.key("replayed");
    w.number_u64(jobs.replayed);
    w.key("journal_bytes");
    w.number_u64(jobs.journal_bytes);
    w.key("journal_appends");
    w.number_u64(jobs.journal_appends);
    w.key("journal_append_us");
    w.number_u64(jobs.journal_append_us);
    w.end_object();
    w.key("certification");
    w.begin_object();
    w.key("certified");
    w.number_u64(snap.certification.certified);
    w.key("refuted");
    w.number_u64(snap.certification.refuted);
    w.key("uncertifiable");
    w.number_u64(snap.certification.uncertifiable);
    w.key("repair_rounds");
    w.number_u64(snap.certification.repair_rounds);
    w.end_object();
    w.key("latency_us");
    w.begin_object();
    w.key("p50");
    w.number_u64(snap.p50_us);
    w.key("p90");
    w.number_u64(snap.p90_us);
    w.key("p99");
    w.number_u64(snap.p99_us);
    w.end_object();
    // Per-endpoint latency: the pooled percentiles above hide a slow
    // endpoint behind a chatty fast one; this breakdown does not.
    w.key("latency_by_endpoint");
    w.begin_object();
    for ep in &snap.latency_by_endpoint {
        if ep.served == 0 {
            continue;
        }
        w.key(ep.label);
        w.begin_object();
        w.key("served");
        w.number_u64(ep.served);
        w.key("sum_us");
        w.number_u64(ep.sum_us);
        w.key("p50");
        w.number_u64(ep.p50_us);
        w.key("p90");
        w.number_u64(ep.p90_us);
        w.key("p99");
        w.number_u64(ep.p99_us);
        w.end_object();
    }
    w.end_object();
    // Per-phase work accounting: where uncached requests actually spend
    // their time, so hot-path regressions are visible on a live daemon.
    w.key("phases_us");
    w.begin_object();
    for phase in snap.phases {
        w.key(phase.label);
        w.begin_object();
        w.key("total");
        w.number_u64(phase.total_us);
        w.key("count");
        w.number_u64(phase.count);
        w.end_object();
    }
    w.end_object();
    let bank = shared.evaluators.stats();
    w.key("evaluator_bank");
    w.begin_object();
    w.key("hits");
    w.number_u64(bank.hits);
    w.key("misses");
    w.number_u64(bank.misses);
    w.key("banked");
    w.number_usize(bank.banked);
    w.end_object();
    w.end_object();
    Reply::new(200, w.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftes_jobs::JobRequest;

    #[test]
    fn corpus_run_bodies_parse_with_defaults() {
        // Empty body: every family at the default seed, one worker.
        let JobRequest::CorpusRun { jobs, workers } = parse_corpus_run("").unwrap() else {
            panic!("corpus body must parse to a CorpusRun request");
        };
        assert_eq!(workers, 1);
        let families: std::collections::BTreeSet<_> =
            jobs.iter().map(|j| j.family.as_str()).collect();
        assert_eq!(families.len(), ftes::gen::corpus::Family::ALL.len());

        // A single family filters the spec set and keeps its generated text.
        let JobRequest::CorpusRun { jobs, workers } =
            parse_corpus_run("family=automotive workers=4 seed=11").unwrap()
        else {
            panic!("corpus body must parse to a CorpusRun request");
        };
        assert_eq!(workers, 4);
        assert!(!jobs.is_empty());
        assert!(jobs.iter().all(|j| j.family == "automotive"));
        assert!(jobs.iter().all(|j| !j.text.is_empty()));
    }

    #[test]
    fn corpus_run_generation_is_deterministic_in_its_parameters() {
        let a = parse_corpus_run("family=automotive seed=7").unwrap();
        let b = parse_corpus_run("family=automotive seed=7").unwrap();
        let (JobRequest::CorpusRun { jobs: ja, .. }, JobRequest::CorpusRun { jobs: jb, .. }) =
            (a, b)
        else {
            panic!("corpus bodies must parse to CorpusRun requests");
        };
        assert_eq!(
            ja.iter().map(|j| (&j.name, &j.text)).collect::<Vec<_>>(),
            jb.iter().map(|j| (&j.name, &j.text)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn corpus_run_bodies_reject_malformed_input() {
        for bad in [
            "family",
            "family=westeros",
            "seed=banana",
            "workers=0",
            "workers=33",
            "workers=ten",
            "bogus=1",
        ] {
            assert!(parse_corpus_run(bad).is_err(), "{bad}");
        }
    }
}
