//! Warm-evaluator bank: finished requests check their
//! [`SystemEvaluator`] kernels back in, keyed by the spec's
//! `(application, platform, k)` encoding, so a repeated or related spec on
//! a warm daemon skips the kernel construction (topology, recovery
//! schemes, resource arenas) entirely.
//!
//! The bank is deliberately tiny: a mutexed MRU list of
//! `(key bytes, evaluator)` pairs. Keys are compared by their full
//! canonical bytes — a hash collision here would silently synthesize the
//! wrong application (the evaluator owns the app the flow runs on), so no
//! hashing shortcut is taken. Checkout *removes* the entry, which makes
//! concurrent requests for the same spec construct their own kernels
//! instead of fighting over one `&mut` — the single-flight response cache
//! already collapses identical concurrent requests before they get here.

use crate::sync;
use ftes::sched::SystemEvaluator;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Counters of an [`EvaluatorBank`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BankStats {
    /// Checkouts answered with a warm kernel.
    pub hits: u64,
    /// Checkouts that had to construct a kernel.
    pub misses: u64,
    /// Kernels currently banked.
    pub banked: usize,
}

/// MRU bank of warm evaluator kernels shared by the worker pool.
pub struct EvaluatorBank {
    slots: Mutex<VecDeque<(Vec<u8>, SystemEvaluator)>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl EvaluatorBank {
    /// A bank holding at most `capacity` kernels (0 disables banking).
    pub fn new(capacity: usize) -> Self {
        EvaluatorBank {
            slots: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Removes and returns the banked kernel for `key`, if any.
    pub fn checkout(&self, key: &[u8]) -> Option<SystemEvaluator> {
        let mut slots = sync::lock(&self.slots);
        match slots.iter().position(|(k, _)| k == key) {
            Some(i) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                slots.remove(i).map(|(_, ev)| ev)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Returns a kernel to the bank (most-recently-used position), evicting
    /// the least-recently-used entry beyond capacity.
    pub fn checkin(&self, key: Vec<u8>, evaluator: SystemEvaluator) {
        if self.capacity == 0 {
            return;
        }
        let mut slots = sync::lock(&self.slots);
        slots.push_front((key, evaluator));
        while slots.len() > self.capacity {
            slots.pop_back();
        }
    }

    /// Current counters.
    pub fn stats(&self) -> BankStats {
        BankStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            banked: sync::lock(&self.slots).len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftes::model::{samples, Time};
    use ftes::tdma::Platform;

    fn kernel() -> SystemEvaluator {
        let (app, _) = samples::fig3();
        let platform = Platform::homogeneous(2, Time::new(8)).unwrap();
        SystemEvaluator::new(&app, &platform, 1)
    }

    #[test]
    fn checkout_miss_then_hit_then_miss_again() {
        let bank = EvaluatorBank::new(4);
        assert!(bank.checkout(b"spec-a").is_none());
        bank.checkin(b"spec-a".to_vec(), kernel());
        assert_eq!(bank.stats().banked, 1);
        assert!(bank.checkout(b"spec-a").is_some(), "warm kernel is returned");
        // Checkout removes: a second concurrent checkout must construct.
        assert!(bank.checkout(b"spec-a").is_none());
        let stats = bank.stats();
        assert_eq!((stats.hits, stats.misses, stats.banked), (1, 2, 0));
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let bank = EvaluatorBank::new(2);
        bank.checkin(b"a".to_vec(), kernel());
        bank.checkin(b"b".to_vec(), kernel());
        bank.checkin(b"c".to_vec(), kernel());
        assert_eq!(bank.stats().banked, 2);
        assert!(bank.checkout(b"a").is_none(), "oldest entry was evicted");
        assert!(bank.checkout(b"c").is_some());
        assert!(bank.checkout(b"b").is_some());
    }

    #[test]
    fn zero_capacity_disables_banking() {
        let bank = EvaluatorBank::new(0);
        bank.checkin(b"a".to_vec(), kernel());
        assert!(bank.checkout(b"a").is_none());
        assert_eq!(bank.stats().banked, 0);
    }
}
