//! # ftes-serve
//!
//! Synthesis-as-a-service: a resident, concurrent front end for the FTES
//! synthesis flow. The CLI rebuilds all state per invocation; this crate
//! keeps a process warm and amortizes results across requests — the
//! service layer of the ROADMAP's "serves heavy traffic" north star.
//!
//! Everything is hand-rolled over `std` (the workspace is
//! dependency-free by necessity): an HTTP/1.1 subset on
//! `std::net::TcpListener`, an acceptor + worker thread pool, a bounded
//! job queue whose overflow answers `429` instead of queueing unbounded
//! latency, and a sharded LRU result cache keyed by a canonical hash of
//! the *parsed* request — two differently-formatted but equivalent `.ftes`
//! documents share one entry and receive byte-identical bodies.
//!
//! ## Endpoints
//!
//! | endpoint | body | reply |
//! |----------|------|-------|
//! | `POST /synthesize` | a `.ftes` document | schedule summary, policies, exact tables CSV |
//! | `POST /explore` | `key=value` grid parameters | the `ftes-explore` suite JSON report |
//! | `GET /healthz` | — | liveness + queue facts |
//! | `GET /metrics` | — | request counts, cache hit rate, queue depth, p50/p99 latency |
//!
//! ## Determinism contract
//!
//! `/synthesize` and `/explore` bodies are pure functions of the parsed
//! request: the same spec produces the same bytes whether computed by any
//! worker thread or replayed from cache, and the embedded schedule tables
//! are byte-identical to the `ftes <spec> --csv` CLI output
//! (`tests/service.rs` locks both in).
//!
//! ## Example
//!
//! ```
//! use ftes_serve::{start, LoadConfig, run_load, ServeConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let server = start(ServeConfig::default())?;
//! let report = run_load(&LoadConfig {
//!     requests: 4,
//!     clients: 2,
//!     ..LoadConfig::against(server.addr().to_string())
//! })?;
//! assert_eq!(report.failed, 0);
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod evalbank;
mod handlers;
pub mod http;
mod load;
mod metrics;
mod queue;
mod server;

pub use cache::{CacheKey, FlightGuard, Lookup, ResultCache};
pub use evalbank::{BankStats, EvaluatorBank};
pub use handlers::{canonical_explore_bytes, parse_explore_request};
pub use load::{default_spec_mix, read_response, request, run_load, LoadConfig, LoadReport};
pub use metrics::{Endpoint, Metrics, MetricsSnapshot, Phase, PhaseSnapshot};
pub use queue::BoundedQueue;
pub use server::{start, ServeConfig, Server, Shared};
