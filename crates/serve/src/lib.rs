//! # ftes-serve
//!
//! Synthesis-as-a-service: a resident, concurrent front end for the FTES
//! synthesis flow. The CLI rebuilds all state per invocation; this crate
//! keeps a process warm and amortizes results across requests — the
//! service layer of the ROADMAP's "serves heavy traffic" north star.
//!
//! Everything is hand-rolled over `std` (the workspace is
//! dependency-free by necessity): an HTTP/1.1 subset on
//! `std::net::TcpListener`, an acceptor + worker thread pool, a bounded
//! job queue whose overflow answers `429` instead of queueing unbounded
//! latency, and a sharded LRU result cache keyed by a canonical hash of
//! the *parsed* request — two differently-formatted but equivalent `.ftes`
//! documents share one entry and receive byte-identical bodies.
//!
//! ## Endpoints
//!
//! | endpoint | body | reply |
//! |----------|------|-------|
//! | `POST /synthesize` | a `.ftes` document | schedule summary, policies, exact tables CSV |
//! | `POST /explore` | `key=value` grid parameters | `202` + job id (async suite run) |
//! | `POST /corpus/run` | `family=…` `seed=…` `workers=…` | `202` + job id (async corpus run) |
//! | `GET /corpus` | — | the built-in scenario-family catalog |
//! | `POST /jobs` | a `.ftes` document | `202` + job id (async synthesis) |
//! | `GET /jobs` | — | id-ordered job summaries |
//! | `GET /jobs/<id>` | — | state, progress rows, terminal result |
//! | `DELETE /jobs/<id>` | — | cancel at the next row boundary |
//! | `GET /healthz` | — | liveness + queue facts |
//! | `GET /metrics` | — | request counts, cache hit rate, queue + job-executor stats, p50/p90/p99 latency (overall and per endpoint) |
//! | `GET /metrics?format=prometheus` | — | the same snapshot in Prometheus text exposition format |
//!
//! Long-running work (`/explore`, `/corpus/run`, `POST /jobs`) goes
//! through a single journaled [`ftes_jobs::JobExecutor`]: submissions
//! return `202` immediately, progress streams into `GET /jobs/<id>` one
//! row at a time, and a `kill -9`'d daemon restarted on the same
//! `--journal` directory resumes incomplete jobs and replays completed
//! ones byte-identically. A full job queue answers `429` with a
//! `Retry-After` header and the current depth in the body.
//!
//! ## Determinism contract
//!
//! `/synthesize` bodies are pure functions of the parsed request: the
//! same spec produces the same bytes whether computed by any worker
//! thread or replayed from cache, and the embedded schedule tables are
//! byte-identical to the `ftes <spec> --csv` CLI output
//! (`tests/service.rs` locks both in). Job results inherit the same
//! contract: a completed `/explore` job's `result` is byte-identical to
//! `ftes explore --json`, and a `/corpus/run` job's CSV matches an
//! uninterrupted `ftes corpus run` — whether computed fresh, resumed
//! after a crash, or replayed from the journal.
//!
//! ## Example
//!
//! ```
//! use ftes_serve::{start, LoadConfig, run_load, ServeConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let server = start(ServeConfig::default())?;
//! let report = run_load(&LoadConfig {
//!     requests: 4,
//!     clients: 2,
//!     ..LoadConfig::against(server.addr().to_string())
//! })?;
//! assert_eq!(report.failed, 0);
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod evalbank;
mod handlers;
pub mod http;
mod load;
mod metrics;
mod prometheus;
mod queue;
mod server;
mod sync;

pub use cache::{CacheKey, FlightGuard, Lookup, ResultCache};
pub use evalbank::{BankStats, EvaluatorBank};
pub use ftes_jobs::{canonical_explore_bytes, parse_explore_request};
pub use handlers::PROMETHEUS_CONTENT_TYPE;
pub use load::{
    default_spec_mix, read_response, read_response_full, request, run_load, EndpointDelta,
    JobsReport, LoadConfig, LoadReport,
};
pub use metrics::{Endpoint, EndpointLatency, Metrics, MetricsSnapshot, Phase, PhaseSnapshot};
pub use prometheus::{render_prometheus, validate_prometheus};
pub use queue::BoundedQueue;
pub use server::{start, ServeConfig, Server, Shared};
