//! The resident service: a TCP acceptor feeding a bounded job queue
//! drained by a pool of worker threads.
//!
//! ## Lifecycle
//!
//! [`start`] binds the listener (port 0 = ephemeral), spawns one acceptor
//! thread and `workers` handler threads, and returns a [`Server`] handle.
//! The acceptor never parses HTTP: it only sets socket timeouts and pushes
//! the connection into the queue — or, when the queue is full, sheds the
//! connection with an immediate `429` so overload degrades into fast
//! rejections instead of unbounded latency. Workers pop connections,
//! read one request, dispatch to [`crate::handlers::route`] and reply.
//!
//! ## Shutdown
//!
//! [`Server::shutdown`] (also run on drop) flips the stop flag, closes the
//! queue, pokes the acceptor awake with a loopback connection and joins
//! every thread; in-flight requests finish first.

use crate::cache::ResultCache;
use crate::evalbank::EvaluatorBank;
use crate::handlers::route;
use crate::http::{error_body, read_request, write_response, write_response_with};
use crate::metrics::{Endpoint, Metrics, MetricsSnapshot};
use crate::queue::BoundedQueue;
use ftes::explore::CacheStats;
use ftes_jobs::{JobExecutor, JobExecutorConfig};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables of the service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Bind address; port 0 asks the OS for an ephemeral port.
    pub addr: String,
    /// Handler threads (each runs one synthesis at a time).
    pub workers: usize,
    /// Bounded job-queue capacity; connections beyond it get `429`.
    pub queue_capacity: usize,
    /// Result-cache capacity in bodies (spread over `cache_shards`).
    pub cache_capacity: usize,
    /// Result-cache shard count.
    pub cache_shards: usize,
    /// Per-connection read/write timeout (slow or silent clients cannot
    /// pin a worker forever).
    pub io_timeout: Duration,
    /// Bounded capacity of the asynchronous job queue (`POST /jobs`,
    /// `POST /explore`, `POST /corpus/run`); submissions beyond it get
    /// `429` + `Retry-After`.
    pub job_queue_capacity: usize,
    /// Job-executor worker threads (each runs one job at a time).
    pub job_workers: usize,
    /// Directory for the crash-safety job journal; `None` keeps jobs
    /// in-memory only (no resume across restarts).
    pub journal_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).max(2),
            queue_capacity: 64,
            cache_capacity: 256,
            cache_shards: 8,
            io_timeout: Duration::from_secs(10),
            job_queue_capacity: 16,
            job_workers: 1,
            journal_dir: None,
        }
    }
}

/// State shared by the acceptor, the workers and the handlers.
pub struct Shared {
    /// The bounded connection queue.
    pub queue: BoundedQueue<TcpStream>,
    /// The response cache.
    pub cache: ResultCache,
    /// Warm evaluator kernels keyed by `(app, platform, k)` — repeated
    /// specs on a warm daemon skip the kernel construction entirely.
    pub evaluators: EvaluatorBank,
    /// Service counters.
    pub metrics: Metrics,
    /// Worker-pool size (reported by `/healthz`).
    pub workers: usize,
    /// The asynchronous job executor behind `/jobs`, `/explore` and
    /// `/corpus/run` — journaled, so jobs survive a daemon restart.
    pub jobs: JobExecutor,
}

/// A running service instance.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// Binds, spawns the acceptor + worker pool and returns the handle.
///
/// # Errors
///
/// Propagates socket bind failures.
pub fn start(config: ServeConfig) -> io::Result<Server> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    // The executor replays its journal before the listener serves anything,
    // so a restarted daemon never answers `GET /jobs/<id>` with a 404 for a
    // job its previous life accepted.
    let jobs = JobExecutor::new(&JobExecutorConfig {
        queue_capacity: config.job_queue_capacity,
        workers: config.job_workers.max(1),
        journal_dir: config.journal_dir.clone(),
    })?;
    let shared = Arc::new(Shared {
        queue: BoundedQueue::new(config.queue_capacity),
        cache: ResultCache::new(config.cache_capacity, config.cache_shards),
        // A couple of kernels per worker keeps several spec families warm
        // without letting the bank hoard application clones unboundedly.
        evaluators: EvaluatorBank::new(config.workers.max(1) * 2),
        metrics: Metrics::new(),
        workers: config.workers.max(1),
        jobs,
    });
    let stop = Arc::new(AtomicBool::new(false));

    let mut workers = Vec::with_capacity(config.workers.max(1));
    for i in 0..config.workers.max(1) {
        let spawned = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("ftes-serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))
        };
        match spawned {
            Ok(handle) => workers.push(handle),
            Err(e) => return Err(abort_start(&shared, workers, e)),
        }
    }

    let acceptor = {
        let shared = Arc::clone(&shared);
        let stop = Arc::clone(&stop);
        let io_timeout = config.io_timeout;
        std::thread::Builder::new()
            .name("ftes-serve-acceptor".into())
            .spawn(move || acceptor_loop(&listener, &shared, &stop, io_timeout))
    };
    let acceptor = match acceptor {
        Ok(handle) => handle,
        Err(e) => return Err(abort_start(&shared, workers, e)),
    };

    Ok(Server { addr, shared, stop, acceptor: Some(acceptor), workers })
}

/// Unwinds a partially-started pool when a thread fails to spawn (fd or
/// thread exhaustion): closes the queue so spawned workers exit, joins
/// them, stops the job executor, and hands the caller the error. A
/// half-alive service would accept connections nobody drains.
fn abort_start(shared: &Shared, workers: Vec<JoinHandle<()>>, error: io::Error) -> io::Error {
    shared.queue.close();
    for handle in workers {
        let _ = handle.join();
    }
    shared.jobs.shutdown();
    error
}

fn acceptor_loop(listener: &TcpListener, shared: &Shared, stop: &AtomicBool, io_timeout: Duration) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if stop.load(Ordering::Acquire) {
                    return;
                }
                // Persistent accept errors (EMFILE under fd exhaustion,
                // ENFILE, …) would otherwise hot-spin this loop at 100%
                // CPU exactly when the host is resource-starved; a short
                // pause lets workers finish and release descriptors.
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        if stop.load(Ordering::Acquire) {
            return;
        }
        // Timeouts are set before queueing so a stalled client spends its
        // budget in the worker's read, not forever.
        let _ = stream.set_read_timeout(Some(io_timeout));
        let _ = stream.set_write_timeout(Some(io_timeout));
        if let Err(stream) = shared.queue.try_push(stream) {
            // Backpressure: reply 429 inline and move on. Write errors are
            // ignored — the client is gone, there is nothing to free up.
            // `Retry-After` + the depth in the body let well-behaved
            // clients back off instead of hammering a saturated daemon.
            shared.metrics.record_rejected();
            let mut w = ftes::json::JsonWriter::new();
            w.begin_object();
            w.key("error");
            w.string("job queue full, retry later");
            w.key("status");
            w.number_u64(429);
            w.key("queue_depth");
            w.number_usize(shared.queue.depth());
            w.end_object();
            let _ = write_response_with(
                &stream,
                429,
                "application/json",
                &["Retry-After: 1".to_string()],
                &w.finish(),
            );
        }
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(stream) = shared.queue.pop() {
        let started = Instant::now();
        // A handler panic must cost one request, not one worker: an
        // unisolated unwind would silently shrink the pool until the
        // acceptor queues connections nobody serves. Handlers hold no
        // locks across user input, so unwind safety is not a concern.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            serve_connection(shared, &stream)
        }));
        let recorded = match outcome {
            Ok(recorded) => recorded,
            Err(_) => {
                let _ = write_response(&stream, 500, &error_body(500, "internal handler failure"));
                Some((Endpoint::Other, 500))
            }
        };
        if let Some((endpoint, status)) = recorded {
            shared.metrics.record(endpoint, status, started.elapsed().as_micros() as u64);
        }
    }
}

/// Reads one request and replies. `None` means the connection died before
/// a response was possible (nothing meaningful to record).
fn serve_connection(shared: &Shared, stream: &TcpStream) -> Option<(Endpoint, u16)> {
    let request = match read_request(stream) {
        Ok(Ok(request)) => request,
        Ok(Err(e)) => {
            let status = e.status();
            let _ = write_response(stream, status, &error_body(status, &e.message()));
            return Some((Endpoint::Other, status));
        }
        // Read timeout / disconnect: drop silently.
        Err(_) => return None,
    };
    let _span = ftes::obs::span(ftes::obs::names::SERVE_REQUEST);
    let (endpoint, reply) = route(shared, &request);
    let extra: Vec<String> =
        reply.retry_after.iter().map(|secs| format!("Retry-After: {secs}")).collect();
    // A failed write still records: the work was done, the client left.
    let _ = write_response_with(stream, reply.status, reply.content_type, &extra, &reply.body);
    Some((endpoint, reply.status))
}

impl Server {
    /// The bound address (with the OS-assigned port when `addr` used 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live metrics snapshot (same numbers `/metrics` reports).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Result-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// Stops accepting, drains in-flight work and joins every thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    /// Blocks the calling thread until the server shuts down (which, with
    /// the handle consumed, only happens on process exit — the `ftes
    /// serve` foreground mode).
    pub fn wait(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }

    fn shutdown_inner(&mut self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        // Wake the acceptor out of `accept()`; it observes `stop` before
        // queueing anything.
        let _ = TcpStream::connect(self.addr);
        self.shared.queue.close();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Jobs cancel at their next row boundary; the journal has already
        // recorded everything delivered, so a restart resumes them.
        self.shared.jobs.shutdown();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_on_an_ephemeral_port_and_shuts_down() {
        let server = start(ServeConfig {
            workers: 2,
            io_timeout: Duration::from_secs(2),
            ..ServeConfig::default()
        })
        .unwrap();
        assert_ne!(server.addr().port(), 0);
        server.shutdown();
    }

    #[test]
    fn drop_is_a_clean_shutdown() {
        let addr = {
            let server = start(ServeConfig::default()).unwrap();
            server.addr()
        };
        // The port is released once the handle is gone.
        let rebind = TcpListener::bind(addr);
        assert!(rebind.is_ok(), "{rebind:?}");
    }
}
