//! Prometheus text exposition (format 0.0.4) for `GET
//! /metrics?format=prometheus`.
//!
//! Renders the same live snapshot as the JSON `/metrics` body — request
//! and response counters, per-endpoint latency histograms, phase totals,
//! cache and evaluator-bank accounting, job-executor state and journal
//! counters — as `# HELP`/`# TYPE`-annotated metric families with the
//! `ftes_` prefix. The module also hosts [`validate_prometheus`], a
//! from-scratch format checker used by the test suite and the CI smoke
//! scrape (the workspace has no client library to lean on).

use crate::metrics::bucket_upper;
use crate::server::Shared;
use std::collections::BTreeSet;
use std::fmt::Write;

/// Escapes a label value: `\` `"` and newline per the exposition format.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Writes one `# HELP` + `# TYPE` header pair.
fn family(out: &mut String, name: &str, help: &str, kind: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Writes one sample with a single label.
fn sample1(out: &mut String, name: &str, label: &str, value: &str, v: u64) {
    let _ = writeln!(out, "{name}{{{label}=\"{}\"}} {v}", escape_label(value));
}

/// Writes one unlabelled sample.
fn sample(out: &mut String, name: &str, v: u64) {
    let _ = writeln!(out, "{name} {v}");
}

/// Renders the full exposition from the live shared state.
///
/// Families are emitted in a fixed order and label sets are drawn from
/// static enums, so two scrapes of an idle daemon are byte-identical —
/// which is what lets the tests pin the metric-name set exactly.
pub fn render_prometheus(shared: &Shared) -> String {
    let snap = shared.metrics.snapshot();
    let cache = shared.cache.stats();
    let bank = shared.evaluators.stats();
    let jobs = shared.jobs.stats();
    let mut out = String::with_capacity(16 * 1024);

    family(&mut out, "ftes_requests_total", "Requests routed, by endpoint.", "counter");
    for (label, count) in snap.requests_by_endpoint {
        sample1(&mut out, "ftes_requests_total", "endpoint", label, count);
    }

    family(&mut out, "ftes_responses_total", "Responses sent, by status class.", "counter");
    for (class, count) in [
        ("2xx", snap.status_2xx),
        ("4xx", snap.status_4xx),
        ("5xx", snap.status_5xx),
        ("429", snap.rejected_429),
    ] {
        sample1(&mut out, "ftes_responses_total", "class", class, count);
    }

    family(
        &mut out,
        "ftes_request_duration_microseconds",
        "Request latency histogram, by endpoint (power-of-two buckets).",
        "histogram",
    );
    for ep in &snap.latency_by_endpoint {
        let label = escape_label(ep.label);
        let mut cumulative = 0u64;
        for (i, count) in ep.histogram.iter().enumerate() {
            cumulative += count;
            let _ = writeln!(
                out,
                "ftes_request_duration_microseconds_bucket{{endpoint=\"{label}\",le=\"{}\"}} {cumulative}",
                bucket_upper(i)
            );
        }
        let _ = writeln!(
            out,
            "ftes_request_duration_microseconds_bucket{{endpoint=\"{label}\",le=\"+Inf\"}} {}",
            ep.served
        );
        let _ = writeln!(
            out,
            "ftes_request_duration_microseconds_sum{{endpoint=\"{label}\"}} {}",
            ep.sum_us
        );
        let _ = writeln!(
            out,
            "ftes_request_duration_microseconds_count{{endpoint=\"{label}\"}} {}",
            ep.served
        );
    }

    family(
        &mut out,
        "ftes_phase_microseconds_total",
        "Cumulative time in each synthesis phase.",
        "counter",
    );
    for phase in &snap.phases {
        sample1(&mut out, "ftes_phase_microseconds_total", "phase", phase.label, phase.total_us);
    }
    family(&mut out, "ftes_phase_runs_total", "Runs of each synthesis phase.", "counter");
    for phase in &snap.phases {
        sample1(&mut out, "ftes_phase_runs_total", "phase", phase.label, phase.count);
    }

    family(&mut out, "ftes_cache_hits_total", "Result-cache hits.", "counter");
    sample(&mut out, "ftes_cache_hits_total", cache.hits);
    family(&mut out, "ftes_cache_misses_total", "Result-cache misses.", "counter");
    sample(&mut out, "ftes_cache_misses_total", cache.misses);
    family(&mut out, "ftes_cache_entries", "Result-cache resident entries.", "gauge");
    sample(&mut out, "ftes_cache_entries", cache.entries as u64);

    family(&mut out, "ftes_evaluator_bank_hits_total", "Evaluator-bank checkout hits.", "counter");
    sample(&mut out, "ftes_evaluator_bank_hits_total", bank.hits);
    family(
        &mut out,
        "ftes_evaluator_bank_misses_total",
        "Evaluator-bank checkout misses.",
        "counter",
    );
    sample(&mut out, "ftes_evaluator_bank_misses_total", bank.misses);
    family(&mut out, "ftes_evaluator_bank_banked", "Evaluator kernels currently banked.", "gauge");
    sample(&mut out, "ftes_evaluator_bank_banked", bank.banked as u64);

    family(&mut out, "ftes_queue_depth", "Connections waiting in the accept queue.", "gauge");
    sample(&mut out, "ftes_queue_depth", shared.queue.depth() as u64);

    family(
        &mut out,
        "ftes_jobs",
        "Jobs by lifecycle state (terminal states are cumulative).",
        "gauge",
    );
    for (state, count) in [
        ("queued", jobs.queued),
        ("running", jobs.running),
        ("completed", jobs.completed),
        ("failed", jobs.failed),
        ("cancelled", jobs.cancelled),
    ] {
        sample1(&mut out, "ftes_jobs", "state", state, count);
    }
    family(&mut out, "ftes_jobs_queue_depth", "Jobs waiting in the bounded job queue.", "gauge");
    sample(&mut out, "ftes_jobs_queue_depth", jobs.queue_depth as u64);
    family(&mut out, "ftes_jobs_queue_capacity", "Job queue capacity.", "gauge");
    sample(&mut out, "ftes_jobs_queue_capacity", jobs.queue_capacity as u64);
    family(&mut out, "ftes_jobs_resumed_total", "Jobs resumed from the journal.", "counter");
    sample(&mut out, "ftes_jobs_resumed_total", jobs.resumed);
    family(
        &mut out,
        "ftes_jobs_replayed_total",
        "Completed jobs replayed from the journal.",
        "counter",
    );
    sample(&mut out, "ftes_jobs_replayed_total", jobs.replayed);

    family(&mut out, "ftes_journal_bytes_total", "Bytes appended to the job journal.", "counter");
    sample(&mut out, "ftes_journal_bytes_total", jobs.journal_bytes);
    family(
        &mut out,
        "ftes_journal_appends_total",
        "Frames appended to the job journal.",
        "counter",
    );
    sample(&mut out, "ftes_journal_appends_total", jobs.journal_appends);
    family(
        &mut out,
        "ftes_journal_append_microseconds_total",
        "Cumulative wall time spent appending (including fsync).",
        "counter",
    );
    sample(&mut out, "ftes_journal_append_microseconds_total", jobs.journal_append_us);

    family(&mut out, "ftes_certifications_total", "Certification verdicts.", "counter");
    for (verdict, count) in [
        ("certified", snap.certification.certified),
        ("refuted", snap.certification.refuted),
        ("uncertifiable", snap.certification.uncertifiable),
    ] {
        sample1(&mut out, "ftes_certifications_total", "verdict", verdict, count);
    }
    family(&mut out, "ftes_repair_rounds_total", "Certify-and-repair rounds run.", "counter");
    sample(&mut out, "ftes_repair_rounds_total", snap.certification.repair_rounds);

    family(
        &mut out,
        "ftes_trace_events_dropped_total",
        "Trace events dropped on full per-thread ring buffers.",
        "counter",
    );
    sample(&mut out, "ftes_trace_events_dropped_total", ftes_obs::dropped_events());

    out
}

/// One parsed sample line: family name (with `_bucket`/`_sum`/`_count`
/// suffixes stripped back to the family), labels untouched.
fn sample_family(name: &str, typed: &BTreeSet<(String, String)>) -> String {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if typed.contains(&(base.to_string(), "histogram".to_string())) {
                return base.to_string();
            }
        }
    }
    name.to_string()
}

/// Checks exposition-format well-formedness and returns the family names.
///
/// Enforced: every sample belongs to a family announced by `# TYPE`
/// before its first sample; metric names are legal; sample lines parse as
/// `name[{labels}] value`; histogram families carry an `le="+Inf"` bucket
/// whose value equals the family's `_count` for the same label set.
///
/// # Errors
///
/// Returns a message naming the first offending line.
pub fn validate_prometheus(text: &str) -> Result<BTreeSet<String>, String> {
    fn legal_name(name: &str) -> bool {
        !name.is_empty()
            && name.chars().enumerate().all(|(i, c)| {
                c == '_' || c == ':' || c.is_ascii_alphabetic() || (i > 0 && c.is_ascii_digit())
            })
    }

    let mut typed: BTreeSet<(String, String)> = BTreeSet::new();
    let mut families = BTreeSet::new();
    // (family, endpoint-ish label prefix) → (+Inf bucket value, count value)
    let mut inf_buckets: Vec<(String, String, u64)> = Vec::new();
    let mut counts: Vec<(String, String, u64)> = Vec::new();

    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.splitn(2, ' ');
            let name = it.next().unwrap_or("");
            let kind = it.next().ok_or_else(|| format!("line {n}: TYPE without a kind"))?;
            if !legal_name(name) {
                return Err(format!("line {n}: illegal metric name `{name}`"));
            }
            if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                return Err(format!("line {n}: unknown TYPE `{kind}`"));
            }
            typed.insert((name.to_string(), kind.to_string()));
            families.insert(name.to_string());
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().unwrap_or("");
            if !legal_name(name) {
                return Err(format!("line {n}: illegal metric name `{name}`"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // free-form comment
        }
        // Sample: name[{labels}] value
        let (name_labels, value) =
            line.rsplit_once(' ').ok_or_else(|| format!("line {n}: sample without a value"))?;
        let value: f64 =
            value.parse().map_err(|_| format!("line {n}: bad sample value `{value}`"))?;
        let (name, labels) = match name_labels.split_once('{') {
            Some((name, rest)) => {
                let labels = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {n}: unterminated label set"))?;
                (name, labels)
            }
            None => (name_labels, ""),
        };
        if !legal_name(name) {
            return Err(format!("line {n}: illegal metric name `{name}`"));
        }
        let fam = sample_family(name, &typed);
        if !families.contains(&fam) {
            return Err(format!("line {n}: sample `{name}` precedes its # TYPE"));
        }
        if name.ends_with("_bucket") && labels.contains("le=\"+Inf\"") {
            let rest = labels.replace("le=\"+Inf\"", "");
            inf_buckets.push((fam.clone(), rest.trim_matches(',').to_string(), value as u64));
        }
        if typed.contains(&(fam.clone(), "histogram".to_string())) && name.ends_with("_count") {
            counts.push((fam.clone(), labels.to_string(), value as u64));
        }
    }
    for (fam, labels, inf) in &inf_buckets {
        let matched = counts
            .iter()
            .find(|(f, l, _)| f == fam && l == labels)
            .ok_or_else(|| format!("histogram `{fam}` has a +Inf bucket but no _count"))?;
        if matched.2 != *inf {
            return Err(format!("histogram `{fam}`: +Inf bucket {} != _count {}", inf, matched.2));
        }
    }
    if families.is_empty() {
        return Err("no metric families".to_string());
    }
    Ok(families)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_escaping_covers_backslash_quote_newline() {
        assert_eq!(escape_label(r#"a\b"c"#), r#"a\\b\"c"#);
        assert_eq!(escape_label("a\nb"), "a\\nb");
        assert_eq!(escape_label("plain"), "plain");
    }

    #[test]
    fn validator_accepts_a_minimal_exposition() {
        let text = "# HELP x_total Things.\n# TYPE x_total counter\nx_total{k=\"v\"} 3\n";
        let families = validate_prometheus(text).unwrap();
        assert!(families.contains("x_total"));
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        // Sample before its TYPE header.
        assert!(validate_prometheus("x_total 3\n").is_err());
        // Bad value.
        assert!(validate_prometheus("# TYPE x_total counter\nx_total three\n").is_err());
        // Unterminated label set.
        assert!(validate_prometheus("# TYPE x_total counter\nx_total{k=\"v\" 3\n").is_err());
        // Illegal name.
        assert!(validate_prometheus("# TYPE 9x counter\n9x 3\n").is_err());
        // Histogram whose +Inf bucket disagrees with _count.
        let bad = "# TYPE h histogram\n\
                   h_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 4\n";
        assert!(validate_prometheus(bad).is_err());
    }

    #[test]
    fn histogram_inf_bucket_must_match_count() {
        let good = "# TYPE h histogram\n\
                    h_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 4\nh_sum 9\nh_count 4\n";
        validate_prometheus(good).unwrap();
    }
}
