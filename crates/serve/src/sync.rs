//! Poison-tolerant locking for the request path.
//!
//! A poisoned mutex means some thread panicked while holding the lock.
//! For the service's shared structures (response cache, job queue,
//! evaluator bank) every lock-held section is a short sequence of
//! container operations that cannot leave the data half-updated in a way
//! later readers would misread — worst case a stale LRU stamp or a lost
//! cache entry, both of which the system already tolerates. Propagating
//! the poison as a second panic would instead let one bad request take
//! down every worker thread that touches the structure afterwards, so
//! the handlers recover the guard and keep serving. The `ftes-lint`
//! panic-freedom rule bans `unwrap`/`expect` in this crate to force lock
//! sites through these helpers.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Locks `mutex`, recovering the guard from a poisoned lock.
pub(crate) fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Waits on `cv`, recovering the guard from a poisoned lock.
pub(crate) fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}
