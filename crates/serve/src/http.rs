//! A deliberately small HTTP/1.1 subset: exactly what the synthesis
//! service and its load harness need, hand-rolled over `std::io` (the
//! workspace is dependency-free by necessity).
//!
//! Supported: request line + headers + `Content-Length` bodies, one
//! request per connection (`Connection: close` on every response).
//! Unsupported on purpose: keep-alive, chunked encoding, TLS, HTTP/2 —
//! the service's unit of work is a whole synthesis run, so per-request
//! connection overhead is noise.

use std::io::{BufRead, BufReader, Read, Write};

/// Maximum accepted size of the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Maximum accepted request-body size (`.ftes` specs are small; a megabyte
/// is three orders of magnitude above the largest spec in the repo).
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed request: method, path and raw body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, upper-case as received (`GET`, `POST`, …).
    pub method: String,
    /// Request target path (query string included verbatim, if any).
    pub path: String,
    /// Raw request body (`Content-Length` bytes).
    pub body: Vec<u8>,
}

/// A request that could not be read; maps onto a 4xx response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Malformed request line, header, or premature end of stream.
    BadRequest(String),
    /// A body-carrying method arrived without `Content-Length`.
    LengthRequired,
    /// Head or body exceeded the hard limits.
    PayloadTooLarge,
}

impl HttpError {
    /// The response status this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::BadRequest(_) => 400,
            HttpError::LengthRequired => 411,
            HttpError::PayloadTooLarge => 413,
        }
    }

    /// Human-readable description for the JSON error body.
    pub fn message(&self) -> String {
        match self {
            HttpError::BadRequest(msg) => msg.clone(),
            HttpError::LengthRequired => "POST requires Content-Length".into(),
            HttpError::PayloadTooLarge => "request exceeds size limits".into(),
        }
    }
}

/// Reads one request from `stream`.
///
/// # Errors
///
/// Returns [`HttpError`] for malformed input; IO failures (including read
/// timeouts and clients that disconnected without sending anything)
/// surface as `Ok(None)`-like `io::Error`s to the caller, which just drops
/// the connection.
pub fn read_request<R: Read>(stream: R) -> Result<Result<Request, HttpError>, std::io::Error> {
    let mut reader = BufReader::new(stream);
    let mut head_bytes = 0usize;

    let line = match read_line_limited(&mut reader, MAX_HEAD_BYTES)? {
        Ok(line) if line.is_empty() => {
            // Client connected and closed without sending anything — a
            // port scan or TCP health probe, not a client error. Surface
            // it as an IO error so the server drops the connection
            // silently instead of polluting the 4xx metrics.
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before a request",
            ));
        }
        Ok(line) => line,
        Err(e) => return Ok(Err(e)),
    };
    head_bytes += line.len();
    let mut parts = line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) => (m.to_string(), p.to_string(), v),
        _ => return Ok(Err(HttpError::BadRequest("malformed request line".into()))),
    };
    if !version.starts_with("HTTP/1.") {
        return Ok(Err(HttpError::BadRequest(format!("unsupported version `{version}`"))));
    }

    let mut content_length: Option<usize> = None;
    loop {
        let line = match read_line_limited(&mut reader, MAX_HEAD_BYTES - head_bytes)? {
            Ok(line) if line.is_empty() => {
                return Ok(Err(HttpError::BadRequest("unexpected end of headers".into())));
            }
            Ok(line) => line,
            Err(e) => return Ok(Err(e)),
        };
        head_bytes += line.len();
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        let Some((name, value)) = trimmed.split_once(':') else {
            return Ok(Err(HttpError::BadRequest(format!("malformed header `{trimmed}`"))));
        };
        if name.eq_ignore_ascii_case("content-length") {
            match value.trim().parse::<usize>() {
                Ok(n) => content_length = Some(n),
                Err(_) => {
                    return Ok(Err(HttpError::BadRequest("bad Content-Length".into())));
                }
            }
        }
    }

    let body = match (method.as_str(), content_length) {
        ("POST" | "PUT" | "PATCH", None) => return Ok(Err(HttpError::LengthRequired)),
        (_, None) => Vec::new(),
        (_, Some(n)) if n > MAX_BODY_BYTES => return Ok(Err(HttpError::PayloadTooLarge)),
        (_, Some(n)) => {
            let mut body = vec![0u8; n];
            reader.read_exact(&mut body)?;
            body
        }
    };
    Ok(Ok(Request { method, path, body }))
}

/// Reads one `\n`-terminated line, buffering at most `limit` bytes.
///
/// `BufRead::read_line` would buffer an arbitrarily long newline-free
/// stream before any length check could run — a one-connection memory
/// exhaustion vector — so this variant enforces the limit *while*
/// consuming. An empty string means EOF before any byte.
fn read_line_limited<R: BufRead>(
    reader: &mut R,
    limit: usize,
) -> Result<Result<String, HttpError>, std::io::Error> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            break; // EOF
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if line.len() + pos + 1 > limit {
                    return Ok(Err(HttpError::PayloadTooLarge));
                }
                line.extend_from_slice(&available[..=pos]);
                reader.consume(pos + 1);
                break;
            }
            None => {
                let n = available.len();
                if line.len() + n > limit {
                    return Ok(Err(HttpError::PayloadTooLarge));
                }
                line.extend_from_slice(available);
                reader.consume(n);
            }
        }
    }
    match String::from_utf8(line) {
        Ok(line) => Ok(Ok(line)),
        Err(_) => Ok(Err(HttpError::BadRequest("request head is not UTF-8".into()))),
    }
}

/// The standard reason phrase for the status codes the service emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        411 => "Length Required",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Writes a complete `Connection: close` response with a JSON body.
pub fn write_response<W: Write>(stream: W, status: u16, body: &str) -> Result<(), std::io::Error> {
    write_response_with(stream, status, "application/json", &[], body)
}

/// [`write_response`] with an explicit `Content-Type` (the Prometheus
/// exposition of `/metrics` is `text/plain`) and extra response headers
/// (each a complete `Name: value` pair, no CRLF) — how `429` replies
/// carry `Retry-After`.
pub fn write_response_with<W: Write>(
    mut stream: W,
    status: u16,
    content_type: &str,
    extra_headers: &[String],
    body: &str,
) -> Result<(), std::io::Error> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        status,
        reason_phrase(status),
        content_type,
        body.len(),
    );
    for header in extra_headers {
        head.push_str(header);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Renders the canonical JSON error body for a status + message.
pub fn error_body(status: u16, message: &str) -> String {
    let mut w = ftes::json::JsonWriter::new();
    w.begin_object();
    w.key("error");
    w.string(message);
    w.key("status");
    w.number_u64(status as u64);
    w.end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        read_request(raw.as_bytes()).expect("in-memory reads cannot fail")
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse("POST /synthesize HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello")
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/synthesize");
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn parses_a_get_without_body() {
        let req = parse("GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!((req.method.as_str(), req.path.as_str()), ("GET", "/healthz"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn post_without_content_length_is_411() {
        assert_eq!(
            parse("POST /synthesize HTTP/1.1\r\n\r\n").unwrap_err(),
            HttpError::LengthRequired
        );
    }

    #[test]
    fn malformed_inputs_are_400() {
        assert_eq!(parse("NONSENSE\r\n\r\n").unwrap_err().status(), 400);
        assert_eq!(parse("GET / SPDY/3\r\n\r\n").unwrap_err().status(), 400);
        assert_eq!(parse("GET / HTTP/1.1\r\nno-colon-here\r\n\r\n").unwrap_err().status(), 400);
        assert_eq!(
            parse("POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n").unwrap_err().status(),
            400
        );
    }

    #[test]
    fn newline_free_floods_are_cut_off_at_the_head_limit() {
        // A client streaming an endless line must be stopped after
        // MAX_HEAD_BYTES buffered bytes, not buffered indefinitely.
        let flood = "a".repeat(4 * MAX_HEAD_BYTES);
        assert_eq!(parse(&flood).unwrap_err(), HttpError::PayloadTooLarge);
        let header_flood =
            format!("GET / HTTP/1.1\r\nX-Huge: {}\r\n\r\n", "b".repeat(4 * MAX_HEAD_BYTES));
        assert_eq!(parse(&header_flood).unwrap_err(), HttpError::PayloadTooLarge);
    }

    #[test]
    fn bare_probe_connections_are_dropped_not_answered() {
        // Connect-and-close without bytes (health probes, port scans) is
        // an IO-level non-event: no response, no 4xx metrics noise.
        let err = read_request(&b""[..]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn non_utf8_head_is_400() {
        let raw: Vec<u8> = b"GET /\xff\xfe HTTP/1.1\r\n\r\n".to_vec();
        let err = read_request(raw.as_slice()).unwrap().unwrap_err();
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn oversized_payloads_are_413() {
        let huge = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        assert_eq!(parse(&huge).unwrap_err(), HttpError::PayloadTooLarge);
        let mut many_headers = String::from("GET / HTTP/1.1\r\n");
        for i in 0..2000 {
            many_headers.push_str(&format!("X-Pad-{i}: aaaaaaaaaaaaaaaa\r\n"));
        }
        many_headers.push_str("\r\n");
        assert_eq!(parse(&many_headers).unwrap_err(), HttpError::PayloadTooLarge);
    }

    #[test]
    fn responses_are_well_formed() {
        let mut out = Vec::new();
        write_response(&mut out, 429, &error_body(429, "queue full")).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Content-Length: "));
        assert!(text.ends_with(r#"{"error":"queue full","status":429}"#));
    }
}
