//! A bounded MPMC job queue with explicit backpressure.
//!
//! The acceptor thread pushes accepted connections with [`try_push`]
//! (never blocking — a full queue is the signal to shed load with a 429),
//! worker threads block on [`pop`]. Closing the queue wakes every worker
//! so shutdown needs no sentinel jobs.
//!
//! [`try_push`]: BoundedQueue::try_push
//! [`pop`]: BoundedQueue::pop

use crate::sync;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity FIFO shared between the acceptor and the worker pool.
pub struct BoundedQueue<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    ready: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` jobs (minimum 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            capacity: capacity.max(1),
            state: Mutex::new(State { items: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
        }
    }

    /// Enqueues `item`, or returns it when the queue is full or closed —
    /// the caller turns that into a 429 (full) or drops it (closed).
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut state = sync::lock(&self.state);
        if state.closed || state.items.len() >= self.capacity {
            return Err(item);
        }
        state.items.push_back(item);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until a job is available (FIFO) or the queue is closed.
    /// `None` means closed *and* drained: the worker should exit.
    pub fn pop(&self) -> Option<T> {
        let mut state = sync::lock(&self.state);
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = sync::wait(&self.ready, state);
        }
    }

    /// Closes the queue: pending jobs still drain, new pushes fail, blocked
    /// workers wake up.
    pub fn close(&self) {
        sync::lock(&self.state).closed = true;
        self.ready.notify_all();
    }

    /// Jobs currently waiting (excludes jobs already claimed by workers).
    pub fn depth(&self) -> usize {
        sync::lock(&self.state).items.len()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_and_backpressure() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Ok(()));
        assert_eq!(q.try_push(3), Err(3), "full queue sheds load");
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(3), Ok(()));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn close_drains_then_wakes_workers() {
        let q = Arc::new(BoundedQueue::new(4));
        q.try_push(7).unwrap();
        q.close();
        assert_eq!(q.try_push(8), Err(8), "closed queue rejects pushes");
        assert_eq!(q.pop(), Some(7), "pending jobs still drain");
        assert_eq!(q.pop(), None);

        // A worker blocked in pop() wakes on close.
        let q2 = Arc::new(BoundedQueue::<u32>::new(1));
        let waiter = {
            let q2 = Arc::clone(&q2);
            std::thread::spawn(move || q2.pop())
        };
        // Give the worker a moment to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q2.close();
        assert_eq!(waiter.join().unwrap(), None);
    }

    #[test]
    fn capacity_is_at_least_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Err(2));
    }
}
