//! The per-file invariant passes.
//!
//! Each pass is a walk over one file's token stream, scoped by path/crate
//! according to the tables below. The scoping *is* the rule: `Instant::now`
//! is fine in the serve daemon's latency metrics and a violation in the
//! scheduler, because the pinned invariants (ARCHITECTURE.md) draw exactly
//! that line — observability is a sanctioned wall-clock side channel,
//! result bytes are not.

use crate::diag::Diagnostic;
use crate::file::SourceFile;
use crate::lexer::TokKind;

/// Every rule the analyzer knows, with a one-line summary. The names are
/// the vocabulary of `--rule` and of `allow(…)` directives; docs/lints.md
/// is the long-form catalog.
pub const RULES: &[(&str, &str)] = &[
    ("determinism", "no wall clocks, ambient rng, or hash-order collections in result-byte crates"),
    ("byte-identity", "no wall-clock or host-derived fields in serve/corpus/jobs result emitters"),
    ("atomics-policy", "every Ordering:: use conforms to the per-crate policy table"),
    ("panic-freedom", "no unwrap/expect/panic paths in serve handlers and jobs workers"),
    ("forbid-unsafe", "crate roots carry #![forbid(unsafe_code)]; unsafe only in obs::ring"),
    ("taxonomy", "obs names, call sites, docs table, and CI check_trace agree"),
    ("allow-syntax", "allow directives are well-formed, reasoned, and earn their keep"),
];

/// Crates whose output is (or feeds) result bytes: synthesis models, the
/// schedulers, the search, the generators, the job executor. A wall clock
/// or hash-order iteration here can change what the user sees.
const RESULT_BYTE_CRATES: &[&str] = &[
    "model", "tdma", "ft", "ftcpg", "sched", "sim", "gen", "opt", "explore", "soft", "core", "jobs",
];

/// The files that serialize results (JSON/CSV emitters). The byte-identity
/// invariant says: same request, same bytes — forever, from any replica.
const EMIT_FILES: &[&str] = &[
    "crates/serve/src/handlers.rs",
    "crates/explore/src/report.rs",
    "crates/core/src/corpus.rs",
    "crates/jobs/src/driver.rs",
    "crates/sched/src/export.rs",
];

/// Field names that smell like wall-clock or host state when they appear
/// as string literals in an emit file (JSON keys, CSV headers).
const EMIT_DENYLIST: &[&str] = &[
    "wall_ms",
    "wall_us",
    "elapsed",
    "elapsed_ms",
    "elapsed_us",
    "timestamp",
    "duration_ms",
    "duration_us",
    "hostname",
    "pid",
    "uptime",
    "started_at",
    "finished_at",
];

/// Request-path files where a panic is an outage: serve's daemon side
/// (everything but the load-test client) and the jobs executor stack.
fn panic_free_scope(path: &str) -> bool {
    (path.starts_with("crates/serve/src/") && path != "crates/serve/src/load.rs")
        || path.starts_with("crates/jobs/src/")
}

/// The atomic orderings a crate may use. SeqCst is banned workspace-wide:
/// nothing here needs a single total order, and SeqCst tends to paper over
/// unclear pairings.
fn allowed_orderings(path: &str) -> &'static [&'static str] {
    if path == "crates/obs/src/lib.rs" {
        // The global tracing gate: a Relaxed load-and-branch is the whole
        // overhead budget. Anything stronger here is a perf bug.
        &["Relaxed"]
    } else if path.starts_with("crates/jobs/src/") {
        // Executor/journal state transitions publish data between threads;
        // Relaxed would be a correctness bug, not an optimization.
        &["Acquire", "Release", "AcqRel"]
    } else {
        &["Relaxed", "Acquire", "Release", "AcqRel"]
    }
}

const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Idents that look like cross-thread control flags. A `Relaxed` load or
/// store on one of these pairs with nothing and synchronizes nothing.
const SYNC_FLAG_HINTS: &[&str] = &["cancel", "stop", "closed", "shutdown"];

/// Panicking method and macro names forbidden in request paths
/// (`debug_assert*` stays legal: compiled out of release builds).
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];
const PANIC_MACROS: &[&str] =
    &["panic", "todo", "unimplemented", "unreachable", "assert", "assert_eq", "assert_ne"];

fn rule_on(filter: Option<&str>, rule: &str) -> bool {
    filter.is_none_or(|f| f == rule)
}

/// Run every per-file pass over `file`, honoring `filter` (`--rule`).
pub fn check_file(file: &mut SourceFile<'_>, filter: Option<&str>, out: &mut Vec<Diagnostic>) {
    if rule_on(filter, "allow-syntax") {
        out.extend(file.directive_diags.clone());
    }
    // Collect findings first (immutable walk), then report them through
    // the allow filter (which mutates allow-usage state).
    let mut found: Vec<(&'static str, u32, String)> = Vec::new();
    if rule_on(filter, "determinism") && RESULT_BYTE_CRATES.contains(&file.crate_name) {
        determinism(file, &mut found);
    }
    if rule_on(filter, "byte-identity") && EMIT_FILES.contains(&file.path) {
        byte_identity(file, &mut found);
    }
    if rule_on(filter, "atomics-policy") {
        atomics_policy(file, &mut found);
    }
    if rule_on(filter, "panic-freedom") && panic_free_scope(file.path) {
        panic_freedom(file, &mut found);
    }
    if rule_on(filter, "forbid-unsafe") {
        forbid_unsafe(file, &mut found);
    }
    for (rule, line, message) in found {
        file.report(out, rule, line, message);
    }
}

fn determinism(f: &SourceFile<'_>, out: &mut Vec<(&'static str, u32, String)>) {
    let toks = f.tokens();
    let mut in_use_decl = false;
    for (i, tok) in toks.iter().enumerate() {
        if f.is_test[i] {
            continue;
        }
        match tok.kind {
            TokKind::Ident => {}
            TokKind::Punct(';') => {
                in_use_decl = false;
                continue;
            }
            _ => continue,
        }
        let text = f.tok_text(i);
        let line = tok.line;
        match text {
            "use" => in_use_decl = true,
            "Instant" | "SystemTime" if f.match_seq(i + 1, &[":", ":", "now"]) => {
                out.push((
                    "determinism",
                    line,
                    format!(
                        "{text}::now() in a result-byte crate: wall clocks must never \
                         influence result bytes (route timings through ftes-obs instead)"
                    ),
                ));
            }
            "thread_rng" | "from_entropy" => {
                out.push((
                    "determinism",
                    line,
                    format!(
                        "{text} draws ambient entropy: all randomness must come from an \
                         explicit caller-provided seed"
                    ),
                ));
            }
            "HashMap" | "HashSet" => {
                let qualified = i >= 3 && f.match_seq(i - 3, &["collections", ":", ":"]);
                if in_use_decl || qualified {
                    out.push((
                        "determinism",
                        line,
                        format!(
                            "{text} in a result-byte crate: iteration order varies run to \
                             run; use BTreeMap/BTreeSet or prove no iteration reaches \
                             result bytes"
                        ),
                    ));
                }
            }
            _ => {}
        }
    }
}

fn byte_identity(f: &SourceFile<'_>, out: &mut Vec<(&'static str, u32, String)>) {
    let toks = f.tokens();
    for (i, tok) in toks.iter().enumerate() {
        if f.is_test[i] {
            continue;
        }
        let line = tok.line;
        match tok.kind {
            TokKind::Ident => {
                let text = f.tok_text(i);
                if (text == "Instant" || text == "SystemTime")
                    && f.match_seq(i + 1, &[":", ":", "now"])
                {
                    out.push((
                        "byte-identity",
                        line,
                        format!(
                            "{text}::now() in a result emitter: wall-clock state must not \
                             be live while result bytes are rendered"
                        ),
                    ));
                }
            }
            TokKind::Str => {
                let contents = tok.str_contents(f.text);
                let hit = EMIT_DENYLIST.contains(&contents)
                    || (contents.contains("wall_ms") && contents.len() > "wall_ms".len());
                if hit {
                    out.push((
                        "byte-identity",
                        line,
                        format!(
                            "literal \"{}\" names a wall-clock/host-derived field in a \
                             result emitter: such fields break replica byte-identity",
                            contents.escape_default()
                        ),
                    ));
                }
            }
            _ => {}
        }
    }
}

fn atomics_policy(f: &SourceFile<'_>, out: &mut Vec<(&'static str, u32, String)>) {
    let toks = f.tokens();
    let allowed = allowed_orderings(f.path);
    for i in 0..toks.len() {
        if f.is_test[i] || toks[i].kind != TokKind::Ident || f.tok_text(i) != "Ordering" {
            continue;
        }
        if !f.match_seq(i + 1, &[":", ":"]) || i + 3 >= toks.len() {
            continue;
        }
        let variant = f.tok_text(i + 3);
        if !ATOMIC_ORDERINGS.contains(&variant) {
            continue; // `std::cmp::Ordering::Less` and friends
        }
        let line = toks[i].line;
        if !allowed.contains(&variant) {
            out.push((
                "atomics-policy",
                line,
                format!(
                    "Ordering::{variant} is outside this file's policy (allowed: {})",
                    allowed.join(", ")
                ),
            ));
            continue;
        }
        if variant == "Relaxed" {
            if let Some(flag) = relaxed_sync_flag(f, i) {
                out.push((
                    "atomics-policy",
                    line,
                    format!(
                        "`{flag}` looks like a cross-thread control flag but is accessed \
                         with Ordering::Relaxed, which synchronizes nothing; use \
                         Acquire/Release"
                    ),
                ));
            }
        }
    }
}

/// For a `Relaxed` at token `i` (`Ordering`): if the nearest preceding
/// `load`/`store`/`swap` call's receiver chain names a control flag,
/// return that name. Both scans stop at statement boundaries so a flag on
/// a previous line can't contaminate an unrelated atomic.
fn relaxed_sync_flag(f: &SourceFile<'_>, i: usize) -> Option<String> {
    let toks = f.tokens();
    let mut j = i;
    let mut op = None;
    for _ in 0..6 {
        if j == 0 {
            break;
        }
        j -= 1;
        match toks[j].kind {
            TokKind::Punct(';') | TokKind::Punct('{') | TokKind::Punct('}') => return None,
            TokKind::Ident if matches!(f.tok_text(j), "load" | "store" | "swap") => {
                op = Some(j);
                break;
            }
            _ => {}
        }
    }
    let op = op?;
    let mut k = op;
    for _ in 0..10 {
        if k == 0 {
            break;
        }
        k -= 1;
        match toks[k].kind {
            TokKind::Punct(';') | TokKind::Punct('{') | TokKind::Punct('}') => return None,
            TokKind::Ident => {
                let text = f.tok_text(k);
                let lower = text.to_ascii_lowercase();
                if SYNC_FLAG_HINTS.iter().any(|h| lower.contains(h)) {
                    return Some(text.to_string());
                }
            }
            _ => {}
        }
    }
    None
}

fn panic_freedom(f: &SourceFile<'_>, out: &mut Vec<(&'static str, u32, String)>) {
    let toks = f.tokens();
    for i in 0..toks.len() {
        if f.is_test[i] || toks[i].kind != TokKind::Ident {
            continue;
        }
        let text = f.tok_text(i);
        let line = toks[i].line;
        let is_method_call = i > 0
            && toks[i - 1].kind == TokKind::Punct('.')
            && PANIC_METHODS.contains(&text)
            && matches!(toks.get(i + 1).map(|t| t.kind), Some(TokKind::Punct('(')));
        if is_method_call {
            out.push((
                "panic-freedom",
                line,
                format!(
                    ".{text}() in a request path: a panic here kills a worker or wedges \
                     a request; handle the failure or recover explicitly"
                ),
            ));
            continue;
        }
        if PANIC_MACROS.contains(&text)
            && matches!(toks.get(i + 1).map(|t| t.kind), Some(TokKind::Punct('!')))
        {
            out.push((
                "panic-freedom",
                line,
                format!("{text}! in a request path: return an error instead of panicking"),
            ));
        }
    }
}

fn forbid_unsafe(f: &SourceFile<'_>, out: &mut Vec<(&'static str, u32, String)>) {
    // (a) The `unsafe` keyword is confined to the one audited SPSC ring.
    if f.path != "crates/obs/src/ring.rs" {
        let toks = f.tokens();
        for (i, tok) in toks.iter().enumerate() {
            if !f.is_test[i] && tok.kind == TokKind::Ident && f.tok_text(i) == "unsafe" {
                out.push((
                    "forbid-unsafe",
                    tok.line,
                    "unsafe code outside crates/obs/src/ring.rs (the one audited unsafe \
                     module in the workspace)"
                        .to_string(),
                ));
            }
        }
    }
    // (b) Crate roots must pin the guarantee with the attribute, so a
    // future `unsafe` fails at compile time, not only at lint time. The
    // obs root is exempt: it hosts ring.rs and cannot forbid.
    let is_crate_root = (f.path.starts_with("crates/")
        && (f.path.ends_with("/src/lib.rs") || f.path.ends_with("/src/main.rs")))
        || f.path == "src/lib.rs";
    if is_crate_root && f.path != "crates/obs/src/lib.rs" {
        let toks = f.tokens();
        let has_attr = (0..toks.len())
            .any(|i| f.match_seq(i, &["#", "!", "[", "forbid", "(", "unsafe_code", ")", "]"]));
        if !has_attr {
            out.push((
                "forbid-unsafe",
                1,
                "crate root is missing #![forbid(unsafe_code)]".to_string(),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::SourceFile;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let crate_name = crate::workspace::crate_of(path);
        let mut f = SourceFile::new(path, crate_name, src);
        let mut out = Vec::new();
        check_file(&mut f, None, &mut out);
        f.unused_allow_diags(&mut out);
        out
    }

    #[test]
    fn instant_now_flagged_in_result_crate_only() {
        let src = "fn f() { let t = Instant::now(); }";
        let hits = run("crates/sched/src/x.rs", src);
        assert!(hits.iter().any(|d| d.rule == "determinism"), "{hits:?}");
        // serve is not a result-byte crate; same code is clean there
        // (handlers.rs, the emit file, is a different rule's scope).
        let hits = run("crates/serve/src/metrics.rs", src);
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn allow_with_reason_suppresses() {
        let src =
            "// ftes-lint: allow(determinism) reason=\"feeds obs only\"\nlet t = Instant::now();";
        let hits = run("crates/sched/src/x.rs", src);
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn hashmap_use_flagged_btreemap_not() {
        let hits = run("crates/opt/src/x.rs", "use std::collections::HashMap;\n");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "determinism");
        let hits = run("crates/opt/src/x.rs", "use std::collections::BTreeMap;\n");
        assert!(hits.is_empty());
    }

    #[test]
    fn hashmap_in_string_or_comment_not_flagged() {
        let src = "// HashMap would be wrong here\nlet s = \"HashMap\";\n";
        assert!(run("crates/opt/src/x.rs", src).is_empty());
    }

    #[test]
    fn seqcst_banned_everywhere() {
        let src = "fn f(a: &AtomicBool) { a.load(Ordering::SeqCst); }";
        let hits = run("crates/serve/src/x.rs", src);
        assert!(hits.iter().any(|d| d.rule == "atomics-policy"));
    }

    #[test]
    fn cmp_ordering_is_not_an_atomic() {
        let src = "fn f() -> std::cmp::Ordering { std::cmp::Ordering::Less }";
        assert!(run("crates/serve/src/x.rs", src).is_empty());
    }

    #[test]
    fn relaxed_cancel_flag_flagged() {
        let src = "fn f(cancel: &AtomicBool) { if cancel.load(Ordering::Relaxed) {} }";
        let hits = run("crates/explore/src/x.rs", src);
        assert!(
            hits.iter().any(|d| d.rule == "atomics-policy" && d.message.contains("cancel")),
            "{hits:?}"
        );
        let src = "fn f(cancel: &AtomicBool) { if cancel.load(Ordering::Acquire) {} }";
        assert!(run("crates/explore/src/x.rs", src).is_empty());
    }

    #[test]
    fn relaxed_counter_not_a_flag() {
        let src = "fn f(hits: &AtomicU64) { hits.fetch_add(1, Ordering::Relaxed); }";
        assert!(run("crates/serve/src/metrics2.rs", src).is_empty());
    }

    #[test]
    fn jobs_crate_forbids_relaxed() {
        let src = "fn f(n: &AtomicU64) { n.load(Ordering::Relaxed); }";
        let hits = run("crates/jobs/src/x.rs", src);
        assert!(hits.iter().any(|d| d.rule == "atomics-policy"));
    }

    #[test]
    fn unwrap_flagged_in_request_paths_only() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert!(run("crates/serve/src/h.rs", src).iter().any(|d| d.rule == "panic-freedom"));
        assert!(run("crates/jobs/src/h.rs", src).iter().any(|d| d.rule == "panic-freedom"));
        assert!(run("crates/serve/src/load.rs", src).is_empty(), "client harness is exempt");
        assert!(run("crates/opt/src/h.rs", src).is_empty(), "library code is exempt");
    }

    #[test]
    fn unwrap_or_else_is_not_unwrap() {
        let src = "fn f(m: &Mutex<u32>) -> u32 { *m.lock().unwrap_or_else(|e| e.into_inner()) }";
        assert!(run("crates/serve/src/h.rs", src).is_empty());
    }

    #[test]
    fn test_code_is_exempt_from_panic_freedom() {
        let src = "#[cfg(test)]\nmod tests { fn f(x: Option<u32>) { x.unwrap(); } }";
        assert!(run("crates/serve/src/h.rs", src).is_empty());
    }

    #[test]
    fn panicking_macros_flagged() {
        for m in ["panic!(\"boom\")", "todo!()", "unreachable!()", "assert!(x)"] {
            let src = format!("fn f(x: bool) {{ {m}; }}");
            let hits = run("crates/jobs/src/h.rs", &src);
            assert!(hits.iter().any(|d| d.rule == "panic-freedom"), "{m}: {hits:?}");
        }
        // debug_assert compiles out of release builds.
        let src = "fn f(x: bool) { debug_assert!(x); }";
        assert!(run("crates/jobs/src/h.rs", src).is_empty());
    }

    #[test]
    fn wall_clock_literal_flagged_in_emit_file() {
        let src = "fn f(w: &mut W) { w.key(\"timestamp\"); }";
        let hits = run("crates/jobs/src/driver.rs", src);
        assert!(hits.iter().any(|d| d.rule == "byte-identity"), "{hits:?}");
        // The same literal in a non-emit file is out of scope.
        assert!(run("crates/serve/src/metrics3.rs", src).is_empty());
    }

    #[test]
    fn wall_ms_inside_csv_header_flagged() {
        let src = "const H: &str = \"spec,cost,wall_ms,verified\";";
        let hits = run("crates/explore/src/report.rs", src);
        assert!(hits.iter().any(|d| d.rule == "byte-identity"), "{hits:?}");
    }

    #[test]
    fn missing_forbid_attr_flagged_on_crate_roots() {
        let hits = run("crates/sim/src/lib.rs", "//! docs\npub fn f() {}\n");
        assert!(hits.iter().any(|d| d.rule == "forbid-unsafe"), "{hits:?}");
        let ok = run("crates/sim/src/lib.rs", "#![forbid(unsafe_code)]\npub fn f() {}\n");
        assert!(ok.is_empty(), "{ok:?}");
        // Non-root files don't need the attribute.
        assert!(run("crates/sim/src/other.rs", "pub fn f() {}\n").is_empty());
    }

    #[test]
    fn unsafe_outside_ring_flagged() {
        let src =
            "#![forbid(unsafe_code)]\nfn f() { unsafe { core::hint::unreachable_unchecked() } }";
        let hits = run("crates/sim/src/lib.rs", src);
        assert!(hits.iter().any(|d| d.rule == "forbid-unsafe"));
        // ring.rs is the audited exception.
        let hits = run("crates/obs/src/ring.rs", "fn f() { unsafe { x() } }");
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn unused_allow_is_flagged() {
        let src = "// ftes-lint: allow(determinism) reason=\"nothing here\"\nlet x = 1;";
        let hits = run("crates/sched/src/x.rs", src);
        assert!(
            hits.iter().any(|d| d.rule == "allow-syntax" && d.message.contains("unused")),
            "{hits:?}"
        );
    }
}
