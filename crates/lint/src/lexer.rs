//! A small, dependency-free Rust token lexer.
//!
//! The lint passes need just enough lexical structure to be sound: they
//! must never mistake the contents of a string literal or a comment for
//! code (`"Instant::now"` in a doc string is not a violation), and they
//! must read comments precisely enough to honor `// ftes-lint: allow(…)`
//! directives. A full parser is deliberately out of scope — every rule is
//! expressible over the token stream plus a little context.
//!
//! The classic lexical traps are handled head-on:
//!
//! - strings with escapes (`"a \" b"`), possibly spanning lines;
//! - raw strings with any hash depth (`r#"…"#`, `r##"…"##`) and raw
//!   identifiers (`r#type`);
//! - byte strings / byte chars (`b"…"`, `b'x'`, `br#"…"#`);
//! - nested block comments (`/* outer /* inner */ still comment */`);
//! - lifetimes vs char literals (`&'a str` vs `'a'` vs `'\n'`).

/// What a token is; the payload lives in [`Token::text`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers, without `r#`).
    Ident,
    /// A lifetime such as `'a` (text excludes the quote).
    Lifetime,
    /// A char or byte-char literal, quotes included.
    Char,
    /// A string, byte-string, or raw-string literal, delimiters included.
    Str,
    /// An integer or float literal.
    Number,
    /// A single punctuation character (`::` is two `Punct(':')` tokens).
    Punct(char),
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token class.
    pub kind: TokKind,
    /// Byte offset of the token start in the source.
    pub start: usize,
    /// Byte offset one past the token end.
    pub end: usize,
    /// 1-based line of the token start.
    pub line: u32,
}

impl Token {
    /// The token's source text.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// For `Str` tokens: the literal's contents with delimiters (and any
    /// `b`/`r`/hash prefix) stripped. Escape sequences are left as-is —
    /// the rules only compare against escape-free names.
    pub fn str_contents<'a>(&self, src: &'a str) -> &'a str {
        let t = self.text(src);
        let t = t.strip_prefix('b').unwrap_or(t);
        let t = match t.strip_prefix('r') {
            Some(rest) => rest.trim_matches('#'),
            None => t,
        };
        t.strip_prefix('"').and_then(|t| t.strip_suffix('"')).unwrap_or(t)
    }
}

/// A comment (line or block) with its text and starting line.
#[derive(Debug, Clone)]
pub struct Comment {
    /// The comment text without the `//` / `/*` delimiters.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// True for `//…` comments that are the only content on their line
    /// (nothing but whitespace before them) — an allow directive in such
    /// a comment covers the *next* line.
    pub own_line: bool,
    /// True for doc comments (`///`, `//!`, `/**`, `/*!`): documentation
    /// prose, never lint directives.
    pub doc: bool,
}

/// The lexer's output: code tokens and comments, in source order.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens.
    pub tokens: Vec<Token>,
    /// All comments (doc comments included — they are still comments).
    pub comments: Vec<Comment>,
}

/// Lex `src`. The lexer is error-tolerant: anything unrecognizable is
/// emitted as a `Punct` token so the passes keep going.
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    // Whether only whitespace has appeared since the last newline; used
    // to classify `//` comments as own-line or trailing.
    let mut line_blank = true;

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                line_blank = true;
                i += 1;
            }
            _ if c.is_ascii_whitespace() => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                let text = &src[start..i];
                out.comments.push(Comment {
                    text: text.to_string(),
                    line,
                    own_line: line_blank,
                    doc: text.starts_with('/') || text.starts_with('!'),
                });
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start_line = line;
                let text_start = i + 2;
                let mut depth = 1u32;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let text_end = i.saturating_sub(2).max(text_start);
                let text = &src[text_start..text_end];
                out.comments.push(Comment {
                    text: text.to_string(),
                    line: start_line,
                    own_line: false,
                    doc: text.starts_with('*') || text.starts_with('!'),
                });
            }
            b'r' if matches!(bytes.get(i + 1), Some(b'"') | Some(b'#')) => {
                if let Some(tok) = lex_raw_string(src, i, &mut line) {
                    i = tok.end;
                    out.tokens.push(tok);
                    line_blank = false;
                } else {
                    // `r#ident` raw identifier (or a stray `r#`).
                    let (tok, next) = lex_ident(src, i, line);
                    i = next;
                    out.tokens.push(tok);
                    line_blank = false;
                }
            }
            b'b' if matches!(bytes.get(i + 1), Some(b'"') | Some(b'\'')) => {
                let tok = if bytes[i + 1] == b'"' {
                    lex_string(src, i, i + 1, &mut line)
                } else {
                    lex_char(src, i, i + 1, line)
                };
                i = tok.end;
                out.tokens.push(tok);
                line_blank = false;
            }
            b'b' if bytes.get(i + 1) == Some(&b'r')
                && matches!(bytes.get(i + 2), Some(b'"') | Some(b'#')) =>
            {
                if let Some(tok) = lex_raw_string(src, i, &mut line) {
                    i = tok.end;
                    out.tokens.push(tok);
                } else {
                    let (tok, next) = lex_ident(src, i, line);
                    i = next;
                    out.tokens.push(tok);
                }
                line_blank = false;
            }
            b'"' => {
                let tok = lex_string(src, i, i, &mut line);
                i = tok.end;
                out.tokens.push(tok);
                line_blank = false;
            }
            b'\'' => {
                let tok = lex_quote(src, i, line);
                i = tok.end;
                out.tokens.push(tok);
                line_blank = false;
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                i += 1;
                while i < bytes.len() {
                    let b = bytes[i];
                    let digit_dot = b == b'.'
                        && bytes.get(i + 1).is_some_and(|n| n.is_ascii_digit())
                        && bytes[i - 1] != b'.';
                    if b.is_ascii_alphanumeric() || b == b'_' || digit_dot {
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token { kind: TokKind::Number, start, end: i, line });
                line_blank = false;
            }
            _ if c.is_ascii_alphabetic() || c == b'_' || c >= 0x80 => {
                let (tok, next) = lex_ident(src, i, line);
                i = next;
                out.tokens.push(tok);
                line_blank = false;
            }
            _ => {
                out.tokens.push(Token {
                    kind: TokKind::Punct(c as char),
                    start: i,
                    end: i + 1,
                    line,
                });
                i += 1;
                line_blank = false;
            }
        }
    }
    out
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lex an identifier starting at `i` (handles the `r#ident` prefix).
fn lex_ident(src: &str, i: usize, line: u32) -> (Token, usize) {
    let bytes = src.as_bytes();
    let start = i;
    let mut j = i;
    if bytes[j] == b'r' && bytes.get(j + 1) == Some(&b'#') {
        j += 2;
    }
    while j < bytes.len() && is_ident_byte(bytes[j]) {
        j += 1;
    }
    if j == start {
        // Lone `r#` with nothing attachable: consume the `r` as an ident.
        j = start + 1;
    }
    (Token { kind: TokKind::Ident, start, end: j, line }, j)
}

/// Lex a `"…"` (or `b"…"`) string whose opening quote is at `quote`.
/// `start` is where the token (prefix included) begins.
fn lex_string(src: &str, start: usize, quote: usize, line: &mut u32) -> Token {
    let bytes = src.as_bytes();
    let tok_line = *line;
    let mut i = quote + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'"' => {
                i += 1;
                break;
            }
            _ => i += 1,
        }
    }
    Token { kind: TokKind::Str, start, end: i.min(bytes.len()), line: tok_line }
}

/// Lex a raw (possibly byte-) string starting at `start` (`r`/`br`).
/// Returns `None` when the hashes are not followed by a quote — the
/// caller then re-lexes as a raw identifier.
fn lex_raw_string(src: &str, start: usize, line: &mut u32) -> Option<Token> {
    let bytes = src.as_bytes();
    let tok_line = *line;
    let mut i = start + 1; // past `r`
    if bytes.get(i) == Some(&b'r') {
        i += 1; // `br`
    }
    let mut hashes = 0usize;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    if bytes.get(i) != Some(&b'"') {
        return None;
    }
    i += 1;
    let mut newlines = 0u32;
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            newlines += 1;
            i += 1;
        } else if bytes[i] == b'"' && bytes[i + 1..].iter().take(hashes).all(|&b| b == b'#') {
            i += 1 + hashes;
            *line += newlines;
            return Some(Token { kind: TokKind::Str, start, end: i, line: tok_line });
        } else {
            i += 1;
        }
    }
    *line += newlines;
    Some(Token { kind: TokKind::Str, start, end: bytes.len(), line: tok_line })
}

/// Lex a char or byte-char literal whose quote is at `quote`.
fn lex_char(src: &str, start: usize, quote: usize, line: u32) -> Token {
    let bytes = src.as_bytes();
    let mut i = quote + 1;
    if bytes.get(i) == Some(&b'\\') {
        i += 2;
        // Multi-char escapes: `\x41`, `\u{1F600}`.
        while i < bytes.len() && bytes[i] != b'\'' {
            i += 1;
        }
    } else if i < bytes.len() {
        // One char, possibly multi-byte UTF-8.
        i += utf8_len(bytes[i]);
    }
    if bytes.get(i) == Some(&b'\'') {
        i += 1;
    }
    Token { kind: TokKind::Char, start, end: i.min(bytes.len()), line }
}

fn utf8_len(b: u8) -> usize {
    match b {
        _ if b < 0x80 => 1,
        _ if b >> 5 == 0b110 => 2,
        _ if b >> 4 == 0b1110 => 3,
        _ => 4,
    }
}

/// Disambiguate `'` at `start`: lifetime (`'a`), char (`'a'`, `'\n'`).
fn lex_quote(src: &str, start: usize, line: u32) -> Token {
    let bytes = src.as_bytes();
    match bytes.get(start + 1) {
        Some(b'\\') => lex_char(src, start, start, line),
        Some(&c) if is_ident_byte(c) || c == b' ' => {
            // `'a'` is a char; `'a` (next non-ident byte is not `'`) is a
            // lifetime. Scan the ident run and look at what follows.
            let mut j = start + 1;
            while j < bytes.len() && is_ident_byte(bytes[j]) {
                j += 1;
            }
            if bytes.get(j) == Some(&b'\'') && j > start + 1 {
                Token { kind: TokKind::Char, start, end: j + 1, line }
            } else if j == start + 1 {
                // `' '` (space char) or stray quote.
                lex_char(src, start, start, line)
            } else {
                Token { kind: TokKind::Lifetime, start: start + 1, end: j, line }
            }
        }
        _ => lex_char(src, start, start, line),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).tokens.iter().map(|t| (t.kind, t.text(src).to_string())).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let got = kinds("let x = a::b;");
        assert_eq!(
            got,
            vec![
                (TokKind::Ident, "let".into()),
                (TokKind::Ident, "x".into()),
                (TokKind::Punct('='), "=".into()),
                (TokKind::Ident, "a".into()),
                (TokKind::Punct(':'), ":".into()),
                (TokKind::Punct(':'), ":".into()),
                (TokKind::Ident, "b".into()),
                (TokKind::Punct(';'), ";".into()),
            ]
        );
    }

    #[test]
    fn strings_hide_code() {
        let src = r#"let s = "Instant::now() \" quoted"; done"#;
        let got = kinds(src);
        assert!(got.iter().any(|(k, t)| *k == TokKind::Str && t.contains("Instant")));
        assert!(!got.iter().any(|(k, t)| *k == TokKind::Ident && t == "Instant"));
        assert!(got.iter().any(|(k, t)| *k == TokKind::Ident && t == "done"));
    }

    #[test]
    fn raw_strings_any_hash_depth() {
        let src = r###"let s = r#"a "quoted" b"#; let t = r##"x"#y"##;"###;
        let got = kinds(src);
        let strs: Vec<_> = got.iter().filter(|(k, _)| *k == TokKind::Str).collect();
        assert_eq!(strs.len(), 2);
        assert_eq!(strs[0].1, r##"r#"a "quoted" b"#"##);
        assert_eq!(strs[1].1, r###"r##"x"#y"##"###);
    }

    #[test]
    fn raw_string_contents() {
        let src = r##"r#"hello"#"##;
        let lexed = lex(src);
        assert_eq!(lexed.tokens[0].str_contents(src), "hello");
    }

    #[test]
    fn raw_ident_is_not_a_raw_string() {
        let got = kinds("let r#type = 1;");
        assert!(got.iter().any(|(k, t)| *k == TokKind::Ident && t == "r#type"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let got = kinds("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(got.iter().any(|(k, t)| *k == TokKind::Lifetime && t == "a"));
        assert!(got.iter().any(|(k, t)| *k == TokKind::Char && t == "'x'"));
    }

    #[test]
    fn escaped_char_literals() {
        let got = kinds(r"let c = '\n'; let q = '\''; let u = '\u{1F600}';");
        let chars: Vec<_> = got.iter().filter(|(k, _)| *k == TokKind::Char).collect();
        assert_eq!(chars.len(), 3);
        assert_eq!(chars[0].1, r"'\n'");
        assert_eq!(chars[1].1, r"'\''");
        assert_eq!(chars[2].1, r"'\u{1F600}'");
    }

    #[test]
    fn nested_block_comments() {
        let lexed = lex("a /* outer /* inner */ still */ b");
        let idents: Vec<_> = lexed.tokens.iter().map(|t| t.kind).collect();
        assert_eq!(idents, vec![TokKind::Ident, TokKind::Ident]);
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("inner"));
    }

    #[test]
    fn line_comments_and_own_line_flag() {
        let lexed = lex("x; // trailing\n  // own line\ny;");
        assert_eq!(lexed.comments.len(), 2);
        assert!(!lexed.comments[0].own_line);
        assert_eq!(lexed.comments[0].text, " trailing");
        assert!(lexed.comments[1].own_line);
        assert_eq!(lexed.comments[1].line, 2);
    }

    #[test]
    fn doc_comments_are_tagged() {
        let lexed =
            lex("/// outer doc\n//! inner doc\n// plain\n/** block doc */\n/* plain block */");
        let docs: Vec<bool> = lexed.comments.iter().map(|c| c.doc).collect();
        assert_eq!(docs, vec![true, true, false, true, false]);
    }

    #[test]
    fn line_numbers_across_multiline_strings() {
        let src = "let a = \"one\ntwo\";\nlet b = 1;";
        let lexed = lex(src);
        let b = lexed.tokens.iter().find(|t| t.text(src) == "b").unwrap();
        assert_eq!(b.line, 3);
    }

    #[test]
    fn byte_literals() {
        let got = kinds(r#"let a = b"bytes"; let c = b'x';"#);
        assert!(got.iter().any(|(k, t)| *k == TokKind::Str && t == "b\"bytes\""));
        assert!(got.iter().any(|(k, t)| *k == TokKind::Char && t == "b'x'"));
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let got = kinds("0..n; 1.max(2); 3.5;");
        assert!(got.iter().any(|(k, t)| *k == TokKind::Number && t == "0"));
        assert!(got.iter().any(|(k, t)| *k == TokKind::Number && t == "3.5"));
        assert!(got.iter().any(|(k, t)| *k == TokKind::Ident && t == "max"));
    }
}
