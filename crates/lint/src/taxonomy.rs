//! Taxonomy coherence: the `ftes_obs::names` constants, their call sites,
//! the `docs/observability.md` table, and CI's `check_trace` required set
//! must agree — by construction, checked here.
//!
//! Four failure modes are errors:
//!
//! 1. **defined-but-unused** — a name constant no instrumented site emits;
//! 2. **used-but-undefined** — a string-literal `span("…")`/`counter("…")`
//!    call outside `ftes-obs` (bypassing the taxonomy entirely);
//! 3. **undocumented** — a name missing from docs/observability.md;
//! 4. **CI drift** — a `check_trace` argument in `.github/workflows/ci.yml`
//!    that is not a taxonomy name (folded-stack args are split on `;` and
//!    each frame checked).

use std::fs;
use std::path::Path;

use crate::diag::Diagnostic;
use crate::file::SourceFile;
use crate::lexer::TokKind;

const NAMES_FILE: &str = "crates/obs/src/names.rs";
const DOCS_FILE: &str = "docs/observability.md";
const CI_FILE: &str = ".github/workflows/ci.yml";

/// Run the workspace-level taxonomy pass.
pub fn check(root: &Path, files: &mut [SourceFile<'_>], out: &mut Vec<Diagnostic>) {
    // 1. Parse the taxonomy: `pub const IDENT: &str = "value";` in names.rs.
    let Some(names_file) = files.iter().position(|f| f.path == NAMES_FILE) else {
        out.push(Diagnostic {
            path: NAMES_FILE.to_string(),
            line: 0,
            rule: "taxonomy",
            message: "taxonomy source file is missing".to_string(),
        });
        return;
    };
    let consts = parse_name_consts(&files[names_file]);

    // 2. Every constant is emitted (referenced as `names::IDENT`) somewhere
    //    outside ftes-obs.
    for (ident, value, line) in &consts {
        let used = files.iter().any(|f| {
            f.crate_name != "obs"
                && (0..f.tokens().len()).any(|i| {
                    f.match_seq(i, &["names", ":", ":"])
                        && f.tokens()
                            .get(i + 3)
                            .is_some_and(|t| t.kind == TokKind::Ident && t.text(f.text) == *ident)
                })
        });
        if !used {
            out.push(Diagnostic {
                path: NAMES_FILE.to_string(),
                line: *line,
                rule: "taxonomy",
                message: format!(
                    "`{ident}` (\"{value}\") is defined but no site outside ftes-obs \
                     emits it"
                ),
            });
        }
    }

    // 3. Every constant's value is documented (backticked) in the docs table.
    match fs::read_to_string(root.join(DOCS_FILE)) {
        Ok(docs) => {
            for (ident, value, line) in &consts {
                if !docs.contains(&format!("`{value}`")) {
                    out.push(Diagnostic {
                        path: NAMES_FILE.to_string(),
                        line: *line,
                        rule: "taxonomy",
                        message: format!(
                            "`{ident}` (\"{value}\") is not documented in {DOCS_FILE}"
                        ),
                    });
                }
            }
        }
        Err(_) => out.push(Diagnostic {
            path: DOCS_FILE.to_string(),
            line: 0,
            rule: "taxonomy",
            message: "taxonomy documentation file is missing".to_string(),
        }),
    }

    // 4. No literal-named span/counter calls outside ftes-obs: every event
    //    must come from the taxonomy, or the docs/CI checks above are
    //    checking the wrong universe.
    let mut literal_calls: Vec<(usize, u32, String)> = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        if f.crate_name == "obs" {
            continue;
        }
        let toks = f.tokens();
        for i in 0..toks.len() {
            if f.is_test[i] || toks[i].kind != TokKind::Ident {
                continue;
            }
            let text = f.tok_text(i);
            if (text == "span" || text == "counter")
                && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Punct('('))
                && toks.get(i + 2).is_some_and(|t| t.kind == TokKind::Str)
            {
                literal_calls.push((
                    fi,
                    toks[i].line,
                    format!(
                        "{text}({}) names its event with a string literal; use a \
                         `ftes_obs::names` constant so docs and CI stay coherent",
                        f.tok_text(i + 2)
                    ),
                ));
            }
        }
    }
    for (fi, line, message) in literal_calls {
        files[fi].report(out, "taxonomy", line, message);
    }

    // 5. CI's check_trace required-name sets are taxonomy names.
    let values: Vec<&str> = consts.iter().map(|(_, v, _)| v.as_str()).collect();
    match fs::read_to_string(root.join(CI_FILE)) {
        Ok(ci) => check_ci(&ci, &values, out),
        Err(_) => out.push(Diagnostic {
            path: CI_FILE.to_string(),
            line: 0,
            rule: "taxonomy",
            message: "CI workflow file is missing".to_string(),
        }),
    }
}

/// Extract `(ident, value, line)` for each `pub const X: &str = "…";`.
fn parse_name_consts(f: &SourceFile<'_>) -> Vec<(String, String, u32)> {
    let toks = f.tokens();
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if f.match_seq(i, &["pub", "const"])
            && toks.get(i + 2).is_some_and(|t| t.kind == TokKind::Ident)
            && f.match_seq(i + 3, &[":", "&", "str", "="])
            && toks.get(i + 7).is_some_and(|t| t.kind == TokKind::Str)
        {
            out.push((
                f.tok_text(i + 2).to_string(),
                toks[i + 7].str_contents(f.text).to_string(),
                toks[i + 2].line,
            ));
        }
    }
    out
}

/// Validate every `check_trace` invocation's bare-name arguments.
fn check_ci(ci: &str, values: &[&str], out: &mut Vec<Diagnostic>) {
    // Join backslash-continued lines, remembering each joined line's start.
    let mut joined: Vec<(u32, String)> = Vec::new();
    let mut pending: Option<(u32, String)> = None;
    for (idx, raw) in ci.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let (cont, text) = match raw.trim_end().strip_suffix('\\') {
            Some(t) => (true, t.to_string()),
            None => (false, raw.to_string()),
        };
        match pending.take() {
            Some((start, mut acc)) => {
                acc.push(' ');
                acc.push_str(text.trim_start());
                if cont {
                    pending = Some((start, acc));
                } else {
                    joined.push((start, acc));
                }
            }
            None => {
                if cont {
                    pending = Some((line_no, text));
                } else {
                    joined.push((line_no, text));
                }
            }
        }
    }
    if let Some(p) = pending {
        joined.push(p);
    }

    for (line_no, text) in &joined {
        let Some(pos) = text.find("check_trace") else { continue };
        for word in text[pos + "check_trace".len()..].split_whitespace() {
            let word = word.trim_matches(|c| c == '"' || c == '\'');
            if word.starts_with('-')
                || word.contains('$')
                || word.contains('/')
                || word.ends_with(".json")
                || word.ends_with(".folded")
                || word.is_empty()
            {
                continue;
            }
            // A folded-stack argument names a frame path: check each frame.
            for frame in word.split(';') {
                if !values.contains(&frame) {
                    out.push(Diagnostic {
                        path: CI_FILE.to_string(),
                        line: *line_no,
                        rule: "taxonomy",
                        message: format!(
                            "check_trace argument `{frame}` is not a name in \
                             ftes_obs::names — CI would accept a trace the taxonomy \
                             does not describe"
                        ),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_name_consts() {
        let src = "/// doc\npub const PARSE: &str = \"parse\";\npub const GROUP: &[&str] = &[PARSE];\npub const N: usize = 3;";
        let f = SourceFile::new("crates/obs/src/names.rs", "obs", src);
        let consts = parse_name_consts(&f);
        assert_eq!(consts.len(), 1);
        assert_eq!(consts[0].0, "PARSE");
        assert_eq!(consts[0].1, "parse");
    }

    #[test]
    fn ci_args_checked_with_continuations_and_folded_stacks() {
        let ci = "run: |\n  check_trace t.json \\\n    parse synthesize \\\n    \"synthesize;optimize\" --pipeline\n";
        let mut out = Vec::new();
        check_ci(ci, &["parse", "synthesize", "optimize"], &mut out);
        assert!(out.is_empty(), "{out:?}");
        let mut out = Vec::new();
        check_ci(ci, &["parse", "synthesize"], &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("`optimize`"));
    }
}
