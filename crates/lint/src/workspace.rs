//! Workspace walking: which files are first-party, and what crate each
//! belongs to. The walk is deterministic (sorted directory order) so lint
//! output is byte-stable — the analyzer obeys its own determinism rule.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One first-party source file, loaded.
pub struct LoadedFile {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// Short crate name (`sched`, `serve`, …; `ftes-repro` for the root).
    pub crate_name: String,
    /// File contents.
    pub text: String,
}

/// The short crate name a workspace-relative path belongs to.
pub fn crate_of(rel: &str) -> &str {
    rel.strip_prefix("crates/").and_then(|rest| rest.split('/').next()).unwrap_or("ftes-repro")
}

/// Load every first-party `.rs` file: `crates/*/src/**` (bin targets
/// included) plus the root facade `src/**`. Vendored shims (`vendor/`)
/// and the `tests/`/`benches/` trees are out of scope — the invariants
/// the passes prove are about shipped library/binary code, and tests
/// assert wall-clock/panic behavior on purpose.
pub fn load_sources(root: &Path) -> io::Result<Vec<LoadedFile>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    for crate_dir in sorted_dirs(&crates_dir)? {
        let src = crate_dir.join("src");
        if src.is_dir() {
            collect_rs(root, &src, &mut out)?;
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(root, &root_src, &mut out)?;
    }
    Ok(out)
}

/// Ascend from `start` to the workspace root (the directory holding both
/// `Cargo.toml` and `crates/`).
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn sorted_dirs(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut dirs: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    Ok(dirs)
}

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<LoadedFile>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(root, &path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
            let crate_name = crate_of(&rel).to_string();
            let text = fs::read_to_string(&path)?;
            out.push(LoadedFile { rel, crate_name, text });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_of_paths() {
        assert_eq!(crate_of("crates/sched/src/certify.rs"), "sched");
        assert_eq!(crate_of("crates/serve/src/bin/x.rs"), "serve");
        assert_eq!(crate_of("src/lib.rs"), "ftes-repro");
    }
}
