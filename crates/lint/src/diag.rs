//! Diagnostics: the one output type every pass produces, with text and
//! JSON renderings. Ordering is fully deterministic (path, line, rule,
//! message) so lint output is byte-stable run to run — the analyzer holds
//! itself to the invariant it enforces.

use std::fmt;

/// One finding: `path:line: rule: message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based source line (0 for whole-file findings).
    pub line: u32,
    /// The rule that fired (stable machine name, e.g. `determinism`).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}: {}", self.path, self.line, self.rule, self.message)
    }
}

/// Sort diagnostics into the canonical (path, line, rule, message) order.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule, a.message.as_str()).cmp(&(
            b.path.as_str(),
            b.line,
            b.rule,
            b.message.as_str(),
        ))
    });
}

/// Render diagnostics as a JSON array (machine-readable `--json` output).
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[\n");
    for (i, d) in diags.iter().enumerate() {
        out.push_str("  {\"file\":\"");
        escape_into(&d.path, &mut out);
        out.push_str("\",\"line\":");
        out.push_str(&d.line.to_string());
        out.push_str(",\"rule\":\"");
        escape_into(d.rule, &mut out);
        out.push_str("\",\"message\":\"");
        escape_into(&d.message, &mut out);
        out.push_str("\"}");
        if i + 1 < diags.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_grep_friendly() {
        let d = Diagnostic {
            path: "crates/x/src/a.rs".into(),
            line: 7,
            rule: "determinism",
            message: "m".into(),
        };
        assert_eq!(d.to_string(), "crates/x/src/a.rs:7: determinism: m");
    }

    #[test]
    fn json_escapes() {
        let diags = vec![Diagnostic {
            path: "a.rs".into(),
            line: 1,
            rule: "determinism",
            message: "a \"quoted\" \\ message".into(),
        }];
        let json = to_json(&diags);
        assert!(json.contains(r#""message":"a \"quoted\" \\ message""#), "{json}");
    }

    #[test]
    fn sort_is_total() {
        let mut diags = vec![
            Diagnostic { path: "b.rs".into(), line: 1, rule: "x", message: "m".into() },
            Diagnostic { path: "a.rs".into(), line: 9, rule: "x", message: "m".into() },
            Diagnostic { path: "a.rs".into(), line: 2, rule: "x", message: "m".into() },
        ];
        sort(&mut diags);
        assert_eq!(diags[0].path, "a.rs");
        assert_eq!(diags[0].line, 2);
        assert_eq!(diags[2].path, "b.rs");
    }
}
