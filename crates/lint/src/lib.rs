//! `ftes-lint` — the workspace invariant analyzer.
//!
//! The four pinned invariants (ARCHITECTURE.md) — any-thread-count
//! determinism, serve byte-identity, certified-or-tagged results, journal
//! crash-safety — were enforced only dynamically, by whichever tests
//! happened to exercise them. This crate proves the lexically provable
//! parts at the source level: a dependency-free Rust token lexer
//! ([`lexer`]) feeds invariant-derived passes ([`rules`], [`taxonomy`])
//! that walk every first-party crate and fail CI on a violation.
//!
//! The rule catalog lives in `docs/lints.md`; deliberate exceptions carry
//! `// ftes-lint: allow(<rule>) reason="…"` directives ([`mod@file`]), which
//! themselves must be well-formed, reasoned, and actually used.
//!
//! Run it as `ftes lint [--json] [--rule <name>]`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod file;
pub mod lexer;
pub mod rules;
pub mod taxonomy;
pub mod workspace;

use std::io;
use std::path::Path;

pub use diag::{sort, to_json, Diagnostic};

/// Lint the workspace rooted at `root`. `filter` restricts to one rule
/// (`--rule`); `None` runs everything, including the unused-allow sweep
/// (which is only meaningful when every rule has had its chance to use
/// each allow).
pub fn lint_workspace(root: &Path, filter: Option<&str>) -> io::Result<Vec<Diagnostic>> {
    let sources = workspace::load_sources(root)?;
    let mut files: Vec<file::SourceFile<'_>> =
        sources.iter().map(|s| file::SourceFile::new(&s.rel, &s.crate_name, &s.text)).collect();
    let mut out = Vec::new();
    for f in &mut files {
        rules::check_file(f, filter, &mut out);
    }
    if filter.is_none() || filter == Some("taxonomy") {
        taxonomy::check(root, &mut files, &mut out);
    }
    if filter.is_none() {
        for f in &files {
            f.unused_allow_diags(&mut out);
        }
    }
    diag::sort(&mut out);
    Ok(out)
}

/// Lint a single source text as if it lived at `path` (workspace-relative,
/// `/`-separated). This is the golden-test entry point: fixtures exercise
/// path-scoped rules without touching the filesystem. The taxonomy pass
/// (which needs the whole workspace) does not run here.
pub fn lint_source(path: &str, text: &str) -> Vec<Diagnostic> {
    let crate_name = workspace::crate_of(path);
    let mut f = file::SourceFile::new(path, crate_name, text);
    let mut out = Vec::new();
    rules::check_file(&mut f, None, &mut out);
    f.unused_allow_diags(&mut out);
    diag::sort(&mut out);
    out
}

/// True when `name` is a known rule (for `--rule` validation).
pub fn is_rule(name: &str) -> bool {
    rules::RULES.iter().any(|(n, _)| *n == name)
}
