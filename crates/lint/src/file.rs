//! Per-file analysis context: lexed tokens, `ftes-lint` allow directives,
//! and `#[cfg(test)]` region masking.
//!
//! ## Allow-directive grammar
//!
//! ```text
//! // ftes-lint: allow(rule-a, rule-b) reason="why this is sound"
//! // ftes-lint: allow-file(rule-a) reason="why for the whole file"
//! ```
//!
//! `allow(…)` is line-scoped: it covers the directive's own line and — when
//! the comment stands alone on its line — the next line, so it can sit
//! directly above the code it excuses. `allow-file(…)` covers the whole
//! file. The `reason="…"` clause is **mandatory**: an allow without a
//! reason (or any malformed `ftes-lint:` comment) is itself a diagnostic
//! (`allow-syntax`), as is an allow that excuses nothing (when all rules
//! run, so a `--rule` subset never flags another rule's allows as unused).

use crate::diag::Diagnostic;
use crate::lexer::{lex, Lexed, TokKind, Token};

/// One parsed allow directive.
#[derive(Debug)]
pub struct Allow {
    /// Rules this directive excuses.
    pub rules: Vec<String>,
    /// 1-based line of the directive comment.
    pub line: u32,
    /// Last line the directive covers (`u32::MAX` for `allow-file`).
    pub last_line: u32,
    /// Set when some rule consulted and honored this allow.
    pub used: bool,
}

/// A lexed source file plus everything the passes need to walk it.
pub struct SourceFile<'a> {
    /// Workspace-relative path with `/` separators (diagnostic key).
    pub path: &'a str,
    /// The crate the file belongs to (`lint`, `serve`, … or `ftes-repro`).
    pub crate_name: &'a str,
    /// The raw source text.
    pub text: &'a str,
    /// The lexer output.
    pub lexed: Lexed,
    /// `is_test[i]` — token `i` is inside `#[cfg(test)]`/`#[test]` code.
    pub is_test: Vec<bool>,
    /// Parsed allow directives, in source order.
    pub allows: Vec<Allow>,
    /// Diagnostics found while parsing directives (`allow-syntax`).
    pub directive_diags: Vec<Diagnostic>,
}

impl<'a> SourceFile<'a> {
    /// Lex and preprocess one file.
    pub fn new(path: &'a str, crate_name: &'a str, text: &'a str) -> Self {
        let lexed = lex(text);
        let is_test = mask_test_regions(text, &lexed.tokens);
        let mut allows = Vec::new();
        let mut directive_diags = Vec::new();
        for comment in &lexed.comments {
            parse_directive(comment, path, &mut allows, &mut directive_diags);
        }
        SourceFile { path, crate_name, text, lexed, is_test, allows, directive_diags }
    }

    /// True when `rule` is excused at `line`; marks the matching allow used.
    pub fn allowed(&mut self, rule: &str, line: u32) -> bool {
        for allow in &mut self.allows {
            if line >= allow.line
                && line <= allow.last_line
                && allow.rules.iter().any(|r| r == rule)
            {
                allow.used = true;
                return true;
            }
        }
        false
    }

    /// Emit `diag` unless an allow covers it; pushes into `out`.
    pub fn report(
        &mut self,
        out: &mut Vec<Diagnostic>,
        rule: &'static str,
        line: u32,
        message: String,
    ) {
        if !self.allowed(rule, line) {
            out.push(Diagnostic { path: self.path.to_string(), line, rule, message });
        }
    }

    /// Diagnostics for allows no rule ever consulted. Only meaningful
    /// after *all* rules ran over the file.
    pub fn unused_allow_diags(&self, out: &mut Vec<Diagnostic>) {
        for allow in &self.allows {
            if !allow.used {
                out.push(Diagnostic {
                    path: self.path.to_string(),
                    line: allow.line,
                    rule: "allow-syntax",
                    message: format!(
                        "unused allow({}): nothing on the covered lines trips the rule",
                        allow.rules.join(",")
                    ),
                });
            }
        }
    }

    /// The token stream.
    pub fn tokens(&self) -> &[Token] {
        &self.lexed.tokens
    }

    /// Shorthand: token `i`'s text.
    pub fn tok_text(&self, i: usize) -> &str {
        self.lexed.tokens[i].text(self.text)
    }

    /// True when tokens `i..` match `pattern`, where each pattern element
    /// is matched against ident text or a single punct char (e.g.
    /// `&["Instant", ":", ":", "now"]`).
    pub fn match_seq(&self, i: usize, pattern: &[&str]) -> bool {
        let toks = &self.lexed.tokens;
        if i + pattern.len() > toks.len() {
            return false;
        }
        pattern.iter().enumerate().all(|(k, want)| {
            let tok = &toks[i + k];
            match tok.kind {
                TokKind::Ident => tok.text(self.text) == *want,
                TokKind::Punct(c) => want.len() == 1 && want.as_bytes()[0] as char == c,
                _ => false,
            }
        })
    }
}

/// Parse one comment for a `ftes-lint:` directive.
fn parse_directive(
    comment: &crate::lexer::Comment,
    path: &str,
    allows: &mut Vec<Allow>,
    diags: &mut Vec<Diagnostic>,
) {
    // Doc comments are prose (and may quote directive examples); only
    // plain `//` / `/* */` comments can carry directives.
    if comment.doc {
        return;
    }
    let text = comment.text.trim();
    let Some(rest) = text.strip_prefix("ftes-lint:") else {
        // Catch near-miss placements (a directive buried after prose, as
        // in `NOTE <directive>`) so a typo can't silently disable nothing
        // — the allow the author thought they wrote.
        if text.contains("ftes-lint:") {
            diags.push(Diagnostic {
                path: path.to_string(),
                line: comment.line,
                rule: "allow-syntax",
                message: "malformed directive: expected `ftes-lint: allow(<rules>) \
                          reason=\"…\"`"
                    .to_string(),
            });
        }
        return;
    };
    let rest = rest.trim_start();
    let (file_scoped, rest) = if let Some(r) = rest.strip_prefix("allow-file") {
        (true, r)
    } else if let Some(r) = rest.strip_prefix("allow") {
        (false, r)
    } else {
        diags.push(Diagnostic {
            path: path.to_string(),
            line: comment.line,
            rule: "allow-syntax",
            message: "malformed directive: expected `allow(…)` or `allow-file(…)`".to_string(),
        });
        return;
    };
    let rest = rest.trim_start();
    let Some((list, after)) = rest.strip_prefix('(').and_then(|r| r.split_once(')')) else {
        diags.push(Diagnostic {
            path: path.to_string(),
            line: comment.line,
            rule: "allow-syntax",
            message: "malformed directive: missing `(<rule list>)`".to_string(),
        });
        return;
    };
    let rules: Vec<String> =
        list.split(',').map(|r| r.trim().to_string()).filter(|r| !r.is_empty()).collect();
    if rules.is_empty() {
        diags.push(Diagnostic {
            path: path.to_string(),
            line: comment.line,
            rule: "allow-syntax",
            message: "malformed directive: empty rule list".to_string(),
        });
        return;
    }
    // Unknown names are typos: report each once and drop it from the
    // directive (a dropped name excuses nothing, and keeping it would
    // add a redundant unused-allow diagnostic for the same mistake).
    let (rules, unknown): (Vec<String>, Vec<String>) = rules
        .into_iter()
        .partition(|rule| crate::rules::RULES.iter().any(|(name, _)| name == rule));
    for rule in &unknown {
        diags.push(Diagnostic {
            path: path.to_string(),
            line: comment.line,
            rule: "allow-syntax",
            message: format!("unknown rule `{rule}` in allow directive"),
        });
    }
    if rules.is_empty() {
        return;
    }
    // The reason clause: non-empty quoted string, mandatory.
    let after = after.trim_start();
    let reason_ok = after
        .strip_prefix("reason=\"")
        .and_then(|r| r.split_once('"'))
        .is_some_and(|(reason, _)| !reason.trim().is_empty());
    if !reason_ok {
        diags.push(Diagnostic {
            path: path.to_string(),
            line: comment.line,
            rule: "allow-syntax",
            message: "allow directive requires a non-empty reason=\"…\" clause".to_string(),
        });
        return;
    }
    let last_line = if file_scoped {
        u32::MAX
    } else if comment.own_line {
        comment.line + 1
    } else {
        comment.line
    };
    allows.push(Allow { rules, line: comment.line, last_line, used: false });
}

/// Compute the `#[cfg(test)]` / `#[test]` mask over the token stream.
///
/// Strategy: find `#[…]` attribute groups whose bracket contents mention
/// `test` under `cfg(…)` (covers `#[cfg(test)]` and `#[cfg(all(test, …))]`)
/// or that are exactly `#[test]`, then skip the item that follows — to the
/// matching `}` when a `{` opens first, else to the terminating `;`.
fn mask_test_regions(src: &str, tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].kind != TokKind::Punct('#') {
            i += 1;
            continue;
        }
        // `#[` or `#![` — inner attributes never gate items, skip them.
        let mut j = i + 1;
        if j < tokens.len() && tokens[j].kind == TokKind::Punct('!') {
            i = j + 1;
            continue;
        }
        if j >= tokens.len() || tokens[j].kind != TokKind::Punct('[') {
            i += 1;
            continue;
        }
        // Find the closing `]` (attributes can nest brackets: `#[cfg(any(..))]`).
        let attr_start = j + 1;
        let mut depth = 1i32;
        j += 1;
        while j < tokens.len() && depth > 0 {
            match tokens[j].kind {
                TokKind::Punct('[') => depth += 1,
                TokKind::Punct(']') => depth -= 1,
                _ => {}
            }
            j += 1;
        }
        let attr_end = j.saturating_sub(1); // index of `]`
        if !attr_is_test(src, &tokens[attr_start..attr_end]) {
            i = j;
            continue;
        }
        // Skip any further attributes on the same item, then the item.
        let mut k = j;
        while k < tokens.len() && tokens[k].kind == TokKind::Punct('#') {
            let mut d = 0i32;
            k += 1;
            while k < tokens.len() {
                match tokens[k].kind {
                    TokKind::Punct('[') => d += 1,
                    TokKind::Punct(']') => {
                        d -= 1;
                        if d == 0 {
                            k += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
        }
        // Walk to the item end: matching `}` if a brace opens before a
        // top-level `;`, else the `;`.
        let mut brace = 0i32;
        let mut saw_brace = false;
        while k < tokens.len() {
            match tokens[k].kind {
                TokKind::Punct('{') => {
                    brace += 1;
                    saw_brace = true;
                }
                TokKind::Punct('}') => {
                    brace -= 1;
                    if saw_brace && brace == 0 {
                        break;
                    }
                }
                TokKind::Punct(';') if !saw_brace => break,
                _ => {}
            }
            k += 1;
        }
        let end = (k + 1).min(tokens.len());
        for m in mask.iter_mut().take(end).skip(i) {
            *m = true;
        }
        i = end;
    }
    mask
}

/// Does this attribute token slice denote test-only code?
fn attr_is_test(src: &str, attr: &[Token]) -> bool {
    // `#[test]`
    if attr.len() == 1 && attr[0].kind == TokKind::Ident && attr[0].text(src) == "test" {
        return true;
    }
    // `#[cfg(… test …)]` — any `test` ident inside a cfg attribute.
    if attr.first().is_some_and(|t| t.kind == TokKind::Ident && t.text(src) == "cfg") {
        return attr[1..].iter().any(|t| t.kind == TokKind::Ident && t.text(src) == "test");
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_mod_is_masked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn inner() { x.unwrap(); }\n}\nfn after() {}";
        let f = SourceFile::new("a.rs", "x", src);
        let toks = f.tokens();
        for (i, t) in toks.iter().enumerate() {
            let text = t.text(src);
            if text == "unwrap" || text == "inner" {
                assert!(f.is_test[i], "{text} should be masked");
            }
            if text == "live" || text == "after" {
                assert!(!f.is_test[i], "{text} should not be masked");
            }
        }
    }

    #[test]
    fn test_attr_fn_is_masked() {
        let src = "#[test]\nfn t() { y.unwrap(); }\nfn live() {}";
        let f = SourceFile::new("a.rs", "x", src);
        for (i, t) in f.tokens().iter().enumerate() {
            if t.text(src) == "unwrap" {
                assert!(f.is_test[i]);
            }
            if t.text(src) == "live" {
                assert!(!f.is_test[i]);
            }
        }
    }

    #[test]
    fn inner_attribute_does_not_mask() {
        let src = "#![forbid(unsafe_code)]\nfn live() {}";
        let f = SourceFile::new("a.rs", "x", src);
        assert!(f.is_test.iter().all(|&m| !m));
    }

    #[test]
    fn allow_directive_parses_and_scopes() {
        let src = "// ftes-lint: allow(determinism) reason=\"wall clock feeds metrics only\"\nlet t = 1;\nlet u = 2;";
        let mut f = SourceFile::new("a.rs", "x", src);
        assert!(f.directive_diags.is_empty(), "{:?}", f.directive_diags);
        assert_eq!(f.allows.len(), 1);
        assert!(f.allowed("determinism", 2), "own-line allow covers the next line");
        assert!(!f.allowed("determinism", 3));
        assert!(!f.allowed("panic-freedom", 2));
    }

    #[test]
    fn trailing_allow_covers_only_its_line() {
        let src = "let t = now(); // ftes-lint: allow(determinism) reason=\"r\"\nlet u = 2;";
        let mut f = SourceFile::new("a.rs", "x", src);
        assert!(f.allowed("determinism", 1));
        assert!(!f.allowed("determinism", 2));
    }

    #[test]
    fn allow_without_reason_is_a_diagnostic() {
        let src = "// ftes-lint: allow(determinism)\nlet t = 1;";
        let f = SourceFile::new("a.rs", "x", src);
        assert_eq!(f.directive_diags.len(), 1);
        assert_eq!(f.directive_diags[0].rule, "allow-syntax");
        assert!(f.allows.is_empty(), "a reasonless allow must not excuse anything");
    }

    #[test]
    fn unknown_rule_is_a_diagnostic() {
        let src = "// ftes-lint: allow(no-such-rule) reason=\"r\"\n";
        let f = SourceFile::new("a.rs", "x", src);
        assert!(f.directive_diags.iter().any(|d| d.message.contains("unknown rule")));
    }

    #[test]
    fn doc_comments_never_carry_directives() {
        let src = "/// example: `// ftes-lint: allow(determinism)`\n//! ftes-lint: allow(determinism)\nfn f() {}";
        let f = SourceFile::new("a.rs", "x", src);
        assert!(f.allows.is_empty());
        assert!(f.directive_diags.is_empty(), "{:?}", f.directive_diags);
    }

    #[test]
    fn allow_file_covers_everything() {
        let src = "// ftes-lint: allow-file(determinism) reason=\"r\"\n\n\nlet t = 1;";
        let mut f = SourceFile::new("a.rs", "x", src);
        assert!(f.allowed("determinism", 4000));
    }
}
