//! Golden-diagnostic tests: fixture sources with known violations must
//! produce exactly the expected `path:line: rule` triples, and their
//! allow-annotated twins must produce none. This pins both halves of the
//! analyzer's contract — it fires on true violations and stays silent
//! once a reasoned exception is recorded.

use ftes_lint::lint_source;

/// The `(line, rule)` pairs of every diagnostic for `text` at `path`.
fn fired(path: &str, text: &str) -> Vec<(u32, &'static str)> {
    lint_source(path, text).into_iter().map(|d| (d.line, d.rule)).collect()
}

#[test]
fn determinism_catches_wall_clocks_and_hashed_containers() {
    let text = "\
use std::collections::HashMap;
use std::time::Instant;

fn stamp() -> std::time::Instant {
    let t = Instant::now();
    let _s = std::time::SystemTime::now();
    t
}
";
    assert_eq!(
        fired("crates/core/src/bad.rs", text),
        vec![(1, "determinism"), (5, "determinism"), (6, "determinism"),]
    );
}

#[test]
fn determinism_ignores_non_result_crates_and_tests() {
    let text = "\
use std::time::Instant;
fn stamp() -> Instant {
    Instant::now()
}
";
    // `ftes-obs` is the sanctioned wall-clock side channel.
    assert_eq!(fired("crates/obs/src/clock.rs", text), vec![]);

    let masked = "\
#[cfg(test)]
mod tests {
    #[test]
    fn timing() {
        let _t = std::time::Instant::now();
    }
}
";
    assert_eq!(fired("crates/core/src/ok.rs", masked), vec![]);
}

#[test]
fn byte_identity_catches_wall_clock_fields_in_emit_files() {
    let text = "\
fn render(w: &mut JsonWriter) {
    w.key(\"timestamp\");
    w.key(\"result\");
}
";
    assert_eq!(fired("crates/serve/src/handlers.rs", text), vec![(2, "byte-identity")]);
}

#[test]
fn atomics_policy_is_per_crate() {
    let relaxed = "\
fn gate(x: &std::sync::atomic::AtomicBool) -> bool {
    x.load(Ordering::Relaxed)
}
";
    // The obs gate is Relaxed-only: Relaxed passes there...
    assert_eq!(fired("crates/obs/src/lib.rs", relaxed), vec![]);

    let acquire = "\
fn gate(x: &std::sync::atomic::AtomicBool) -> bool {
    x.load(Ordering::Acquire)
}
";
    // ...and anything stronger is flagged.
    assert_eq!(fired("crates/obs/src/lib.rs", acquire), vec![(2, "atomics-policy")]);

    // The journaled executor must publish with Acquire/Release: a Relaxed
    // load of a cancel-style flag is the historical bug shape.
    let jobs = "\
fn cancelled(cancel: &std::sync::atomic::AtomicBool) -> bool {
    cancel.load(Ordering::Relaxed)
}
";
    assert_eq!(fired("crates/jobs/src/executor.rs", jobs), vec![(2, "atomics-policy")]);

    // SeqCst is banned workspace-wide.
    let seqcst = "\
fn bump(n: &std::sync::atomic::AtomicU64) {
    n.fetch_add(1, Ordering::SeqCst);
}
";
    assert_eq!(fired("crates/model/src/counter.rs", seqcst), vec![(2, "atomics-policy")]);
}

#[test]
fn panic_freedom_covers_serve_handlers_and_jobs() {
    let text = "\
fn handle(lock: &std::sync::Mutex<u32>) -> u32 {
    let v = *lock.lock().unwrap();
    if v > 9000 {
        panic!(\"overload\");
    }
    v
}
";
    assert_eq!(
        fired("crates/serve/src/handlers.rs", text),
        vec![(2, "panic-freedom"), (4, "panic-freedom")]
    );
    // The same text in a crate off the request path is fine.
    assert_eq!(fired("crates/model/src/handlers.rs", text), vec![]);

    // The poison-recovery idiom is the sanctioned replacement.
    let recovered = "\
fn handle(lock: &std::sync::Mutex<u32>) -> u32 {
    *lock.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}
";
    assert_eq!(fired("crates/serve/src/handlers.rs", recovered), vec![]);
}

#[test]
fn forbid_unsafe_requires_the_attribute_and_bans_the_keyword() {
    let root_without = "//! A crate.\npub fn f() {}\n";
    assert_eq!(fired("crates/model/src/lib.rs", root_without), vec![(1, "forbid-unsafe")]);

    let root_with = "//! A crate.\n#![forbid(unsafe_code)]\npub fn f() {}\n";
    assert_eq!(fired("crates/model/src/lib.rs", root_with), vec![]);

    let uses_unsafe = "\
#![forbid(unsafe_code)]
pub fn f(p: *const u8) -> u8 {
    unsafe { *p }
}
";
    assert_eq!(fired("crates/model/src/lib.rs", uses_unsafe), vec![(3, "forbid-unsafe")]);
}

#[test]
fn allows_suppress_with_a_reason_and_are_audited() {
    let allowed = "\
fn stamp() {
    // ftes-lint: allow(determinism) reason=\"latency metric only, never result bytes\"
    let _t = std::time::Instant::now();
}
";
    assert_eq!(fired("crates/core/src/timed.rs", allowed), vec![]);

    // No reason: the directive itself is a diagnostic and suppresses nothing.
    let reasonless = "\
fn stamp() {
    // ftes-lint: allow(determinism)
    let _t = std::time::Instant::now();
}
";
    assert_eq!(
        fired("crates/core/src/timed.rs", reasonless),
        vec![(2, "allow-syntax"), (3, "determinism")]
    );

    // An allow that suppresses nothing is itself flagged — stale
    // exceptions cannot linger after the violation is fixed.
    let unused = "\
// ftes-lint: allow(determinism) reason=\"left over after a refactor\"
pub fn f() {}
";
    assert_eq!(fired("crates/core/src/timed.rs", unused), vec![(1, "allow-syntax")]);

    // Unknown rule names in a directive are typos, not silent no-ops.
    let unknown = "\
// ftes-lint: allow(determinsm) reason=\"typo\"
pub fn f() {}
";
    assert_eq!(fired("crates/core/src/timed.rs", unknown), vec![(1, "allow-syntax")]);
}

#[test]
fn diagnostics_render_as_path_line_rule() {
    let text = "use std::collections::HashMap;\n";
    let diags = lint_source("crates/core/src/bad.rs", text);
    assert_eq!(diags.len(), 1);
    let rendered = diags[0].to_string();
    assert!(
        rendered.starts_with("crates/core/src/bad.rs:1: determinism: "),
        "unexpected rendering: {rendered}"
    );
    let json = ftes_lint::to_json(&diags);
    assert!(json.contains("\"rule\":\"determinism\""), "{json}");
    assert!(json.contains("\"line\":1"), "{json}");
}
