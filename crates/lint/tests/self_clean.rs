//! The workspace must pass its own analyzer: `cargo test` proves the
//! shipped tree lint-clean without needing the CI step, so a violation
//! fails the fastest loop a contributor runs.

#[test]
fn the_workspace_is_lint_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint has a workspace root two levels up")
        .to_path_buf();
    let diags = ftes_lint::lint_workspace(&root, None).expect("workspace sources are readable");
    assert!(
        diags.is_empty(),
        "the shipped tree must be lint-clean:\n{}",
        diags.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("\n")
    );
}
